//! Executor-side campaign checkpointing: a serializable snapshot of the
//! resilience machinery's mutable state.
//!
//! A crash-safe campaign must be able to kill the fuzzer at an arbitrary
//! execution boundary and resume **deterministically** — every counter that
//! influences future behavior has to travel with the checkpoint. For the
//! executors that means:
//!
//! * the resilience tallies (`respawns`, `divergences`, …) that feed
//!   [`ResilienceReport`](crate::resilience::ResilienceReport),
//! * the restore-iteration counter that drives the *sampled* integrity
//!   check cadence (resume mid-sample-window and the checks fire at the
//!   same executions they would have),
//! * the degradation level — a campaign that fell down the continuum to
//!   fork-per-exec must resume there, not silently re-promote itself,
//! * whether the persistent process was alive (a dead process means the
//!   next run pays a respawn, exactly as the killed run would have),
//! * the quarantine ring contents, and
//! * the fault plane's roll-stream position, so injected faults continue
//!   at the same points of the roll sequence.
//!
//! Process *memory* is deliberately **not** serialized: executor
//! construction is deterministic (boot ≡ template fork for the pristine
//! image), so a resumed executor reconstructs the process from the module
//! and only the counters need restoring. That keeps checkpoints small and
//! immune to memory-layout drift across versions. Page *contents* come for
//! free that way, but page *ownership* does not: teardown charges the
//! process's accumulated copy-on-write faults, so the pending fault count
//! and the set of already-privatized pages travel with the checkpoint
//! (`proc_cow_faults` / `proc_private_pages`) and are grafted back onto the
//! rebuilt process — otherwise a resumed run's next teardown drifts by one
//! `cow_fault` charge per page the killed run privatized but the resumed
//! run never rewrote.

use vmos::{Reader, WireError, Writer};

use crate::resilience::{DegradationLevel, ResilienceReport};

impl DegradationLevel {
    /// Stable wire tag (checkpoint format v1; append-only).
    pub fn wire_tag(self) -> u8 {
        match self {
            DegradationLevel::Persistent => 0,
            DegradationLevel::ForkPerExec => 1,
        }
    }

    /// Inverse of [`DegradationLevel::wire_tag`].
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => DegradationLevel::Persistent,
            1 => DegradationLevel::ForkPerExec,
            _ => return Err(WireError::Malformed("degradation tag")),
        })
    }
}

/// The mutable executor state a campaign checkpoint carries. Exported via
/// [`Executor::export_state`](crate::executor::Executor::export_state) and
/// re-applied with
/// [`Executor::restore_state`](crate::executor::Executor::restore_state)
/// after the executor has been freshly reconstructed from the module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutorState {
    /// Times the process was re-created after a crash/hang/divergence.
    pub respawns: u64,
    /// Restore divergences detected so far.
    pub divergences: u64,
    /// Integrity checks performed so far.
    pub integrity_checks: u64,
    /// Harness faults surfaced so far.
    pub harness_faults: u64,
    /// Restores performed (drives the sampled integrity-check cadence).
    pub iters: u64,
    /// Current position on the degradation ladder.
    pub degradation: DegradationLevel,
    /// Was the persistent process alive at checkpoint time? When `false`
    /// the restored executor discards its booted process so the next run
    /// pays the respawn the killed run would have paid.
    pub proc_alive: bool,
    /// The quarantine ring contents (bounded sample of tainted inputs).
    pub quarantine: Vec<Vec<u8>>,
    /// Quarantined inputs evicted past the ring's capacity.
    pub quarantine_dropped: u64,
    /// Fault-plane roll-stream position.
    pub fault_rolls: u64,
    /// Fault-plane per-kind injection tallies.
    pub fault_injected: [u64; 5],
    /// Pending copy-on-write faults the live process had accumulated —
    /// charged at its *eventual* teardown, so they must survive a resume.
    pub proc_cow_faults: u64,
    /// Pages the live process had already privatized against its pristine
    /// template. A rebuilt boot process shares every page with the template,
    /// so without this set the resumed process would re-fault (and the
    /// teardown re-charge) pages whose faults the checkpoint already
    /// carries — and never fault pages the killed run privatized but the
    /// resumed run never rewrites.
    pub proc_private_pages: Vec<u64>,
}

impl ExecutorState {
    /// Encode into `w` (checkpoint format v1).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.respawns);
        w.put_u64(self.divergences);
        w.put_u64(self.integrity_checks);
        w.put_u64(self.harness_faults);
        w.put_u64(self.iters);
        w.put_u8(self.degradation.wire_tag());
        w.put_bool(self.proc_alive);
        w.put_usize(self.quarantine.len());
        for q in &self.quarantine {
            w.put_bytes(q);
        }
        w.put_u64(self.quarantine_dropped);
        w.put_u64(self.fault_rolls);
        for v in self.fault_injected {
            w.put_u64(v);
        }
        w.put_u64(self.proc_cow_faults);
        w.put_usize(self.proc_private_pages.len());
        for idx in &self.proc_private_pages {
            w.put_u64(*idx);
        }
    }

    /// Decode from `r`.
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes — never panics.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let respawns = r.get_u64()?;
        let divergences = r.get_u64()?;
        let integrity_checks = r.get_u64()?;
        let harness_faults = r.get_u64()?;
        let iters = r.get_u64()?;
        let degradation = DegradationLevel::from_wire_tag(r.get_u8()?)?;
        let proc_alive = r.get_bool()?;
        let n = r.get_count()?;
        // Each entry costs at least its 8-byte length prefix; bounding the
        // count keeps a corrupt field from pre-allocating gigabytes.
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut quarantine = Vec::with_capacity(n);
        for _ in 0..n {
            quarantine.push(r.get_bytes()?);
        }
        let quarantine_dropped = r.get_u64()?;
        let fault_rolls = r.get_u64()?;
        let mut fault_injected = [0u64; 5];
        for v in &mut fault_injected {
            *v = r.get_u64()?;
        }
        let proc_cow_faults = r.get_u64()?;
        let pages = r.get_count()?;
        if pages > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut proc_private_pages = Vec::with_capacity(pages);
        for _ in 0..pages {
            proc_private_pages.push(r.get_u64()?);
        }
        Ok(ExecutorState {
            respawns,
            divergences,
            integrity_checks,
            harness_faults,
            iters,
            degradation,
            proc_alive,
            quarantine,
            quarantine_dropped,
            fault_rolls,
            fault_injected,
            proc_cow_faults,
            proc_private_pages,
        })
    }
}

impl ResilienceReport {
    /// Encode into `w` — out-of-process lanes ship their lifetime
    /// resilience counters to the supervisor over this codec at every
    /// barrier.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.respawns);
        w.put_u64(self.divergences);
        w.put_u64(self.integrity_checks);
        w.put_u64(self.quarantined);
        w.put_u64(self.quarantine_dropped);
        w.put_u64(self.harness_faults);
        w.put_u8(self.degradation.wire_tag());
    }

    /// Decode from `r`.
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes — never panics.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ResilienceReport {
            respawns: r.get_u64()?,
            divergences: r.get_u64()?,
            integrity_checks: r.get_u64()?,
            quarantined: r.get_u64()?,
            quarantine_dropped: r.get_u64()?,
            harness_faults: r.get_u64()?,
            degradation: DegradationLevel::from_wire_tag(r.get_u8()?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutorState {
        ExecutorState {
            respawns: 3,
            divergences: 1,
            integrity_checks: 40,
            harness_faults: 2,
            iters: 123,
            degradation: DegradationLevel::ForkPerExec,
            proc_alive: false,
            quarantine: vec![b"bad".to_vec(), Vec::new(), vec![0xFF; 70]],
            quarantine_dropped: 5,
            fault_rolls: 999,
            fault_injected: [1, 0, 2, 0, 4],
            proc_cow_faults: 3,
            proc_private_pages: vec![0, 7, 0x4_0000],
        }
    }

    #[test]
    fn executor_state_round_trips() {
        for s in [ExecutorState::default(), sample()] {
            let mut w = Writer::new();
            s.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(ExecutorState::decode(&mut r).unwrap(), s);
            assert!(r.is_empty(), "decode must consume everything");
        }
    }

    #[test]
    fn truncated_state_is_error_not_panic() {
        let mut w = Writer::new();
        sample().encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ExecutorState::decode(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut w = Writer::new();
        let mut s = sample();
        s.quarantine.clear();
        s.encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes[40] = 7; // degradation tag byte
        assert_eq!(
            ExecutorState::decode(&mut Reader::new(&bytes)).unwrap_err(),
            WireError::Malformed("degradation tag")
        );
        assert!(DegradationLevel::from_wire_tag(2).is_err());
        assert_eq!(
            DegradationLevel::from_wire_tag(1).unwrap(),
            DegradationLevel::ForkPerExec
        );
    }

    #[test]
    fn corrupt_quarantine_count_cannot_allocate() {
        let mut w = Writer::new();
        let s = ExecutorState::default();
        s.encode(&mut w);
        let mut bytes = w.into_bytes();
        // Overwrite the quarantine count (after 5 u64s + tag + bool) with a
        // huge value; decode must reject it without allocating.
        bytes[42..50].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ExecutorState::decode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn resilience_report_round_trips() {
        let r = ResilienceReport {
            respawns: 2,
            divergences: 1,
            integrity_checks: 64,
            quarantined: 3,
            quarantine_dropped: 1,
            harness_faults: 5,
            degradation: DegradationLevel::ForkPerExec,
        };
        for report in [ResilienceReport::default(), r] {
            let mut w = Writer::new();
            report.encode(&mut w);
            let bytes = w.into_bytes();
            let mut rd = Reader::new(&bytes);
            assert_eq!(ResilienceReport::decode(&mut rd).unwrap(), report);
            assert!(rd.is_empty());
            for cut in 0..bytes.len() {
                assert!(ResilienceReport::decode(&mut Reader::new(&bytes[..cut])).is_err());
            }
        }
    }
}
