//! The execution-mechanism interface shared by all four mechanisms on the
//! paper's state-restoration continuum.

use std::path::Path;

use vmos::{CovMap, Crash, FaultPlan, WarmSource};

use crate::checkpoint::ExecutorState;
use crate::resilience::{HarnessError, ResilienceReport};

/// Default per-test-case instruction budget (hang detection).
pub const DEFAULT_FUEL: u64 = 3_000_000;

/// How a test-case execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Clean completion with an exit code (normal return or `exit()`).
    Exit(i32),
    /// The target crashed.
    Crash(Crash),
    /// The target exceeded its fuel budget.
    Hang,
    /// The *harness* failed — not the target. The input was never (or not
    /// fully) executed; campaigns should retry it, never record it as a
    /// target crash.
    Fault(HarnessError),
}

impl ExecStatus {
    /// The crash, if any.
    pub fn crash(&self) -> Option<&Crash> {
        match self {
            ExecStatus::Crash(c) => Some(c),
            _ => None,
        }
    }

    /// The harness fault, if any.
    pub fn fault(&self) -> Option<&HarnessError> {
        match self {
            ExecStatus::Fault(e) => Some(e),
            _ => None,
        }
    }
}

/// Result + cost accounting for one test-case execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Final status.
    pub status: ExecStatus,
    /// Cycles spent executing target code.
    pub exec_cycles: u64,
    /// Cycles spent on process management or state restoration — the
    /// quantity the paper's mechanisms differ in.
    pub mgmt_cycles: u64,
    /// Instructions retired by the target.
    pub insts: u64,
}

impl ExecOutcome {
    /// Total cycles charged for this test case.
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.mgmt_cycles
    }
}

/// A fuzzing execution mechanism: give it a test case, get an outcome and
/// per-run coverage.
pub trait Executor {
    /// Mechanism name (for reports).
    fn name(&self) -> &'static str;

    /// Execute one test case.
    fn run(&mut self, input: &[u8]) -> ExecOutcome;

    /// Coverage collected by the most recent [`Executor::run`].
    fn coverage(&self) -> &CovMap;

    /// The per-test-case fuel budget.
    fn fuel(&self) -> u64;

    /// Arm the simulated OS with a fault-injection plan. Default: the
    /// mechanism ignores faults (its OS keeps the disabled plane).
    fn inject_faults(&mut self, _plan: FaultPlan) {}

    /// Lifetime resilience counters. Default: all zero (mechanisms without
    /// recovery machinery have nothing to report).
    fn resilience(&self) -> ResilienceReport {
        ResilienceReport::default()
    }

    /// Export the mutable state a campaign checkpoint must carry to resume
    /// this executor deterministically. Default: `None` — the mechanism
    /// does not support checkpointed campaigns.
    fn export_state(&self) -> Option<ExecutorState> {
        None
    }

    /// Re-apply state exported by [`Executor::export_state`] onto a freshly
    /// constructed executor (same module, same configuration).
    ///
    /// # Errors
    /// [`HarnessError::Unsupported`] by default.
    fn restore_state(&mut self, _state: &ExecutorState) -> Result<(), HarnessError> {
        Err(HarnessError::Unsupported(
            "this execution mechanism cannot restore checkpointed state".into(),
        ))
    }

    /// Fingerprint of the (instrumented) module this executor runs, as
    /// produced by `Module::fingerprint`. Checkpoints embed it so resume
    /// can validate the on-disk state against the target actually loaded.
    /// Default: `None` — the mechanism does not pin a module identity.
    fn module_fingerprint(&self) -> Option<u64> {
        None
    }

    /// Ensure the process-wide decoded-image cache holds this executor's
    /// module, and report where the image came from: already cached,
    /// revived from a sidecar file under `sidecar_dir`, or lowered by this
    /// call. Checkpoint resume calls this up front (passing the checkpoint
    /// directory) so the replayed campaign never re-lowers lazily mid-run
    /// and a warm sidecar makes resume O(journal tail). Default: `None` —
    /// the mechanism does not use the decoded engine.
    fn warm_decoded_image(&self, _sidecar_dir: Option<&Path>) -> Option<WarmSource> {
        None
    }

    /// Best-effort write of this executor's decoded image to a sidecar
    /// cache file in `dir` (see `vmos::decoded::sidecar`), so later
    /// resumes — possibly in another process — can skip the re-lower.
    /// Returns whether a usable sidecar now exists there. Default: `false`
    /// — the mechanism does not use the decoded engine.
    fn save_decoded_sidecar(&self, _dir: &Path) -> bool {
        false
    }
}

/// Builds fresh, identically configured executor instances on demand — the
/// contract a sharded campaign needs to give every worker lane its own
/// executor for the same target. `Sync` because lanes are built from worker
/// threads under `std::thread::scope`.
pub trait ExecutorFactory: Sync {
    /// Construct one executor instance.
    ///
    /// # Errors
    /// [`HarnessError`] when the harness cannot be booted (e.g. the module
    /// fails instrumentation).
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError>;

    /// Construct the crash revalidator paired with [`ExecutorFactory::build`]
    /// (a fresh-process executor used to flaky-tag crashes), or `None` when
    /// revalidation is not wanted. Default: `None`.
    ///
    /// # Errors
    /// [`HarnessError`] when the revalidator cannot be booted.
    fn build_revalidator(&self) -> Result<Option<Box<dyn Executor + Send>>, HarnessError> {
        Ok(None)
    }

    /// Warm the process-wide decoded-image cache for this factory's
    /// module — mirror of [`Executor::warm_decoded_image`], callable
    /// *before* any executor exists. Executor construction lowers eagerly
    /// on a cold cache, so a resume that only warmed through a built
    /// executor would waste the sidecar sitting next to the checkpoint;
    /// factory-level warming lets it load instead. Default: `None` — the
    /// factory cannot warm ahead of construction, and callers fall back
    /// to the first built executor.
    fn warm_decoded_image(&self, _sidecar_dir: Option<&Path>) -> Option<WarmSource> {
        None
    }

    /// A self-contained byte recipe from which a *worker process* can
    /// reconstruct an equivalent factory (lane-per-process campaigns ship
    /// it to each child over the wire; the child's entrypoint parses it
    /// back into a factory). Default: `None` — the factory only works
    /// in-process, and `Isolation::Process` campaigns refuse it up front.
    fn worker_spec(&self) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_totals() {
        let o = ExecOutcome {
            status: ExecStatus::Exit(0),
            exec_cycles: 100,
            mgmt_cycles: 40,
            insts: 90,
        };
        assert_eq!(o.total_cycles(), 140);
        assert!(o.status.crash().is_none());
    }
}
