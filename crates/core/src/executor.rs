//! The execution-mechanism interface shared by all four mechanisms on the
//! paper's state-restoration continuum.

use vmos::{CovMap, Crash};

/// Default per-test-case instruction budget (hang detection).
pub const DEFAULT_FUEL: u64 = 3_000_000;

/// How a test-case execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Clean completion with an exit code (normal return or `exit()`).
    Exit(i32),
    /// The target crashed.
    Crash(Crash),
    /// The target exceeded its fuel budget.
    Hang,
}

impl ExecStatus {
    /// The crash, if any.
    pub fn crash(&self) -> Option<&Crash> {
        match self {
            ExecStatus::Crash(c) => Some(c),
            _ => None,
        }
    }
}

/// Result + cost accounting for one test-case execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Final status.
    pub status: ExecStatus,
    /// Cycles spent executing target code.
    pub exec_cycles: u64,
    /// Cycles spent on process management or state restoration — the
    /// quantity the paper's mechanisms differ in.
    pub mgmt_cycles: u64,
    /// Instructions retired by the target.
    pub insts: u64,
}

impl ExecOutcome {
    /// Total cycles charged for this test case.
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.mgmt_cycles
    }
}

/// A fuzzing execution mechanism: give it a test case, get an outcome and
/// per-run coverage.
pub trait Executor {
    /// Mechanism name (for reports).
    fn name(&self) -> &'static str;

    /// Execute one test case.
    fn run(&mut self, input: &[u8]) -> ExecOutcome;

    /// Coverage collected by the most recent [`Executor::run`].
    fn coverage(&self) -> &CovMap;

    /// The per-test-case fuel budget.
    fn fuel(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_totals() {
        let o = ExecOutcome {
            status: ExecStatus::Exit(0),
            exec_cycles: 100,
            mgmt_cycles: 40,
            insts: 90,
        };
        assert_eq!(o.total_cycles(), 140);
        assert!(o.status.crash().is_none());
    }
}
