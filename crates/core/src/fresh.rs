//! Fresh-process execution: spawn + exec + teardown per test case.
//!
//! The left end of the paper's continuum (Windows-fuzzer style process
//! creation): trivially correct — every test case starts from a pristine
//! image — and by far the slowest, since the whole binary image is reloaded
//! every time.

use std::sync::Arc;

use fir::Module;
use passes::pipelines::baseline_pipeline;
use passes::PassError;
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CallResult, CovMap, DecodedImage, FaultPlan, FaultPlane, HostCtx, Machine, Os};

use crate::checkpoint::ExecutorState;
use crate::executor::{ExecOutcome, ExecStatus, Executor, DEFAULT_FUEL};
use crate::resilience::{HarnessError, ResilienceReport};

/// See module docs.
#[derive(Debug)]
pub struct FreshProcessExecutor {
    os: Os,
    module: Module,
    image: Arc<DecodedImage>,
    cov: CovMap,
    fuel: u64,
    harness_faults: u64,
    /// Cached `Module::fingerprint` of the instrumented module (the
    /// computation walks the whole module, so it is done once at boot).
    fingerprint: u64,
}

impl FreshProcessExecutor {
    /// Instrument `module` with coverage only and build the executor.
    ///
    /// # Errors
    /// Propagates pass failures (e.g. no `main`).
    pub fn new(module: &Module) -> Result<Self, PassError> {
        let mut m = module.clone();
        baseline_pipeline().run(&mut m)?;
        let image = DecodedImage::cached(&m);
        let fingerprint = m.fingerprint();
        Ok(FreshProcessExecutor {
            os: Os::new(),
            module: m,
            image,
            cov: CovMap::new(),
            fuel: DEFAULT_FUEL,
            harness_faults: 0,
            fingerprint,
        })
    }

    /// Override the fuel budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The OS (for filesystem seeding in tests).
    pub fn os_mut(&mut self) -> &mut Os {
        &mut self.os
    }
}

impl Executor for FreshProcessExecutor {
    fn name(&self) -> &'static str {
        "fresh-process"
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        self.cov.clear();
        self.os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
        let (mut p, spawn_cycles) = match self.os.try_spawn(&self.module) {
            Ok(r) => r,
            Err(e) => {
                self.harness_faults += 1;
                return ExecOutcome {
                    status: ExecStatus::Fault(HarnessError::ForkFailed(e.to_string())),
                    exec_cycles: 0,
                    mgmt_cycles: self.os.cost.fork(0),
                    insts: 0,
                };
            }
        };
        let machine = Machine::with_image(&self.module, &self.image);
        let out = {
            let mut ctx = HostCtx::new(&mut self.os, &mut self.cov);
            machine.call(&mut p, &mut ctx, "main", &[0, 0], self.fuel)
        };
        let teardown_cycles = self.os.teardown(p);
        let status = match out.result {
            CallResult::Return(v) => ExecStatus::Exit(v as i32),
            CallResult::Exited(c) | CallResult::ExitHooked(c) => ExecStatus::Exit(c),
            CallResult::Crashed(c) => ExecStatus::Crash(c),
            CallResult::OutOfFuel => ExecStatus::Hang,
        };
        ExecOutcome {
            status,
            exec_cycles: out.cycles,
            mgmt_cycles: spawn_cycles + teardown_cycles,
            insts: out.insts,
        }
    }

    fn coverage(&self) -> &CovMap {
        &self.cov
    }

    fn fuel(&self) -> u64 {
        self.fuel
    }

    fn inject_faults(&mut self, plan: FaultPlan) {
        self.os.fault = FaultPlane::new(plan);
    }

    fn resilience(&self) -> ResilienceReport {
        ResilienceReport {
            harness_faults: self.harness_faults,
            ..ResilienceReport::default()
        }
    }

    fn export_state(&self) -> Option<ExecutorState> {
        // Fresh-process execution keeps no cross-run process state; only
        // the fault tally and the fault-plane stream position matter.
        let (fault_rolls, fault_injected) = self.os.fault.export_counters();
        Some(ExecutorState {
            harness_faults: self.harness_faults,
            proc_alive: true,
            fault_rolls,
            fault_injected,
            ..ExecutorState::default()
        })
    }

    fn restore_state(&mut self, state: &ExecutorState) -> Result<(), HarnessError> {
        self.harness_faults = state.harness_faults;
        self.os
            .fault
            .restore_counters(state.fault_rolls, state.fault_injected);
        Ok(())
    }

    fn module_fingerprint(&self) -> Option<u64> {
        Some(self.fingerprint)
    }

    fn warm_decoded_image(&self, sidecar_dir: Option<&std::path::Path>) -> Option<vmos::WarmSource> {
        Some(vmos::DecodedImage::warm_with_sidecar(&self.module, sidecar_dir))
    }

    fn save_decoded_sidecar(&self, dir: &std::path::Path) -> bool {
        let img = vmos::DecodedImage::cached(&self.module);
        vmos::decoded::sidecar::save(dir, &img).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        minic::compile("t", src).unwrap()
    }

    #[test]
    fn every_run_sees_fresh_state() {
        let m = module(
            r#"
            global count;
            fn main() {
                count = count + 1;
                return count;
            }
        "#,
        );
        let mut ex = FreshProcessExecutor::new(&m).unwrap();
        for _ in 0..3 {
            let out = ex.run(b"x");
            assert_eq!(out.status, ExecStatus::Exit(1), "state never accumulates");
        }
    }

    #[test]
    fn mgmt_cost_dominates_for_trivial_targets() {
        let m = module("fn main() { return 0; }");
        let mut ex = FreshProcessExecutor::new(&m).unwrap();
        let out = ex.run(b"");
        assert!(
            out.mgmt_cycles > out.exec_cycles * 10,
            "spawn/exec must dwarf a trivial main: mgmt={} exec={}",
            out.mgmt_cycles,
            out.exec_cycles
        );
    }

    #[test]
    fn coverage_reflects_input() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[4];
                fread(buf, 1, 4, f);
                fclose(f);
                if (load8(buf) == 'Z') { return 2; }
                return 1;
            }
        "#,
        );
        let mut ex = FreshProcessExecutor::new(&m).unwrap();
        ex.run(b"A");
        let edges_a = ex.coverage().count_nonzero();
        ex.run(b"Z");
        let edges_z = ex.coverage().count_nonzero();
        assert_ne!(edges_a, 0);
        assert_ne!(edges_z, 0);
    }
}
