//! Property-based tests of the harness's central invariant: for *any*
//! target generated from a family of stateful parser templates and *any*
//! input sequence, every ClosureX iteration behaves exactly like the first
//! one — state never leaks between test cases.

use proptest::prelude::*;
use vmos::FaultPlan;

use crate::executor::{ExecStatus, Executor};
use crate::forkserver::ForkServerExecutor;
use crate::fresh::FreshProcessExecutor;
use crate::harness::{ClosureXConfig, ClosureXExecutor};
use crate::naive::NaivePersistentExecutor;
use crate::resilience::{fnv1a, IntegrityPolicy};

/// A small family of targets parameterized over constants, each mixing
/// globals, heap, and file handles.
fn target_source(bump: u8, leak_bytes: u16, threshold: u8) -> String {
    format!(
        r#"
        global total;
        global last;
        global table[64];
        fn main() {{
            var f = fopen("/fuzz/input", 0);
            if (f == 0) {{ exit(1); }}
            var buf[32];
            var n = fread(buf, 1, 32, f);
            var scratch = malloc({leak_bytes});
            store8(scratch, 1);
            var i = 0;
            while (i < n) {{
                var b = load8(buf + i);
                total = total + {bump};
                last = b;
                store8(table + (b % 64), b);
                i = i + 1;
            }}
            if (n > 0 && last > {threshold}) {{
                fclose(f);
                return total;
            }}
            // handle f and scratch both leak on this path
            return total;
        }}
    "#
    )
}

fn inputs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay determinism: interleaving arbitrary other inputs never
    /// changes what a given input does under ClosureX, and the result
    /// always equals the forkserver's (fresh-semantics) result.
    #[test]
    fn closurex_matches_fresh_semantics_under_any_interleaving(
        bump in 1u8..5,
        leak in 1u16..512,
        threshold in 0u8..255,
        seq in inputs(),
        probe in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let src = target_source(bump, leak, threshold);
        let module = minic::compile("prop", &src).expect("template compiles");

        // Ground truth from the (correct, isolated) forkserver.
        let mut fk = ForkServerExecutor::new(&module).expect("instrument");
        let truth = fk.run(&probe).status;

        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        // Heavy interleaving: pollute, probe, pollute differently, probe.
        for s in &seq {
            let _ = cx.run(s);
        }
        let first = cx.run(&probe).status;
        for s in seq.iter().rev() {
            let _ = cx.run(s);
            let _ = cx.run(s);
        }
        let second = cx.run(&probe).status;

        prop_assert_eq!(&first, &truth, "ClosureX must match fresh semantics");
        prop_assert_eq!(&second, &truth, "and must be replay-deterministic");
    }

    /// Resource hygiene: after any run sequence, the harness process holds
    /// zero live heap bytes and zero open descriptors.
    #[test]
    fn restoration_leaves_no_residue(
        leak in 1u16..2048,
        seq in inputs(),
    ) {
        let src = target_source(1, leak, 255); // threshold 255 → always leaks f
        let module = minic::compile("prop", &src).expect("template compiles");
        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        for s in &seq {
            let out = cx.run(s);
            prop_assert!(
                matches!(out.status, ExecStatus::Exit(_)),
                "template has no bugs: {:?}",
                out.status
            );
            let p = cx.process().expect("alive");
            prop_assert_eq!(p.heap.live_bytes(), 0, "heap swept every iteration");
            prop_assert_eq!(p.fds.open_count(), 0, "fds swept every iteration");
        }
    }

    /// The restore cost only depends on what the test case dirtied — it is
    /// bounded and does not creep as the campaign ages.
    #[test]
    fn restore_cost_does_not_creep(seq in inputs()) {
        let src = target_source(2, 64, 10);
        let module = minic::compile("prop", &src).expect("template compiles");
        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        let mut costs = Vec::new();
        for _ in 0..3 {
            for s in &seq {
                let _ = cx.run(s);
                costs.push(cx.last_restore().cycles);
            }
        }
        let min = costs.iter().min().expect("non-empty");
        let max = costs.iter().max().expect("non-empty");
        // Identical per-input work across rounds → identical cost per
        // input; across inputs the spread is bounded by one chunk + one fd.
        prop_assert!(max - min <= 200, "restore cost crept: min={min} max={max}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Resilience invariant #1: no seeded fault plan — whatever mix of
    /// allocation failures, fopen errors, fork refusals, restore bit-flips,
    /// and descriptor leaks it encodes — may panic the host. Machinery
    /// trouble surfaces as `ExecStatus::Fault` (or an ordinary status), and
    /// the executor stays usable for the next input.
    #[test]
    fn no_fault_plan_panics_any_executor(
        plan_seed in any::<u64>(),
        malloc_null in 0u32..400,
        fopen_fail in 0u32..400,
        fork_fail in 0u32..400,
        restore_bitflip in 0u32..400,
        fd_leak in 0u32..400,
        seq in inputs(),
    ) {
        let plan = FaultPlan {
            seed: plan_seed,
            malloc_null: f64::from(malloc_null) / 1000.0,
            fopen_fail: f64::from(fopen_fail) / 1000.0,
            fork_fail: f64::from(fork_fail) / 1000.0,
            restore_bitflip: f64::from(restore_bitflip) / 1000.0,
            fd_leak: f64::from(fd_leak) / 1000.0,
        };
        let src = target_source(1, 64, 100);
        let module = minic::compile("prop", &src).expect("template compiles");
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy::paranoid(),
            ..ClosureXConfig::default()
        };
        let mut executors: Vec<Box<dyn Executor>> = vec![
            Box::new(FreshProcessExecutor::new(&module).expect("instrument")),
            Box::new(ForkServerExecutor::new(&module).expect("instrument")),
            Box::new(NaivePersistentExecutor::new(&module).expect("instrument")),
            Box::new(ClosureXExecutor::new(&module, cfg).expect("instrument")),
        ];
        for ex in &mut executors {
            ex.inject_faults(plan.clone());
            for s in &seq {
                let out = ex.run(s);
                // A second run after any status must also not panic.
                prop_assert!(out.total_cycles() > 0 || out.status.fault().is_some());
            }
        }
    }

    /// Resilience invariant #2: whenever the integrity check fires and the
    /// harness respawns from the pristine template, the global section of
    /// the fresh process hashes back to the boot-time ground truth — the
    /// corruption never survives a respawn.
    #[test]
    fn respawn_restores_boot_global_hash(
        plan_seed in any::<u64>(),
        seq in inputs(),
    ) {
        let src = target_source(1, 64, 100);
        let module = minic::compile("prop", &src).expect("template compiles");
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 1,
                max_divergences: u64::MAX, // never degrade: keep respawning
            },
            ..ClosureXConfig::default()
        };
        let mut cx = ClosureXExecutor::new(&module, cfg).expect("instrument");
        cx.inject_faults(FaultPlan {
            seed: plan_seed,
            restore_bitflip: 1.0, // corrupt every restore
            ..FaultPlan::none()
        });
        for s in &seq {
            let _ = cx.run(s);
            if let (Some(p), Some((addr, size))) = (cx.process(), cx.section()) {
                prop_assert_eq!(
                    fnv1a(&p.read_bytes(addr, size as usize)),
                    cx.boot_hash(),
                    "post-respawn globals must match boot ground truth"
                );
            }
        }
        prop_assert!(
            cx.divergences() > 0 || cx.section().is_none(),
            "certain bit-flips must be detected by the per-iteration check"
        );
    }
}
