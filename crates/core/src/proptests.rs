//! Property-based tests of the harness's central invariant: for *any*
//! target generated from a family of stateful parser templates and *any*
//! input sequence, every ClosureX iteration behaves exactly like the first
//! one — state never leaks between test cases.

use proptest::prelude::*;

use crate::executor::{ExecStatus, Executor};
use crate::forkserver::ForkServerExecutor;
use crate::harness::{ClosureXConfig, ClosureXExecutor};

/// A small family of targets parameterized over constants, each mixing
/// globals, heap, and file handles.
fn target_source(bump: u8, leak_bytes: u16, threshold: u8) -> String {
    format!(
        r#"
        global total;
        global last;
        global table[64];
        fn main() {{
            var f = fopen("/fuzz/input", 0);
            if (f == 0) {{ exit(1); }}
            var buf[32];
            var n = fread(buf, 1, 32, f);
            var scratch = malloc({leak_bytes});
            store8(scratch, 1);
            var i = 0;
            while (i < n) {{
                var b = load8(buf + i);
                total = total + {bump};
                last = b;
                store8(table + (b % 64), b);
                i = i + 1;
            }}
            if (n > 0 && last > {threshold}) {{
                fclose(f);
                return total;
            }}
            // handle f and scratch both leak on this path
            return total;
        }}
    "#
    )
}

fn inputs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay determinism: interleaving arbitrary other inputs never
    /// changes what a given input does under ClosureX, and the result
    /// always equals the forkserver's (fresh-semantics) result.
    #[test]
    fn closurex_matches_fresh_semantics_under_any_interleaving(
        bump in 1u8..5,
        leak in 1u16..512,
        threshold in 0u8..255,
        seq in inputs(),
        probe in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let src = target_source(bump, leak, threshold);
        let module = minic::compile("prop", &src).expect("template compiles");

        // Ground truth from the (correct, isolated) forkserver.
        let mut fk = ForkServerExecutor::new(&module).expect("instrument");
        let truth = fk.run(&probe).status;

        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        // Heavy interleaving: pollute, probe, pollute differently, probe.
        for s in &seq {
            let _ = cx.run(s);
        }
        let first = cx.run(&probe).status;
        for s in seq.iter().rev() {
            let _ = cx.run(s);
            let _ = cx.run(s);
        }
        let second = cx.run(&probe).status;

        prop_assert_eq!(&first, &truth, "ClosureX must match fresh semantics");
        prop_assert_eq!(&second, &truth, "and must be replay-deterministic");
    }

    /// Resource hygiene: after any run sequence, the harness process holds
    /// zero live heap bytes and zero open descriptors.
    #[test]
    fn restoration_leaves_no_residue(
        leak in 1u16..2048,
        seq in inputs(),
    ) {
        let src = target_source(1, leak, 255); // threshold 255 → always leaks f
        let module = minic::compile("prop", &src).expect("template compiles");
        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        for s in &seq {
            let out = cx.run(s);
            prop_assert!(
                matches!(out.status, ExecStatus::Exit(_)),
                "template has no bugs: {:?}",
                out.status
            );
            let p = cx.process().expect("alive");
            prop_assert_eq!(p.heap.live_bytes(), 0, "heap swept every iteration");
            prop_assert_eq!(p.fds.open_count(), 0, "fds swept every iteration");
        }
    }

    /// The restore cost only depends on what the test case dirtied — it is
    /// bounded and does not creep as the campaign ages.
    #[test]
    fn restore_cost_does_not_creep(seq in inputs()) {
        let src = target_source(2, 64, 10);
        let module = minic::compile("prop", &src).expect("template compiles");
        let mut cx = ClosureXExecutor::new(&module, ClosureXConfig::default())
            .expect("instrument");
        let mut costs = Vec::new();
        for _ in 0..3 {
            for s in &seq {
                let _ = cx.run(s);
                costs.push(cx.last_restore().cycles);
            }
        }
        let min = costs.iter().min().expect("non-empty");
        let max = costs.iter().max().expect("non-empty");
        // Identical per-input work across rounds → identical cost per
        // input; across inputs the spread is bounded by one chunk + one fd.
        prop_assert!(max - min <= 200, "restore cost crept: min={min} max={max}");
    }
}
