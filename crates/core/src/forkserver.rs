//! Forkserver execution: the AFL++ baseline.
//!
//! The binary is loaded **once**; the forkserver parent pauses at `main`.
//! Each test case costs one `fork(2)` (page-table duplication +
//! copy-on-write), one control-pipe round trip, and one child teardown.
//! This is the fastest *correct* conventional mechanism and the baseline
//! ClosureX is compared against throughout the paper's evaluation.

use std::sync::Arc;

use fir::Module;
use passes::pipelines::baseline_pipeline;
use passes::PassError;
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CallResult, CovMap, DecodedImage, FaultPlan, FaultPlane, HostCtx, Machine, Os, Process};

use crate::executor::{ExecOutcome, ExecStatus, Executor, DEFAULT_FUEL};
use crate::resilience::{HarnessError, ResilienceReport};

/// See module docs.
#[derive(Debug)]
pub struct ForkServerExecutor {
    os: Os,
    module: Module,
    image: Arc<DecodedImage>,
    parent: Process,
    cov: CovMap,
    fuel: u64,
    /// One-time cost of bringing the forkserver up (binary load).
    setup_cycles: u64,
    harness_faults: u64,
    /// Cached `Module::fingerprint` of the instrumented module.
    fingerprint: u64,
}

impl ForkServerExecutor {
    /// Instrument with coverage only, load the forkserver parent.
    ///
    /// # Errors
    /// Propagates pass failures.
    pub fn new(module: &Module) -> Result<Self, PassError> {
        let mut m = module.clone();
        baseline_pipeline().run(&mut m)?;
        let mut os = Os::new();
        let (parent, setup_cycles) = os.spawn(&m);
        let image = DecodedImage::cached(&m);
        let fingerprint = m.fingerprint();
        Ok(ForkServerExecutor {
            os,
            module: m,
            image,
            parent,
            cov: CovMap::new(),
            fuel: DEFAULT_FUEL,
            setup_cycles,
            harness_faults: 0,
            fingerprint,
        })
    }

    /// Override the fuel budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// One-time forkserver bring-up cost.
    pub fn setup_cycles(&self) -> u64 {
        self.setup_cycles
    }
}

impl Executor for ForkServerExecutor {
    fn name(&self) -> &'static str {
        "afl-forkserver"
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        self.cov.clear();
        self.os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
        let (mut child, fork_cycles) = match self.os.try_fork(&self.parent) {
            Ok(r) => r,
            Err(e) => {
                // The real AFL++ forkserver reports a failed fork over the
                // control pipe and the fuzzer retries; mirror that.
                self.harness_faults += 1;
                return ExecOutcome {
                    status: ExecStatus::Fault(HarnessError::ForkFailed(e.to_string())),
                    exec_cycles: 0,
                    mgmt_cycles: self.os.cost.fork(0),
                    insts: 0,
                };
            }
        };
        child.cov_state.reset();
        let machine = Machine::with_image(&self.module, &self.image);
        let out = {
            let mut ctx = HostCtx::new(&mut self.os, &mut self.cov);
            machine.call(&mut child, &mut ctx, "main", &[0, 0], self.fuel)
        };
        let pipe_cycles = self.os.cost.forkserver_pipe;
        self.os.mgmt_cycles += pipe_cycles;
        // Teardown also charges the CoW faults this child took while
        // dirtying shared pages.
        let teardown_cycles = self.os.teardown(child);
        let status = match out.result {
            CallResult::Return(v) => ExecStatus::Exit(v as i32),
            CallResult::Exited(c) | CallResult::ExitHooked(c) => ExecStatus::Exit(c),
            CallResult::Crashed(c) => ExecStatus::Crash(c),
            CallResult::OutOfFuel => ExecStatus::Hang,
        };
        ExecOutcome {
            status,
            exec_cycles: out.cycles,
            mgmt_cycles: fork_cycles + pipe_cycles + teardown_cycles,
            insts: out.insts,
        }
    }

    fn coverage(&self) -> &CovMap {
        &self.cov
    }

    fn fuel(&self) -> u64 {
        self.fuel
    }

    fn inject_faults(&mut self, plan: FaultPlan) {
        self.os.fault = FaultPlane::new(plan);
    }

    fn resilience(&self) -> ResilienceReport {
        ResilienceReport {
            harness_faults: self.harness_faults,
            ..ResilienceReport::default()
        }
    }

    fn module_fingerprint(&self) -> Option<u64> {
        Some(self.fingerprint)
    }

    fn warm_decoded_image(&self, sidecar_dir: Option<&std::path::Path>) -> Option<vmos::WarmSource> {
        Some(vmos::DecodedImage::warm_with_sidecar(&self.module, sidecar_dir))
    }

    fn save_decoded_sidecar(&self, dir: &std::path::Path) -> bool {
        let img = vmos::DecodedImage::cached(&self.module);
        vmos::decoded::sidecar::save(dir, &img).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fresh::FreshProcessExecutor;

    fn module(src: &str) -> Module {
        minic::compile("t", src).unwrap()
    }

    const STATEFUL: &str = r#"
        global count;
        fn main() {
            count = count + 1;
            return count;
        }
    "#;

    #[test]
    fn children_are_isolated_from_each_other() {
        let m = module(STATEFUL);
        let mut ex = ForkServerExecutor::new(&m).unwrap();
        for _ in 0..4 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
        }
    }

    #[test]
    fn parent_is_never_dirtied() {
        let m = module(STATEFUL);
        let mut ex = ForkServerExecutor::new(&m).unwrap();
        let g = ex.parent.globals.addr_of_name("count").unwrap();
        ex.run(b"x");
        assert_eq!(ex.parent.mem.read_uint(g, 8), 0);
    }

    #[test]
    fn cheaper_than_fresh_process() {
        let m = module(STATEFUL);
        let mut fresh = FreshProcessExecutor::new(&m).unwrap();
        let mut fork = ForkServerExecutor::new(&m).unwrap();
        let f = fresh.run(b"x");
        let k = fork.run(b"x");
        assert!(
            k.mgmt_cycles < f.mgmt_cycles,
            "fork {} must beat spawn {}",
            k.mgmt_cycles,
            f.mgmt_cycles
        );
        assert_eq!(f.exec_cycles, k.exec_cycles, "same target work");
    }

    #[test]
    fn crash_in_child_does_not_poison_parent() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[4];
                fread(buf, 1, 4, f);
                fclose(f);
                if (load8(buf) == 'X') { return load64(0); }
                return 0;
            }
        "#,
        );
        let mut ex = ForkServerExecutor::new(&m).unwrap();
        let crash = ex.run(b"X");
        assert!(crash.status.crash().is_some());
        let ok = ex.run(b"A");
        assert_eq!(ok.status, ExecStatus::Exit(0));
    }
}
