//! The ClosureX harness: a persistent loop with fine-grain state
//! restoration (paper §4, Listing 1).
//!
//! Per iteration the harness:
//!
//! 1. waits for the fuzzer's next test case (here: the input argument),
//! 2. arms the abnormal-exit restore point (the `setjmp` of Listing 1 —
//!    realized as the interpreter's `ExitHooked` unwind, installed by the
//!    `ExitPass`),
//! 3. calls `target_main`,
//! 4. restores state: the **stack** is already unwound (normal return or
//!    hook), then leaked **heap** chunks are swept via the chunk map
//!    (Fig. 5), the **global** section is restored from its snapshot
//!    (Fig. 4), and stray **file handles** are closed — with
//!    initialization-phase handles rewound instead of reopened.
//!
//! Construction applies the full ClosureX pass pipeline; no fuzzer or
//! target modification is needed, mirroring the paper's AFL++ integration.

use std::sync::Arc;

use fir::{Module, Section};
use passes::pipelines::closurex_pipeline;
use passes::{PassError, PassReport, TARGET_MAIN};
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CallResult, CovMap, DecodedImage, FaultPlan, FaultPlane, HostCtx, Machine, Os, Process};

use crate::checkpoint::ExecutorState;
use crate::executor::{ExecOutcome, ExecStatus, Executor, DEFAULT_FUEL};
use crate::resilience::{
    fnv1a, DegradationLevel, HarnessError, IntegrityPolicy, ResilienceReport, RestoreDivergence,
};

/// Most quarantined inputs retained for inspection; older entries are
/// dropped first (campaigns only need a sample, not an unbounded log).
const QUARANTINE_CAP: usize = 64;

/// Which global-restore implementation to use (ablation target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreStrategy {
    /// Copy the whole `closure_global_section` back (the paper's design).
    #[default]
    FullSection,
    /// Scan for dirty bytes and rewrite only those (cheaper restore for
    /// sparse writers, pays a scan).
    DirtyOnly,
}

/// Harness configuration, including the ablation toggles DESIGN.md lists.
#[derive(Debug, Clone)]
pub struct ClosureXConfig {
    /// Per-test-case instruction budget.
    pub fuel: u64,
    /// Run one warm-up iteration at boot and snapshot *after* it, hoisting
    /// input-independent initialization out of the loop (the paper's
    /// deferred-initialization future-work feature).
    pub deferred_init: bool,
    /// Input for the warm-up iteration.
    pub warmup_input: Vec<u8>,
    /// Global-restore strategy.
    pub restore_strategy: RestoreStrategy,
    /// Sweep leaked heap chunks (ablation toggle).
    pub heap_sweep: bool,
    /// Restore the global section (ablation toggle).
    pub global_restore: bool,
    /// Close stray file handles (ablation toggle).
    pub fd_sweep: bool,
    /// Rewind init-phase handles instead of closing them.
    pub init_fd_rewind: bool,
    /// Online restore-integrity verification policy.
    pub integrity: IntegrityPolicy,
}

impl Default for ClosureXConfig {
    fn default() -> Self {
        ClosureXConfig {
            fuel: DEFAULT_FUEL,
            deferred_init: false,
            warmup_input: Vec::new(),
            restore_strategy: RestoreStrategy::FullSection,
            heap_sweep: true,
            global_restore: true,
            fd_sweep: true,
            init_fd_rewind: true,
            integrity: IntegrityPolicy::default(),
        }
    }
}

/// Per-iteration restoration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Bytes written back into the global section.
    pub global_bytes: u64,
    /// Leaked chunks freed by the sweep.
    pub leaked_chunks: u64,
    /// Stray handles closed.
    pub stray_fds: u64,
    /// Init-phase handles rewound.
    pub init_rewinds: u64,
    /// Total restore cycles charged.
    pub cycles: u64,
}

/// The ClosureX execution mechanism. See module docs.
#[derive(Debug)]
pub struct ClosureXExecutor {
    os: Os,
    module: Module,
    image: Arc<DecodedImage>,
    proc: Option<Process>,
    /// Ground-truth snapshot of `closure_global_section`.
    snapshot: Vec<u8>,
    /// `(addr, size)` of the section (the CLOSURE_GLOBAL_SECTION_* analog).
    section: Option<(u64, u64)>,
    cov: CovMap,
    cfg: ClosureXConfig,
    pass_reports: Vec<PassReport>,
    last_restore: RestoreStats,
    baseline_heap_bytes: u64,
    respawns: u64,
    /// Pristine post-boot process image. After a crash kills the
    /// persistent process, recovery is a `fork` of this template (the
    /// AFL++-forkserver integration the paper uses), not a full re-exec.
    template: Option<Process>,
    /// FNV-1a of the boot-time global snapshot (integrity ground truth).
    boot_hash: u64,
    /// Open descriptors right after boot (integrity ground truth).
    baseline_fd_open: usize,
    /// Restores performed (drives the sampled integrity check cadence).
    iters: u64,
    /// Integrity checks performed.
    integrity_checks: u64,
    /// Divergences the integrity check has detected.
    divergences: u64,
    /// Most recent divergence, for inspection and reports.
    last_divergence: Option<RestoreDivergence>,
    /// Inputs whose observed behavior is untrustworthy because the restore
    /// they ran on top of had diverged (bounded at [`QUARANTINE_CAP`]).
    quarantine: Vec<Vec<u8>>,
    /// Quarantined inputs evicted past [`QUARANTINE_CAP`] — reports use
    /// this to flag the ring as a sample rather than the full set.
    quarantine_dropped: u64,
    /// Harness faults surfaced as [`ExecStatus::Fault`].
    harness_faults: u64,
    /// Current position on the degradation ladder.
    degradation: DegradationLevel,
    /// Cached `Module::fingerprint` of the *transformed* module — the same
    /// module the decoded-image cache is keyed by, so checkpoints written
    /// against this executor validate against what actually runs.
    fingerprint: u64,
}

impl ClosureXExecutor {
    /// Apply the ClosureX pipeline to `module` and boot the harness
    /// process.
    ///
    /// # Errors
    /// Propagates pass failures (e.g. no `main` in the target).
    pub fn new(module: &Module, cfg: ClosureXConfig) -> Result<Self, PassError> {
        let mut m = module.clone();
        let pass_reports = closurex_pipeline().run(&mut m)?;
        let image = DecodedImage::cached(&m);
        let fingerprint = m.fingerprint();
        let mut ex = ClosureXExecutor {
            os: Os::new(),
            module: m,
            image,
            proc: None,
            snapshot: Vec::new(),
            section: None,
            cov: CovMap::new(),
            cfg,
            pass_reports,
            last_restore: RestoreStats::default(),
            baseline_heap_bytes: 0,
            respawns: 0,
            template: None,
            boot_hash: 0,
            baseline_fd_open: 0,
            iters: 0,
            integrity_checks: 0,
            divergences: 0,
            last_divergence: None,
            quarantine: Vec::new(),
            quarantine_dropped: 0,
            harness_faults: 0,
            degradation: DegradationLevel::Persistent,
            fingerprint,
        };
        // The fault plane is still disabled at construction, so boot cannot
        // be refused here; if it ever is, the first run surfaces the fault.
        let _ = ex.boot();
        Ok(ex)
    }

    /// Boot (or re-boot after a crash): spawn, optionally run deferred
    /// init, and take the ground-truth global snapshot.
    ///
    /// # Errors
    /// [`HarnessError::BootFailed`] when the OS refuses the spawn.
    fn boot(&mut self) -> Result<u64, HarnessError> {
        let (mut p, boot_cycles) = self
            .os
            .try_spawn(&self.module)
            .map_err(|e| HarnessError::BootFailed(e.to_string()))?;
        p.rt.enabled = true;
        if self.cfg.deferred_init {
            // Warm-up iteration: initialization-time allocations and file
            // handles are exempt from the per-iteration sweep.
            p.rt.in_init_phase = true;
            self.os
                .fs
                .write_file(FUZZ_INPUT_PATH, self.cfg.warmup_input.clone());
            let machine = Machine::with_image(&self.module, &self.image);
            let mut warm_cov = CovMap::new();
            let mut ctx = HostCtx::new(&mut self.os, &mut warm_cov);
            let _ = machine.call(&mut p, &mut ctx, TARGET_MAIN, &[0, 0], self.cfg.fuel);
            p.rt.in_init_phase = false;
            p.rt.chunk_map.clear();
            p.rt.open_files.clear();
            // Leave init-phase handles the way every iteration will find
            // them: rewound to the start.
            let init_handles: Vec<u64> = p.rt.init_files.clone();
            for h in init_handles {
                if let Some(f) = p.fds.get_mut(h) {
                    f.pos = 0;
                }
            }
        }
        self.section = p.globals.section_range(Section::ClosureGlobal);
        self.snapshot = match self.section {
            Some((addr, size)) => p.read_bytes(addr, size as usize),
            None => Vec::new(),
        };
        self.boot_hash = fnv1a(&self.snapshot);
        self.baseline_heap_bytes = p.heap.live_bytes();
        self.baseline_fd_open = p.fds.open_count();
        self.template = Some(p.clone());
        self.proc = Some(p);
        Ok(boot_cycles)
    }

    /// Recover after a crash/hang/divergence: fork the pristine template
    /// (the forkserver-style restart AFL++ performs for a dead persistent
    /// child). If the fork is refused — the fault plane's process-table
    /// pressure — fall back to a full re-boot before giving up. Returns the
    /// cycles charged.
    ///
    /// # Errors
    /// [`HarnessError`] when both the template fork and the fallback boot
    /// are refused.
    fn respawn_from_template(&mut self) -> Result<u64, HarnessError> {
        let Some(template) = self.template.as_ref() else {
            // No template to fork — recovery degrades to a full boot.
            let cycles = self.boot()?;
            self.respawns += 1;
            return Ok(cycles);
        };
        match self.os.try_fork(template) {
            Ok((child, cycles)) => {
                self.proc = Some(child);
                self.respawns += 1;
                Ok(cycles)
            }
            Err(_) => {
                // Fork refused; a fresh spawn allocates no page tables from
                // the parent and may still succeed.
                let cycles = self.boot()?;
                self.respawns += 1;
                Ok(cycles)
            }
        }
    }

    /// Pass reports from instrumentation (Table 3 evidence).
    pub fn pass_reports(&self) -> &[PassReport] {
        &self.pass_reports
    }

    /// Restore statistics of the most recent iteration.
    pub fn last_restore(&self) -> RestoreStats {
        self.last_restore
    }

    /// `(addr, size)` of `closure_global_section`.
    pub fn section(&self) -> Option<(u64, u64)> {
        self.section
    }

    /// The live harness process (inspection in tests).
    pub fn process(&self) -> Option<&Process> {
        self.proc.as_ref()
    }

    /// Times the process was re-booted after a crash or hang.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Divergences the sampled integrity check has detected.
    pub fn divergences(&self) -> u64 {
        self.divergences
    }

    /// Most recent restore divergence, if any.
    pub fn last_divergence(&self) -> Option<&RestoreDivergence> {
        self.last_divergence.as_ref()
    }

    /// Inputs quarantined after a detected divergence (bounded sample).
    pub fn quarantined(&self) -> &[Vec<u8>] {
        &self.quarantine
    }

    /// Current position on the degradation ladder.
    pub fn degradation(&self) -> DegradationLevel {
        self.degradation
    }

    /// FNV-1a of the boot-time global snapshot (the integrity ground truth).
    pub fn boot_hash(&self) -> u64 {
        self.boot_hash
    }

    /// Verify post-restore state against the boot ground truth: global
    /// section hash, then heap census, then fd census. Returns the first
    /// divergence found.
    fn check_integrity(&mut self) -> Option<RestoreDivergence> {
        self.integrity_checks += 1;
        let p = self.proc.as_ref()?;
        // The scan is charged like a bulk read of the section.
        if let Some((addr, size)) = self.section {
            let cycles = self.os.cost.bulk(1, size);
            self.os.mgmt_cycles += cycles;
            let actual = fnv1a(&p.read_bytes(addr, size as usize));
            if actual != self.boot_hash {
                return Some(RestoreDivergence::GlobalSectionHash {
                    expected: self.boot_hash,
                    actual,
                });
            }
        }
        let live = p.heap.live_bytes();
        if live != self.baseline_heap_bytes {
            return Some(RestoreDivergence::HeapCensus {
                expected_bytes: self.baseline_heap_bytes,
                actual_bytes: live,
            });
        }
        let open = p.fds.open_count();
        if open != self.baseline_fd_open {
            return Some(RestoreDivergence::FdCensus {
                expected_open: self.baseline_fd_open,
                actual_open: open,
            });
        }
        None
    }

    /// React to a detected divergence: quarantine the input that ran on the
    /// corrupt state, discard the tainted process, respawn from the
    /// pristine template, and — past the policy threshold — fall down the
    /// continuum to fork-per-exec. Returns the respawn cycles charged.
    fn handle_divergence(&mut self, divergence: RestoreDivergence, input: &[u8]) -> u64 {
        self.divergences += 1;
        self.last_divergence = Some(divergence);
        if self.quarantine.len() >= QUARANTINE_CAP {
            self.quarantine.remove(0);
            self.quarantine_dropped += 1;
        }
        self.quarantine.push(input.to_vec());
        let mut cycles = 0;
        if let Some(tainted) = self.proc.take() {
            cycles += self.os.teardown(tainted);
        }
        // A failed respawn leaves proc None; the next run retries it.
        if let Ok(c) = self.respawn_from_template() {
            cycles += c;
        }
        let threshold = self.cfg.integrity.max_divergences;
        if threshold > 0 && self.divergences >= threshold {
            self.degradation = DegradationLevel::ForkPerExec;
        }
        cycles
    }

    /// Fork-per-exec fallback: run `input` in a throwaway fork of the
    /// pristine template (forkserver semantics — correct on any substrate,
    /// paying the fork + teardown the persistent loop was built to avoid).
    fn run_fork_per_exec(
        &mut self,
        trace: Option<&mut Vec<u16>>,
        capture_globals: bool,
    ) -> (ExecOutcome, Option<Vec<u8>>) {
        let Some(template) = self.template.as_ref() else {
            self.harness_faults += 1;
            return (
                ExecOutcome {
                    status: ExecStatus::Fault(HarnessError::TemplateMissing),
                    exec_cycles: 0,
                    mgmt_cycles: 0,
                    insts: 0,
                },
                None,
            );
        };
        let (mut child, fork_cycles) = match self.os.try_fork(template) {
            Ok(r) => r,
            Err(e) => {
                self.harness_faults += 1;
                return (
                    ExecOutcome {
                        status: ExecStatus::Fault(HarnessError::ForkFailed(e.to_string())),
                        exec_cycles: 0,
                        mgmt_cycles: self.os.cost.fork(0),
                        insts: 0,
                    },
                    None,
                );
            }
        };
        child.cov_state.reset();
        let machine = Machine::with_image(&self.module, &self.image);
        let out = {
            let mut ctx = match trace {
                Some(t) => HostCtx::with_trace(&mut self.os, &mut self.cov, t),
                None => HostCtx::new(&mut self.os, &mut self.cov),
            };
            machine.call(&mut child, &mut ctx, TARGET_MAIN, &[0, 0], self.cfg.fuel)
        };
        let captured = if capture_globals {
            self.section
                .map(|(addr, size)| child.read_bytes(addr, size as usize))
        } else {
            None
        };
        let teardown = self.os.teardown(child);
        let status = match out.result {
            CallResult::Return(v) => ExecStatus::Exit(v as i32),
            CallResult::Exited(c) | CallResult::ExitHooked(c) => ExecStatus::Exit(c),
            CallResult::Crashed(c) => ExecStatus::Crash(c),
            CallResult::OutOfFuel => ExecStatus::Hang,
        };
        (
            ExecOutcome {
                status,
                exec_cycles: out.cycles,
                mgmt_cycles: fork_cycles + teardown,
                insts: out.insts,
            },
            captured,
        )
    }

    /// Run one test case, optionally capturing a path trace and the global
    /// section contents *after* execution but *before* restoration — the
    /// capture point the correctness evaluation (§6.1.4) compares against
    /// fresh-process ground truth.
    pub fn run_captured(
        &mut self,
        input: &[u8],
        trace: Option<&mut Vec<u16>>,
        capture_globals: bool,
    ) -> (ExecOutcome, Option<Vec<u8>>) {
        self.cov.clear();
        self.os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
        if self.degradation == DegradationLevel::ForkPerExec {
            return self.run_fork_per_exec(trace, capture_globals);
        }
        let mut mgmt = self.os.cost.persistent_loop;
        if self.proc.is_none() {
            match self.respawn_from_template() {
                Ok(c) => mgmt += c,
                Err(e) => {
                    self.harness_faults += 1;
                    return (
                        ExecOutcome {
                            status: ExecStatus::Fault(e),
                            exec_cycles: 0,
                            mgmt_cycles: mgmt,
                            insts: 0,
                        },
                        None,
                    );
                }
            }
        }
        let Some(p) = self.proc.as_mut() else {
            self.harness_faults += 1;
            return (
                ExecOutcome {
                    status: ExecStatus::Fault(HarnessError::ProcessLost),
                    exec_cycles: 0,
                    mgmt_cycles: mgmt,
                    insts: 0,
                },
                None,
            );
        };
        p.cov_state.reset();
        let machine = Machine::with_image(&self.module, &self.image);
        let out = {
            let mut ctx = match trace {
                Some(t) => HostCtx::with_trace(&mut self.os, &mut self.cov, t),
                None => HostCtx::new(&mut self.os, &mut self.cov),
            };
            machine.call(p, &mut ctx, TARGET_MAIN, &[0, 0], self.cfg.fuel)
        };
        let captured = if capture_globals {
            match (self.section, self.proc.as_ref()) {
                (Some((addr, size)), Some(p)) => Some(p.read_bytes(addr, size as usize)),
                _ => None,
            }
        } else {
            None
        };
        let (mut status, kill) = match out.result {
            CallResult::Return(v) => (ExecStatus::Exit(v as i32), false),
            CallResult::ExitHooked(c) => (ExecStatus::Exit(c), false),
            // `exit` inside host-library code is deliberately not hooked
            // (paper §4.1): it still terminates the process.
            CallResult::Exited(c) => (ExecStatus::Exit(c), true),
            CallResult::Crashed(c) => (ExecStatus::Crash(c), true),
            CallResult::OutOfFuel => (ExecStatus::Hang, true),
        };
        if kill {
            if let Some(dead) = self.proc.take() {
                mgmt += self.os.teardown(dead);
            }
        } else {
            match self.restore() {
                Ok(c) => mgmt += c,
                Err(e) => {
                    // Restoration failed partway: the process state is no
                    // longer trustworthy. Discard it (the next run respawns
                    // from the template) and surface the fault — the
                    // campaign retries this input on a clean process.
                    self.harness_faults += 1;
                    if let Some(tainted) = self.proc.take() {
                        mgmt += self.os.teardown(tainted);
                    }
                    status = ExecStatus::Fault(e);
                }
            }
            if self.proc.is_some() {
                // Substrate corruption lands *after* restoration wrote
                // pristine state back — exactly what the sampled integrity
                // check exists to catch.
                self.inject_post_restore_corruption();
                let every = self.cfg.integrity.check_every;
                if every > 0 && self.iters.is_multiple_of(every) {
                    if let Some(d) = self.check_integrity() {
                        mgmt += self.handle_divergence(d, input);
                    }
                }
            }
        }
        (
            ExecOutcome {
                status,
                exec_cycles: out.cycles,
                mgmt_cycles: mgmt,
                insts: out.insts,
            },
            captured,
        )
    }

    /// Apply any due fault-plane bit-flip to the restored global section.
    fn inject_post_restore_corruption(&mut self) {
        let Some((addr, size)) = self.section else {
            return;
        };
        if let Some((off, mask)) = self.os.fault.bitflip_for(size) {
            if let Some(p) = self.proc.as_mut() {
                let byte = p.read_bytes(addr + off, 1)[0];
                p.write_bytes(addr + off, &[byte ^ mask]);
            }
        }
    }

    /// End-of-iteration fine-grain state restoration. Returns cycles
    /// charged.
    ///
    /// # Errors
    /// [`HarnessError`] when no process is live or the heap sweep meets a
    /// chunk the allocator no longer recognizes (corrupt chunk map).
    fn restore(&mut self) -> Result<u64, HarnessError> {
        self.iters += 1;
        let p = self.proc.as_mut().ok_or(HarnessError::ProcessLost)?;
        let cost = &self.os.cost;
        let mut stats = RestoreStats::default();

        // 1. Heap: free everything still in the chunk map (Fig. 5 step C).
        //    Sorted order keeps the allocator deterministic run-to-run.
        if self.cfg.heap_sweep {
            let mut leaked: Vec<u64> = p.rt.chunk_map.keys().copied().collect();
            leaked.sort_unstable();
            for ptr in leaked {
                // The chunk map should only hold live chunks; a failed free
                // means the map is corrupt, which taints the whole process.
                p.heap.free(ptr).map_err(|e| {
                    HarnessError::RestoreFailed(format!("heap sweep: free({ptr:#x}) failed: {e:?}"))
                })?;
                stats.leaked_chunks += 1;
            }
        }
        p.rt.chunk_map.clear();

        // 2. Globals: restore the snapshot (Fig. 4).
        if self.cfg.global_restore {
            if let Some((addr, size)) = self.section {
                match self.cfg.restore_strategy {
                    RestoreStrategy::FullSection => {
                        p.write_bytes(addr, &self.snapshot);
                        stats.global_bytes = size;
                    }
                    RestoreStrategy::DirtyOnly => {
                        let current = p.read_bytes(addr, size as usize);
                        let mut dirty = 0u64;
                        for (i, (cur, orig)) in current.iter().zip(self.snapshot.iter()).enumerate()
                        {
                            if cur != orig {
                                p.write_bytes(addr + i as u64, &[*orig]);
                                dirty += 1;
                            }
                        }
                        // Scan cost: treat 64 scanned bytes as 1 restored.
                        stats.global_bytes = dirty + size / 64;
                    }
                }
            }
        }

        // 3. Files: close strays, rewind init handles.
        if self.cfg.fd_sweep {
            let strays: Vec<u64> = p.rt.open_files.drain(..).collect();
            for h in strays {
                if p.fds.close(h).is_ok() {
                    stats.stray_fds += 1;
                }
            }
            if self.cfg.init_fd_rewind {
                let init_handles: Vec<u64> = p.rt.init_files.clone();
                for h in init_handles {
                    if let Some(f) = p.fds.get_mut(h) {
                        f.pos = 0;
                        stats.init_rewinds += 1;
                    }
                }
            }
        } else {
            p.rt.open_files.clear();
        }

        stats.cycles = cost.restore(
            stats.global_bytes,
            stats.leaked_chunks,
            stats.stray_fds,
            stats.init_rewinds,
        );
        self.os.mgmt_cycles += stats.cycles;
        self.last_restore = stats;
        Ok(stats.cycles)
    }
}

impl Executor for ClosureXExecutor {
    fn name(&self) -> &'static str {
        "closurex"
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        self.run_captured(input, None, false).0
    }

    fn coverage(&self) -> &CovMap {
        &self.cov
    }

    fn fuel(&self) -> u64 {
        self.cfg.fuel
    }

    fn inject_faults(&mut self, plan: FaultPlan) {
        self.os.fault = FaultPlane::new(plan);
    }

    fn resilience(&self) -> ResilienceReport {
        ResilienceReport {
            respawns: self.respawns,
            divergences: self.divergences,
            integrity_checks: self.integrity_checks,
            quarantined: self.quarantine.len() as u64 + self.quarantine_dropped,
            quarantine_dropped: self.quarantine_dropped,
            harness_faults: self.harness_faults,
            degradation: self.degradation,
        }
    }

    fn export_state(&self) -> Option<ExecutorState> {
        let (fault_rolls, fault_injected) = self.os.fault.export_counters();
        // CoW lineage: teardown charges the process's accumulated faults,
        // and future faults depend on which pages are still shared with the
        // template — both must survive a kill/resume or the resumed run's
        // next teardown drifts.
        let (proc_cow_faults, proc_private_pages) = match (&self.proc, &self.template) {
            (Some(p), Some(t)) => (p.mem.cow_faults(), p.mem.private_pages_vs(&t.mem)),
            (Some(p), None) => (p.mem.cow_faults(), Vec::new()),
            _ => (0, Vec::new()),
        };
        Some(ExecutorState {
            respawns: self.respawns,
            divergences: self.divergences,
            integrity_checks: self.integrity_checks,
            harness_faults: self.harness_faults,
            iters: self.iters,
            degradation: self.degradation,
            proc_alive: self.proc.is_some(),
            quarantine: self.quarantine.clone(),
            quarantine_dropped: self.quarantine_dropped,
            fault_rolls,
            fault_injected,
            proc_cow_faults,
            proc_private_pages,
        })
    }

    fn restore_state(&mut self, state: &ExecutorState) -> Result<(), HarnessError> {
        // The executor was just rebuilt from the module: its boot process is
        // byte-identical to what a template fork would have produced, so
        // only the counters (and process liveness) need restoring. The
        // fault *plan* is configuration and must be re-armed by the caller
        // (via `inject_faults`) before this restores the stream position.
        self.respawns = state.respawns;
        self.divergences = state.divergences;
        self.integrity_checks = state.integrity_checks;
        self.harness_faults = state.harness_faults;
        self.iters = state.iters;
        self.degradation = state.degradation;
        self.quarantine = state.quarantine.clone();
        self.quarantine_dropped = state.quarantine_dropped;
        self.os
            .fault
            .restore_counters(state.fault_rolls, state.fault_injected);
        if !state.proc_alive {
            // The killed run's process was dead (crash/hang teardown); the
            // next run must pay the same template respawn it would have.
            self.proc = None;
        } else if let Some(p) = self.proc.as_mut() {
            // The rebuilt boot process shares every page with the template
            // (the template is a clone of it), but the checkpointed process
            // had already privatized some pages and accrued CoW faults that
            // its eventual teardown will charge. Graft that lineage back on,
            // or the resumed teardown under-charges by one fault per page
            // the killed run privatized but the resumed run never rewrites.
            for idx in &state.proc_private_pages {
                p.mem.privatize(*idx);
            }
            p.mem.set_cow_faults(state.proc_cow_faults);
        }
        Ok(())
    }

    fn module_fingerprint(&self) -> Option<u64> {
        Some(self.fingerprint)
    }

    fn warm_decoded_image(&self, sidecar_dir: Option<&std::path::Path>) -> Option<vmos::WarmSource> {
        Some(vmos::DecodedImage::warm_with_sidecar(&self.module, sidecar_dir))
    }

    fn save_decoded_sidecar(&self, dir: &std::path::Path) -> bool {
        let img = vmos::DecodedImage::cached(&self.module);
        vmos::decoded::sidecar::save(dir, &img).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forkserver::ForkServerExecutor;
    use crate::naive::NaivePersistentExecutor;

    fn module(src: &str) -> Module {
        minic::compile("t", src).unwrap()
    }

    const STATEFUL: &str = r#"
        global count;
        fn main() {
            count = count + 1;
            return count;
        }
    "#;

    #[test]
    fn globals_restored_between_iterations() {
        let m = module(STATEFUL);
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..5 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1), "always fresh");
        }
        assert!(ex.last_restore().global_bytes > 0);
    }

    #[test]
    fn heap_leaks_swept() {
        let m = module(
            r#"
            fn main() {
                var a = malloc(100);
                var b = malloc(200);
                store8(a, 1);
                free(b);
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..10 {
            ex.run(b"x");
            assert_eq!(ex.last_restore().leaked_chunks, 1, "a leaks, b doesn't");
        }
        assert_eq!(
            ex.process().unwrap().heap.live_bytes(),
            0,
            "heap clean after sweep"
        );
    }

    #[test]
    fn exit_is_hooked_not_fatal() {
        let m = module("fn main() { exit(3); }");
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..3 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(3));
        }
        assert_eq!(ex.respawns(), 0, "exit() must not kill the process");
    }

    #[test]
    fn fds_swept() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                var buf[4];
                fread(buf, 1, 4, f);
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..100 {
            let out = ex.run(b"data");
            assert_eq!(out.status, ExecStatus::Exit(0), "no fd exhaustion ever");
            assert_eq!(ex.last_restore().stray_fds, 1);
        }
        assert_eq!(ex.process().unwrap().fds.open_count(), 0);
    }

    #[test]
    fn crash_forces_reboot_and_recovery() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[4];
                fread(buf, 1, 4, f);
                fclose(f);
                if (load8(buf) == 'X') { return load64(0); }
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        assert!(ex.run(b"X").status.crash().is_some());
        assert_eq!(ex.run(b"A").status, ExecStatus::Exit(0), "recovered");
        assert_eq!(ex.respawns(), 1, "recovery forked the template once");
    }

    #[test]
    fn restore_is_cheaper_than_fork() {
        let m = module(STATEFUL);
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut fk = ForkServerExecutor::new(&m).unwrap();
        let c = cx.run(b"x");
        let f = fk.run(b"x");
        assert!(
            c.mgmt_cycles < f.mgmt_cycles,
            "closurex restore {} must beat fork {}",
            c.mgmt_cycles,
            f.mgmt_cycles
        );
    }

    #[test]
    fn matches_naive_persistent_within_restore_cost() {
        let m = module(STATEFUL);
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut np = NaivePersistentExecutor::new(&m).unwrap();
        let c = cx.run(b"x");
        let n = np.run(b"x");
        // Near-persistent performance: ClosureX pays only the fine-grain
        // restore over the naive loop.
        assert!(c.mgmt_cycles < n.mgmt_cycles + c.mgmt_cycles / 2 + 2000);
    }

    #[test]
    fn deferred_init_hoists_initialization() {
        let m = module(
            r#"
            global init_done;
            global expensive;
            fn init() {
                var i = 0;
                while (i < 1000) { expensive = expensive + i; i = i + 1; }
            }
            fn main() {
                if (init_done == 0) { init(); init_done = 1; }
                return expensive > 0;
            }
        "#,
        );
        let mut plain = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut deferred = ClosureXExecutor::new(
            &m,
            ClosureXConfig {
                deferred_init: true,
                ..ClosureXConfig::default()
            },
        )
        .unwrap();
        let p = plain.run(b"x");
        let d = deferred.run(b"x");
        assert_eq!(p.status, d.status, "same observable behavior");
        assert!(
            d.insts * 3 < p.insts,
            "init loop must be hoisted: deferred={} plain={}",
            d.insts,
            p.insts
        );
    }

    #[test]
    fn ablation_disabling_global_restore_leaks_state() {
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            global_restore: false,
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
        assert_eq!(
            ex.run(b"x").status,
            ExecStatus::Exit(2),
            "without GlobalPass restore, ClosureX degrades to naive persistent"
        );
    }

    #[test]
    fn post_restore_bitflip_detected_quarantined_and_respawned() {
        // The tentpole acceptance test: a bit flips in the global section
        // *after* restoration; the sampled integrity check catches it, the
        // input is quarantined, and the process is respawned from the
        // pristine template.
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 1,
                max_divergences: 0, // never degrade in this test
            },
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        ex.inject_faults(vmos::FaultPlan {
            seed: 42,
            restore_bitflip: 1.0, // corrupt after every restore
            ..vmos::FaultPlan::none()
        });
        let out = ex.run(b"tainted-input");
        assert_eq!(out.status, ExecStatus::Exit(1), "target itself ran fine");
        assert_eq!(ex.divergences(), 1, "flip must be detected immediately");
        assert!(matches!(
            ex.last_divergence(),
            Some(RestoreDivergence::GlobalSectionHash { .. })
        ));
        assert_eq!(ex.quarantined(), &[b"tainted-input".to_vec()]);
        assert_eq!(ex.respawns(), 1, "tainted process replaced from template");
        // The respawned process is pristine: the next run behaves fresh
        // (even though its own restore gets corrupted again afterwards).
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
    }

    #[test]
    fn quarantine_ring_evicts_past_cap_and_counts_drops() {
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 1,
                max_divergences: 0, // never degrade: every run diverges
            },
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        ex.inject_faults(vmos::FaultPlan {
            seed: 9,
            restore_bitflip: 1.0,
            ..vmos::FaultPlan::none()
        });
        let total = QUARANTINE_CAP + 6;
        for i in 0..total {
            ex.run(format!("in-{i}").as_bytes());
        }
        assert_eq!(ex.quarantined().len(), QUARANTINE_CAP, "ring is bounded");
        assert_eq!(
            ex.quarantined().first().map(Vec::as_slice),
            Some(b"in-6".as_slice()),
            "oldest entries evicted first"
        );
        let rep = ex.resilience();
        assert_eq!(rep.quarantine_dropped, 6);
        assert_eq!(
            rep.quarantined, total as u64,
            "report counts every quarantined input, not just the retained ring"
        );
    }

    #[test]
    fn repeated_divergences_degrade_to_fork_per_exec() {
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 1,
                max_divergences: 3,
            },
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        ex.inject_faults(vmos::FaultPlan {
            seed: 7,
            restore_bitflip: 1.0,
            ..vmos::FaultPlan::none()
        });
        for _ in 0..3 {
            assert_eq!(ex.degradation(), DegradationLevel::Persistent);
            ex.run(b"x");
        }
        assert_eq!(
            ex.degradation(),
            DegradationLevel::ForkPerExec,
            "threshold crossed: fall down the continuum"
        );
        // Fork-per-exec is immune to restore corruption: every run is a
        // fresh fork of the pristine template.
        let before = ex.divergences();
        for _ in 0..5 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
        }
        assert_eq!(ex.divergences(), before, "no more divergences possible");
        assert_eq!(ex.resilience().degradation, DegradationLevel::ForkPerExec);
    }

    #[test]
    fn fd_leak_injection_caught_by_fd_census() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                fclose(f);
                return 0;
            }
        "#,
        );
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 1,
                max_divergences: 0,
            },
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        ex.inject_faults(vmos::FaultPlan {
            seed: 3,
            fd_leak: 1.0, // every fclose leaks its slot
            ..vmos::FaultPlan::none()
        });
        ex.run(b"x");
        assert_eq!(ex.divergences(), 1);
        assert!(matches!(
            ex.last_divergence(),
            Some(RestoreDivergence::FdCensus { .. })
        ));
        assert_eq!(ex.respawns(), 1, "leaked slot reclaimed via respawn");
    }

    #[test]
    fn fork_failure_surfaces_fault_not_panic() {
        let m = module("fn main() { return load64(0); }"); // crashes every run
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        ex.inject_faults(vmos::FaultPlan {
            seed: 9,
            fork_fail: 1.0, // every fork AND every spawn refused
            ..vmos::FaultPlan::none()
        });
        ex.run(b"x"); // crash kills the process
        let out = ex.run(b"x"); // respawn is refused
        assert!(
            out.status.fault().is_some(),
            "must surface HarnessError, got {:?}",
            out.status
        );
        assert!(ex.resilience().harness_faults > 0);
    }

    #[test]
    fn integrity_sampling_respects_cadence() {
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            integrity: IntegrityPolicy {
                check_every: 4,
                max_divergences: 0,
            },
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        for _ in 0..16 {
            ex.run(b"x");
        }
        assert_eq!(
            ex.resilience().integrity_checks,
            4,
            "16 restores at cadence 4"
        );
    }

    #[test]
    fn init_fd_rewind_keeps_handle_usable() {
        // Deferred init opens the input once; each iteration reads it from
        // a rewound handle rather than reopening.
        let m = module(
            r#"
            global fh;
            fn main() {
                if (fh == 0) { fh = fopen("/fuzz/input", 0); }
                if (fh == 0) { exit(1); }
                var buf[4];
                var n = fread(buf, 1, 4, fh);
                return n;
            }
        "#,
        );
        let cfg = ClosureXConfig {
            deferred_init: true,
            warmup_input: b"warm".to_vec(),
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        for _ in 0..5 {
            let out = ex.run(b"abcd");
            assert_eq!(out.status, ExecStatus::Exit(4), "rewound handle re-reads");
            assert_eq!(ex.last_restore().init_rewinds, 1);
            assert_eq!(ex.last_restore().stray_fds, 0);
        }
    }
}
