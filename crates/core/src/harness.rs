//! The ClosureX harness: a persistent loop with fine-grain state
//! restoration (paper §4, Listing 1).
//!
//! Per iteration the harness:
//!
//! 1. waits for the fuzzer's next test case (here: the input argument),
//! 2. arms the abnormal-exit restore point (the `setjmp` of Listing 1 —
//!    realized as the interpreter's `ExitHooked` unwind, installed by the
//!    `ExitPass`),
//! 3. calls `target_main`,
//! 4. restores state: the **stack** is already unwound (normal return or
//!    hook), then leaked **heap** chunks are swept via the chunk map
//!    (Fig. 5), the **global** section is restored from its snapshot
//!    (Fig. 4), and stray **file handles** are closed — with
//!    initialization-phase handles rewound instead of reopened.
//!
//! Construction applies the full ClosureX pass pipeline; no fuzzer or
//! target modification is needed, mirroring the paper's AFL++ integration.

use fir::{Module, Section};
use passes::pipelines::closurex_pipeline;
use passes::{PassError, PassReport, TARGET_MAIN};
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CallResult, CovMap, HostCtx, Machine, Os, Process};

use crate::executor::{ExecOutcome, ExecStatus, Executor, DEFAULT_FUEL};

/// Which global-restore implementation to use (ablation target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreStrategy {
    /// Copy the whole `closure_global_section` back (the paper's design).
    #[default]
    FullSection,
    /// Scan for dirty bytes and rewrite only those (cheaper restore for
    /// sparse writers, pays a scan).
    DirtyOnly,
}

/// Harness configuration, including the ablation toggles DESIGN.md lists.
#[derive(Debug, Clone)]
pub struct ClosureXConfig {
    /// Per-test-case instruction budget.
    pub fuel: u64,
    /// Run one warm-up iteration at boot and snapshot *after* it, hoisting
    /// input-independent initialization out of the loop (the paper's
    /// deferred-initialization future-work feature).
    pub deferred_init: bool,
    /// Input for the warm-up iteration.
    pub warmup_input: Vec<u8>,
    /// Global-restore strategy.
    pub restore_strategy: RestoreStrategy,
    /// Sweep leaked heap chunks (ablation toggle).
    pub heap_sweep: bool,
    /// Restore the global section (ablation toggle).
    pub global_restore: bool,
    /// Close stray file handles (ablation toggle).
    pub fd_sweep: bool,
    /// Rewind init-phase handles instead of closing them.
    pub init_fd_rewind: bool,
}

impl Default for ClosureXConfig {
    fn default() -> Self {
        ClosureXConfig {
            fuel: DEFAULT_FUEL,
            deferred_init: false,
            warmup_input: Vec::new(),
            restore_strategy: RestoreStrategy::FullSection,
            heap_sweep: true,
            global_restore: true,
            fd_sweep: true,
            init_fd_rewind: true,
        }
    }
}

/// Per-iteration restoration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Bytes written back into the global section.
    pub global_bytes: u64,
    /// Leaked chunks freed by the sweep.
    pub leaked_chunks: u64,
    /// Stray handles closed.
    pub stray_fds: u64,
    /// Init-phase handles rewound.
    pub init_rewinds: u64,
    /// Total restore cycles charged.
    pub cycles: u64,
}

/// The ClosureX execution mechanism. See module docs.
#[derive(Debug)]
pub struct ClosureXExecutor {
    os: Os,
    module: Module,
    proc: Option<Process>,
    /// Ground-truth snapshot of `closure_global_section`.
    snapshot: Vec<u8>,
    /// `(addr, size)` of the section (the CLOSURE_GLOBAL_SECTION_* analog).
    section: Option<(u64, u64)>,
    cov: CovMap,
    cfg: ClosureXConfig,
    pass_reports: Vec<PassReport>,
    last_restore: RestoreStats,
    baseline_heap_bytes: u64,
    respawns: u64,
    /// Pristine post-boot process image. After a crash kills the
    /// persistent process, recovery is a `fork` of this template (the
    /// AFL++-forkserver integration the paper uses), not a full re-exec.
    template: Option<Process>,
}

impl ClosureXExecutor {
    /// Apply the ClosureX pipeline to `module` and boot the harness
    /// process.
    ///
    /// # Errors
    /// Propagates pass failures (e.g. no `main` in the target).
    pub fn new(module: &Module, cfg: ClosureXConfig) -> Result<Self, PassError> {
        let mut m = module.clone();
        let pass_reports = closurex_pipeline().run(&mut m)?;
        let mut ex = ClosureXExecutor {
            os: Os::new(),
            module: m,
            proc: None,
            snapshot: Vec::new(),
            section: None,
            cov: CovMap::new(),
            cfg,
            pass_reports,
            last_restore: RestoreStats::default(),
            baseline_heap_bytes: 0,
            respawns: 0,
            template: None,
        };
        ex.boot();
        Ok(ex)
    }

    /// Boot (or re-boot after a crash): spawn, optionally run deferred
    /// init, and take the ground-truth global snapshot.
    fn boot(&mut self) {
        let (mut p, _) = self.os.spawn(&self.module);
        p.rt.enabled = true;
        if self.cfg.deferred_init {
            // Warm-up iteration: initialization-time allocations and file
            // handles are exempt from the per-iteration sweep.
            p.rt.in_init_phase = true;
            self.os
                .fs
                .write_file(FUZZ_INPUT_PATH, self.cfg.warmup_input.clone());
            let machine = Machine::new(&self.module);
            let mut warm_cov = CovMap::new();
            let mut ctx = HostCtx::new(&mut self.os, &mut warm_cov);
            let _ = machine.call(&mut p, &mut ctx, TARGET_MAIN, &[0, 0], self.cfg.fuel);
            p.rt.in_init_phase = false;
            p.rt.chunk_map.clear();
            p.rt.open_files.clear();
            // Leave init-phase handles the way every iteration will find
            // them: rewound to the start.
            let init_handles: Vec<u64> = p.rt.init_files.clone();
            for h in init_handles {
                if let Some(f) = p.fds.get_mut(h) {
                    f.pos = 0;
                }
            }
        }
        self.section = p.globals.section_range(Section::ClosureGlobal);
        self.snapshot = match self.section {
            Some((addr, size)) => p.read_bytes(addr, size as usize),
            None => Vec::new(),
        };
        self.baseline_heap_bytes = p.heap.live_bytes();
        self.template = Some(p.clone());
        self.proc = Some(p);
    }

    /// Recover after a crash/hang: fork the pristine template (the
    /// forkserver-style restart AFL++ performs for a dead persistent
    /// child). Returns the cycles charged.
    fn respawn_from_template(&mut self) -> u64 {
        let template = self.template.as_ref().expect("booted");
        let (child, cycles) = self.os.fork(template);
        self.proc = Some(child);
        self.respawns += 1;
        cycles
    }

    /// Pass reports from instrumentation (Table 3 evidence).
    pub fn pass_reports(&self) -> &[PassReport] {
        &self.pass_reports
    }

    /// Restore statistics of the most recent iteration.
    pub fn last_restore(&self) -> RestoreStats {
        self.last_restore
    }

    /// `(addr, size)` of `closure_global_section`.
    pub fn section(&self) -> Option<(u64, u64)> {
        self.section
    }

    /// The live harness process (inspection in tests).
    pub fn process(&self) -> Option<&Process> {
        self.proc.as_ref()
    }

    /// Times the process was re-booted after a crash or hang.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Run one test case, optionally capturing a path trace and the global
    /// section contents *after* execution but *before* restoration — the
    /// capture point the correctness evaluation (§6.1.4) compares against
    /// fresh-process ground truth.
    pub fn run_captured(
        &mut self,
        input: &[u8],
        mut trace: Option<&mut Vec<u16>>,
        capture_globals: bool,
    ) -> (ExecOutcome, Option<Vec<u8>>) {
        self.cov.clear();
        self.os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
        let mut mgmt = self.os.cost.persistent_loop;
        if self.proc.is_none() {
            mgmt += self.respawn_from_template();
        }
        let p = self.proc.as_mut().expect("booted");
        p.cov_state.reset();
        let machine = Machine::new(&self.module);
        let out = {
            let mut ctx = match trace.as_deref_mut() {
                Some(t) => HostCtx::with_trace(&mut self.os, &mut self.cov, t),
                None => HostCtx::new(&mut self.os, &mut self.cov),
            };
            machine.call(p, &mut ctx, TARGET_MAIN, &[0, 0], self.cfg.fuel)
        };
        let captured = if capture_globals {
            self.section
                .map(|(addr, size)| self.proc.as_ref().expect("live").read_bytes(addr, size as usize))
        } else {
            None
        };
        let (status, kill) = match out.result {
            CallResult::Return(v) => (ExecStatus::Exit(v as i32), false),
            CallResult::ExitHooked(c) => (ExecStatus::Exit(c), false),
            // `exit` inside host-library code is deliberately not hooked
            // (paper §4.1): it still terminates the process.
            CallResult::Exited(c) => (ExecStatus::Exit(c), true),
            CallResult::Crashed(c) => (ExecStatus::Crash(c), true),
            CallResult::OutOfFuel => (ExecStatus::Hang, true),
        };
        if kill {
            let dead = self.proc.take().expect("was live");
            mgmt += self.os.teardown(dead);
        } else {
            mgmt += self.restore();
        }
        (
            ExecOutcome {
                status,
                exec_cycles: out.cycles,
                mgmt_cycles: mgmt,
                insts: out.insts,
            },
            captured,
        )
    }

    /// End-of-iteration fine-grain state restoration. Returns cycles
    /// charged.
    fn restore(&mut self) -> u64 {
        let p = self.proc.as_mut().expect("live process");
        let cost = &self.os.cost;
        let mut stats = RestoreStats::default();

        // 1. Heap: free everything still in the chunk map (Fig. 5 step C).
        //    Sorted order keeps the allocator deterministic run-to-run.
        if self.cfg.heap_sweep {
            let mut leaked: Vec<u64> = p.rt.chunk_map.keys().copied().collect();
            leaked.sort_unstable();
            for ptr in leaked {
                // The chunk map only holds live chunks, so free cannot fail.
                p.heap.free(ptr).expect("chunk map tracks live chunks");
                stats.leaked_chunks += 1;
            }
        }
        p.rt.chunk_map.clear();

        // 2. Globals: restore the snapshot (Fig. 4).
        if self.cfg.global_restore {
            if let Some((addr, size)) = self.section {
                match self.cfg.restore_strategy {
                    RestoreStrategy::FullSection => {
                        p.write_bytes(addr, &self.snapshot);
                        stats.global_bytes = size;
                    }
                    RestoreStrategy::DirtyOnly => {
                        let current = p.read_bytes(addr, size as usize);
                        let mut dirty = 0u64;
                        for (i, (cur, orig)) in
                            current.iter().zip(self.snapshot.iter()).enumerate()
                        {
                            if cur != orig {
                                p.write_bytes(addr + i as u64, &[*orig]);
                                dirty += 1;
                            }
                        }
                        // Scan cost: treat 64 scanned bytes as 1 restored.
                        stats.global_bytes = dirty + size / 64;
                    }
                }
            }
        }

        // 3. Files: close strays, rewind init handles.
        if self.cfg.fd_sweep {
            let strays: Vec<u64> = p.rt.open_files.drain(..).collect();
            for h in strays {
                if p.fds.close(h).is_ok() {
                    stats.stray_fds += 1;
                }
            }
            if self.cfg.init_fd_rewind {
                let init_handles: Vec<u64> = p.rt.init_files.clone();
                for h in init_handles {
                    if let Some(f) = p.fds.get_mut(h) {
                        f.pos = 0;
                        stats.init_rewinds += 1;
                    }
                }
            }
        } else {
            p.rt.open_files.clear();
        }

        stats.cycles = cost.restore(
            stats.global_bytes,
            stats.leaked_chunks,
            stats.stray_fds,
            stats.init_rewinds,
        );
        self.os.mgmt_cycles += stats.cycles;
        self.last_restore = stats;
        stats.cycles
    }
}

impl Executor for ClosureXExecutor {
    fn name(&self) -> &'static str {
        "closurex"
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        self.run_captured(input, None, false).0
    }

    fn coverage(&self) -> &CovMap {
        &self.cov
    }

    fn fuel(&self) -> u64 {
        self.cfg.fuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forkserver::ForkServerExecutor;
    use crate::naive::NaivePersistentExecutor;

    fn module(src: &str) -> Module {
        minic::compile("t", src).unwrap()
    }

    const STATEFUL: &str = r#"
        global count;
        fn main() {
            count = count + 1;
            return count;
        }
    "#;

    #[test]
    fn globals_restored_between_iterations() {
        let m = module(STATEFUL);
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..5 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1), "always fresh");
        }
        assert!(ex.last_restore().global_bytes > 0);
    }

    #[test]
    fn heap_leaks_swept() {
        let m = module(
            r#"
            fn main() {
                var a = malloc(100);
                var b = malloc(200);
                store8(a, 1);
                free(b);
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..10 {
            ex.run(b"x");
            assert_eq!(ex.last_restore().leaked_chunks, 1, "a leaks, b doesn't");
        }
        assert_eq!(
            ex.process().unwrap().heap.live_bytes(),
            0,
            "heap clean after sweep"
        );
    }

    #[test]
    fn exit_is_hooked_not_fatal() {
        let m = module("fn main() { exit(3); }");
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..3 {
            assert_eq!(ex.run(b"x").status, ExecStatus::Exit(3));
        }
        assert_eq!(ex.respawns(), 0, "exit() must not kill the process");
    }

    #[test]
    fn fds_swept() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                var buf[4];
                fread(buf, 1, 4, f);
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        for _ in 0..100 {
            let out = ex.run(b"data");
            assert_eq!(out.status, ExecStatus::Exit(0), "no fd exhaustion ever");
            assert_eq!(ex.last_restore().stray_fds, 1);
        }
        assert_eq!(ex.process().unwrap().fds.open_count(), 0);
    }

    #[test]
    fn crash_forces_reboot_and_recovery() {
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[4];
                fread(buf, 1, 4, f);
                fclose(f);
                if (load8(buf) == 'X') { return load64(0); }
                return 0;
            }
        "#,
        );
        let mut ex = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        assert!(ex.run(b"X").status.crash().is_some());
        assert_eq!(ex.run(b"A").status, ExecStatus::Exit(0), "recovered");
        assert_eq!(ex.respawns(), 1, "recovery forked the template once");
    }

    #[test]
    fn restore_is_cheaper_than_fork() {
        let m = module(STATEFUL);
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut fk = ForkServerExecutor::new(&m).unwrap();
        let c = cx.run(b"x");
        let f = fk.run(b"x");
        assert!(
            c.mgmt_cycles < f.mgmt_cycles,
            "closurex restore {} must beat fork {}",
            c.mgmt_cycles,
            f.mgmt_cycles
        );
    }

    #[test]
    fn matches_naive_persistent_within_restore_cost() {
        let m = module(STATEFUL);
        let mut cx = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut np = NaivePersistentExecutor::new(&m).unwrap();
        let c = cx.run(b"x");
        let n = np.run(b"x");
        // Near-persistent performance: ClosureX pays only the fine-grain
        // restore over the naive loop.
        assert!(c.mgmt_cycles < n.mgmt_cycles + c.mgmt_cycles / 2 + 2000);
    }

    #[test]
    fn deferred_init_hoists_initialization() {
        let m = module(
            r#"
            global init_done;
            global expensive;
            fn init() {
                var i = 0;
                while (i < 1000) { expensive = expensive + i; i = i + 1; }
            }
            fn main() {
                if (init_done == 0) { init(); init_done = 1; }
                return expensive > 0;
            }
        "#,
        );
        let mut plain = ClosureXExecutor::new(&m, ClosureXConfig::default()).unwrap();
        let mut deferred = ClosureXExecutor::new(
            &m,
            ClosureXConfig {
                deferred_init: true,
                ..ClosureXConfig::default()
            },
        )
        .unwrap();
        let p = plain.run(b"x");
        let d = deferred.run(b"x");
        assert_eq!(p.status, d.status, "same observable behavior");
        assert!(
            d.insts * 3 < p.insts,
            "init loop must be hoisted: deferred={} plain={}",
            d.insts,
            p.insts
        );
    }

    #[test]
    fn ablation_disabling_global_restore_leaks_state() {
        let m = module(STATEFUL);
        let cfg = ClosureXConfig {
            global_restore: false,
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
        assert_eq!(
            ex.run(b"x").status,
            ExecStatus::Exit(2),
            "without GlobalPass restore, ClosureX degrades to naive persistent"
        );
    }

    #[test]
    fn init_fd_rewind_keeps_handle_usable() {
        // Deferred init opens the input once; each iteration reads it from
        // a rewound handle rather than reopening.
        let m = module(
            r#"
            global fh;
            fn main() {
                if (fh == 0) { fh = fopen("/fuzz/input", 0); }
                if (fh == 0) { exit(1); }
                var buf[4];
                var n = fread(buf, 1, 4, fh);
                return n;
            }
        "#,
        );
        let cfg = ClosureXConfig {
            deferred_init: true,
            warmup_input: b"warm".to_vec(),
            ..ClosureXConfig::default()
        };
        let mut ex = ClosureXExecutor::new(&m, cfg).unwrap();
        for _ in 0..5 {
            let out = ex.run(b"abcd");
            assert_eq!(out.status, ExecStatus::Exit(4), "rewound handle re-reads");
            assert_eq!(ex.last_restore().init_rewinds, 1);
            assert_eq!(ex.last_restore().stray_fds, 0);
        }
    }
}
