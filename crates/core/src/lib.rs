//! # closurex — correct persistent fuzzing via fine-grain state restoration
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! harness + compiler-pass combination that lets an entire fuzzing campaign
//! run inside **one process** (persistent-fuzzing throughput) while every
//! test case observes **fresh-process-equivalent state** (correctness).
//!
//! The pieces:
//!
//! * [`executor::Executor`] — the common interface over the paper's
//!   execution-mechanism continuum;
//! * [`fresh::FreshProcessExecutor`] — spawn + exec per test case (slowest,
//!   trivially correct);
//! * [`forkserver::ForkServerExecutor`] — the AFL++ baseline: fork-per-test
//!   with copy-on-write (fastest *correct* conventional mechanism);
//! * [`naive::NaivePersistentExecutor`] — loop-in-one-process with **no**
//!   restoration: fastest, and semantically inconsistent (the paper's §3
//!   motivation);
//! * [`harness::ClosureXExecutor`] — the contribution: persistent loop with
//!   heap sweep, global-section restore, fd sweep/rewind, and exit hooking;
//! * [`correctness`] — the §6.1.4 methodology: dataflow and control-flow
//!   equivalence against fresh-process ground truth, with non-determinism
//!   masking.
//!
//! ```
//! use closurex::harness::{ClosureXConfig, ClosureXExecutor};
//! use closurex::executor::Executor;
//!
//! let src = r#"
//!     global count;
//!     fn main() {
//!         count = count + 1;          // stale-state hazard
//!         if (count > 1) { exit(9); } // only fires if state leaks across runs
//!         return 0;
//!     }
//! "#;
//! let module = minic::compile("demo", src).unwrap();
//! let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
//! for _ in 0..5 {
//!     let out = ex.run(b"x");
//!     // ClosureX restores `count` between runs: exit(9) can never fire.
//!     assert_eq!(out.status, closurex::executor::ExecStatus::Exit(0));
//! }
//! ```

pub mod checkpoint;
pub mod correctness;
pub mod executor;
pub mod forkserver;
pub mod fresh;
pub mod harness;
pub mod naive;
pub mod resilience;

#[cfg(test)]
mod proptests;

pub use checkpoint::ExecutorState;
pub use executor::{ExecOutcome, ExecStatus, Executor, ExecutorFactory};
pub use harness::{ClosureXConfig, ClosureXExecutor, RestoreStats, RestoreStrategy};
pub use resilience::{
    DegradationLevel, HarnessError, IntegrityPolicy, ResilienceReport, RestoreDivergence,
};
