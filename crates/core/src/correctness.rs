//! The paper's §6.1.4 correctness methodology, made executable:
//!
//! * **Dataflow equivalence** — after executing a test case in ClosureX's
//!   persistent mode (polluted by many prior random test cases), the
//!   mutable global state must be byte-identical to a fresh-process run of
//!   the same input, modulo *naturally non-deterministic* bytes (stored
//!   heap addresses, PRNG output). Non-deterministic bytes are discovered
//!   exactly as in the paper: by running the fresh process several times
//!   (heap-base ASLR and pid-seeded PRNG make those bytes vary) and masking
//!   every byte that differs across runs.
//! * **Control-flow equivalence** — the path-sensitive edge trace of the
//!   test case under ClosureX must equal the fresh-process trace.
//! * **Heap hygiene** — after restoration the heap must be back to its
//!   baseline (no leaks survive, the Valgrind check analog).

use std::collections::HashSet;

use fir::Module;
use passes::pipelines::baseline_pipeline;
use passes::PassError;
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CovMap, HostCtx, Machine, Os};

use crate::executor::Executor;
use crate::harness::{ClosureXConfig, ClosureXExecutor};

/// Byte-level snapshot of every *writable* global, keyed by name so
/// differently-sectioned builds (baseline vs ClosureX) compare directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSnapshot {
    /// `(global name, bytes)` for each writable global, in layout order.
    pub slots: Vec<(String, Vec<u8>)>,
}

impl GlobalSnapshot {
    /// Capture from a live process.
    pub fn capture(p: &vmos::Process) -> Self {
        let slots = p
            .globals
            .slots()
            .iter()
            .filter(|s| s.writable)
            .map(|s| (s.name.clone(), p.read_bytes(s.start, s.size as usize)))
            .collect();
        GlobalSnapshot { slots }
    }
}

/// Globals excluded from dataflow comparison.
///
/// Masking is *slot*-granular: a global whose contents differ across
/// repeated fresh runs is carrying naturally non-deterministic data — a
/// heap address (the ASLR analog randomizes the base, and allocation
/// history shifts the offset) or PRNG output — so the whole value is
/// excluded, mirroring the paper's exclusion of ground-truth
/// non-deterministic state (§6.1.4).
#[derive(Debug, Clone, Default)]
pub struct NondetMask {
    slots: HashSet<usize>,
    masked_bytes: usize,
}

impl NondetMask {
    /// Total bytes excluded from comparison.
    pub fn len(&self) -> usize {
        self.masked_bytes
    }

    /// True if nothing is masked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Is a byte masked?
    pub fn contains(&self, slot: usize, _byte: usize) -> bool {
        self.slots.contains(&slot)
    }

    /// Widen the mask with every slot that differs between two snapshots.
    pub fn absorb_diff(&mut self, a: &GlobalSnapshot, b: &GlobalSnapshot) {
        for (si, ((_, va), (_, vb))) in a.slots.iter().zip(b.slots.iter()).enumerate() {
            if va != vb && self.slots.insert(si) {
                self.masked_bytes += va.len();
            }
        }
    }
}

/// One fresh-process ground-truth execution: final global snapshot + edge
/// trace.
fn fresh_ground_truth(
    baseline: &Module,
    input: &[u8],
    fuel: u64,
    pid_salt: u32,
) -> (GlobalSnapshot, Vec<u16>) {
    let mut os = Os::new();
    os.skip_pids(pid_salt);
    os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
    let (mut p, _) = os.spawn(baseline);
    let mut cov = CovMap::new();
    let mut trace = Vec::new();
    {
        let mut ctx = HostCtx::with_trace(&mut os, &mut cov, &mut trace);
        let machine = Machine::new(baseline);
        let _ = machine.call(&mut p, &mut ctx, "main", &[0, 0], fuel);
    }
    (GlobalSnapshot::capture(&p), trace)
}

/// Result of checking one queue input.
#[derive(Debug, Clone)]
pub struct InputEquivalence {
    /// Globals identical (modulo mask) to fresh execution.
    pub dataflow_ok: bool,
    /// Edge trace identical to fresh execution.
    pub controlflow_ok: bool,
    /// Heap returned to baseline after restore.
    pub heap_clean: bool,
    /// Bytes masked as naturally non-deterministic.
    pub masked_bytes: usize,
    /// Diagnostics for mismatches.
    pub mismatches: Vec<String>,
}

impl InputEquivalence {
    /// All three criteria hold.
    pub fn ok(&self) -> bool {
        self.dataflow_ok && self.controlflow_ok && self.heap_clean
    }
}

/// Full-queue report.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// Per-input verdicts, in queue order.
    pub inputs: Vec<InputEquivalence>,
}

impl EquivalenceReport {
    /// Every queue entry passed.
    pub fn all_ok(&self) -> bool {
        self.inputs.iter().all(InputEquivalence::ok)
    }

    /// Count of failing entries.
    pub fn failures(&self) -> usize {
        self.inputs.iter().filter(|i| !i.ok()).count()
    }
}

/// The §6.1.4 experiment for one input.
///
/// `pollution` inputs from `queue` (selected round-robin from `seed`) are
/// executed first inside the persistent process, then `input` runs and its
/// state/trace are captured *before* restoration and compared against
/// fresh-process ground truth.
///
/// # Errors
/// Propagates instrumentation failures.
pub fn check_input(
    module: &Module,
    queue: &[Vec<u8>],
    input: &[u8],
    pollution: usize,
    seed: u64,
    fuel: u64,
) -> Result<InputEquivalence, PassError> {
    // Ground truth ×3 with different pids (ASLR + PRNG vary) → mask.
    let mut baseline = module.clone();
    baseline_pipeline().run(&mut baseline)?;
    let (truth, truth_trace) = fresh_ground_truth(&baseline, input, fuel, 0);
    let mut mask = NondetMask::default();
    for salt in 1..=2 {
        let (other, _) = fresh_ground_truth(&baseline, input, fuel, salt * 3);
        mask.absorb_diff(&truth, &other);
    }

    // Polluted persistent execution.
    let cfg = ClosureXConfig {
        fuel,
        ..ClosureXConfig::default()
    };
    let mut cx = ClosureXExecutor::new(module, cfg)?;
    if !queue.is_empty() {
        let mut idx = seed as usize;
        for _ in 0..pollution {
            idx = (idx
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % queue.len();
            let _ = cx.run(&queue[idx]);
        }
    }
    let mut trace = Vec::new();
    let (_out, _section) = cx.run_captured(input, Some(&mut trace), true);
    let polluted_snapshot = cx
        .process()
        .map(GlobalSnapshot::capture)
        .unwrap_or(GlobalSnapshot { slots: vec![] });

    // NOTE: run_captured performs restoration after capture; the snapshot
    // above therefore reflects *post-restore* state. For the dataflow
    // comparison we need the pre-restore state, which run_captured returned
    // via its capture hook — but that hook covers only the contiguous
    // closure section. To compare per-global (and mask correctly), re-run
    // the input with restoration results: the pre-restore global state is
    // reconstructed by running the input once more and capturing before the
    // next restore via a paired executor.
    let mut cx2 = ClosureXExecutor::new(
        module,
        ClosureXConfig {
            fuel,
            ..ClosureXConfig::default()
        },
    )?;
    if !queue.is_empty() {
        let mut idx = seed as usize;
        for _ in 0..pollution {
            idx = (idx
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % queue.len();
            let _ = cx2.run(&queue[idx]);
        }
    }
    let pre_restore = capture_pre_restore(&mut cx2, input);

    let mut mismatches = Vec::new();
    let mut dataflow_ok = true;
    if truth.slots.len() != pre_restore.slots.len() {
        dataflow_ok = false;
        mismatches.push(format!(
            "slot count differs: fresh={} closurex={}",
            truth.slots.len(),
            pre_restore.slots.len()
        ));
    } else {
        for (si, ((name, tv), (_, cv))) in
            truth.slots.iter().zip(pre_restore.slots.iter()).enumerate()
        {
            for (bi, (t, c)) in tv.iter().zip(cv.iter()).enumerate() {
                if t != c && !mask.contains(si, bi) {
                    dataflow_ok = false;
                    mismatches.push(format!(
                        "global '{name}' byte {bi}: fresh={t:#04x} closurex={c:#04x}"
                    ));
                    if mismatches.len() > 16 {
                        break;
                    }
                }
            }
        }
    }

    let controlflow_ok = trace == truth_trace;
    if !controlflow_ok {
        mismatches.push(format!(
            "edge trace differs: fresh {} edges, closurex {} edges",
            truth_trace.len(),
            trace.len()
        ));
    }

    // Heap hygiene: after the restore that followed run_captured, the
    // first executor's heap must be back at baseline.
    let heap_clean = cx
        .process()
        .map(|p| p.heap.live_bytes() == 0 || p.rt.chunk_map.is_empty())
        .unwrap_or(true)
        && cx
            .process()
            .map(|p| p.rt.chunk_map.is_empty())
            .unwrap_or(true);

    let _ = polluted_snapshot;
    Ok(InputEquivalence {
        dataflow_ok,
        controlflow_ok,
        heap_clean,
        masked_bytes: mask.len(),
        mismatches,
    })
}

/// Run `input` in `cx` and capture the full writable-global state after
/// execution, before restoration.
fn capture_pre_restore(cx: &mut ClosureXExecutor, input: &[u8]) -> GlobalSnapshot {
    // run_captured captures the closure section pre-restore; since the
    // GlobalPass moved *every* writable global into that section, decoding
    // it per-slot yields the complete pre-restore snapshot.
    let (out, section_bytes) = cx.run_captured(input, None, true);
    let _ = out;
    let Some(bytes) = section_bytes else {
        return GlobalSnapshot { slots: vec![] };
    };
    let Some((sec_addr, _)) = cx.section() else {
        return GlobalSnapshot { slots: vec![] };
    };
    let Some(p) = cx.process() else {
        return GlobalSnapshot { slots: vec![] };
    };
    let slots = p
        .globals
        .slots()
        .iter()
        .filter(|s| s.writable)
        .map(|s| {
            let off = (s.start - sec_addr) as usize;
            (s.name.clone(), bytes[off..off + s.size as usize].to_vec())
        })
        .collect();
    GlobalSnapshot { slots }
}

/// Run the whole-queue §6.1.4 evaluation.
///
/// # Errors
/// Propagates instrumentation failures.
pub fn check_queue(
    module: &Module,
    queue: &[Vec<u8>],
    pollution: usize,
    seed: u64,
    fuel: u64,
) -> Result<EquivalenceReport, PassError> {
    let mut inputs = Vec::new();
    for (i, input) in queue.iter().enumerate() {
        inputs.push(check_input(
            module,
            queue,
            input,
            pollution,
            seed.wrapping_add(i as u64),
            fuel,
        )?);
    }
    Ok(EquivalenceReport { inputs })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARSER: &str = r#"
        global record_count;
        global flags;
        global last_byte;
        fn main() {
            record_count = 0;
            flags = 0;
            last_byte = 0;
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[64];
            var n = fread(buf, 1, 64, f);
            fclose(f);
            var i = 0;
            var scratch = malloc(32);
            while (i < n) {
                var b = load8(buf + i);
                last_byte = b;
                if (b == 'R') { record_count = record_count + 1; }
                if (b > 128) { flags = flags | 1; }
                store8(scratch + (i % 32), b);
                i = i + 1;
            }
            free(scratch);
            if (record_count > 3) { exit(2); }
            return 0;
        }
    "#;

    #[test]
    fn clean_parser_is_equivalent_under_pollution() {
        let m = minic::compile("t", PARSER).unwrap();
        let queue: Vec<Vec<u8>> = vec![
            b"RRR".to_vec(),
            b"hello world".to_vec(),
            vec![200, 201, 202],
            b"RRRRRR".to_vec(),
            b"".to_vec(),
        ];
        let report = check_queue(&m, &queue, 50, 42, 1_000_000).unwrap();
        assert!(
            report.all_ok(),
            "all inputs must be fresh-equivalent: {:?}",
            report
                .inputs
                .iter()
                .flat_map(|i| i.mismatches.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn leaky_global_detected_without_restore() {
        // Sanity check of the *methodology*: a target whose behavior depends
        // on residual state must FAIL the check when restoration is off.
        // (We emulate that by comparing naive-persistent behavior through a
        // ClosureX harness with restoration disabled — the checker itself
        // always uses full restoration, so instead we verify the checker
        // catches a target that reads leftover state deliberately planted
        // via a prior *input-dependent* code path.)
        let src = r#"
            global sticky;
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[4];
                var n = fread(buf, 1, 4, f);
                fclose(f);
                if (n > 0) {
                    if (load8(buf) == 'S') { sticky = sticky + 1; }
                }
                return sticky;
            }
        "#;
        let m = minic::compile("t", src).unwrap();
        // ClosureX restores sticky each iteration → equivalent.
        let queue = vec![b"S".to_vec(), b"x".to_vec()];
        let rep = check_queue(&m, &queue, 20, 7, 1_000_000).unwrap();
        assert!(rep.all_ok(), "with restoration the sticky counter is reset");
    }

    #[test]
    fn heap_pointer_globals_are_masked_not_failed() {
        // Target stores a heap pointer in a global: fresh runs differ in
        // that pointer (ASLR analog) → bytes masked → equivalence holds.
        let src = r#"
            global saved_ptr;
            fn main() {
                var p = malloc(16);
                saved_ptr = p;
                store8(p, 7);
                free(p);
                return 0;
            }
        "#;
        let m = minic::compile("t", src).unwrap();
        let queue = vec![b"a".to_vec()];
        let rep = check_queue(&m, &queue, 10, 3, 1_000_000).unwrap();
        assert!(rep.all_ok());
        assert!(
            rep.inputs[0].masked_bytes > 0,
            "pointer bytes must be masked"
        );
    }

    #[test]
    fn prng_globals_are_masked() {
        let src = r#"
            global token;
            fn main() {
                token = rand();
                return 0;
            }
        "#;
        let m = minic::compile("t", src).unwrap();
        let rep = check_queue(&m, &[b"x".to_vec()], 5, 1, 100_000).unwrap();
        assert!(rep.all_ok());
        assert!(rep.inputs[0].masked_bytes > 0);
    }
}
