//! Naive persistent execution: one process, a loop, and **no** state
//! restoration — AFL++'s persistent mode without manual reset code.
//!
//! This is the paper's §3 motivation made executable:
//!
//! * modified globals leak into later test cases → missed and false
//!   crashes, non-reproducible bugs;
//! * heap allocations never freed accumulate → out-of-memory false crashes;
//! * file handles never closed accumulate → descriptor-exhaustion false
//!   crashes;
//! * any `exit()` call ends the process → expensive respawn, erasing the
//!   throughput advantage on exit-heavy targets.

use std::sync::Arc;

use fir::Module;
use passes::pipelines::baseline_pipeline;
use passes::PassError;
use vmos::fs::FUZZ_INPUT_PATH;
use vmos::{CallResult, CovMap, DecodedImage, FaultPlan, FaultPlane, HostCtx, Machine, Os, Process};

use crate::executor::{ExecOutcome, ExecStatus, Executor, DEFAULT_FUEL};
use crate::resilience::{HarnessError, ResilienceReport};

/// See module docs.
#[derive(Debug)]
pub struct NaivePersistentExecutor {
    os: Os,
    module: Module,
    image: Arc<DecodedImage>,
    proc: Option<Process>,
    /// Pristine post-spawn image; restarts after exit/crash fork this
    /// (AFL++ restarts dead persistent children through its forkserver).
    template: Option<Process>,
    cov: CovMap,
    fuel: u64,
    respawns: u64,
    harness_faults: u64,
    /// Cached `Module::fingerprint` of the instrumented module.
    fingerprint: u64,
}

impl NaivePersistentExecutor {
    /// Instrument with coverage only and start the persistent process.
    ///
    /// # Errors
    /// Propagates pass failures.
    pub fn new(module: &Module) -> Result<Self, PassError> {
        let mut m = module.clone();
        baseline_pipeline().run(&mut m)?;
        let image = DecodedImage::cached(&m);
        let fingerprint = m.fingerprint();
        Ok(NaivePersistentExecutor {
            os: Os::new(),
            module: m,
            image,
            proc: None,
            template: None,
            cov: CovMap::new(),
            fuel: DEFAULT_FUEL,
            respawns: 0,
            harness_faults: 0,
            fingerprint,
        })
    }

    /// Override the fuel budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Times the process had to be restarted (exit/crash/hang).
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// The live persistent process (tests inspect leaked state).
    pub fn process(&self) -> Option<&Process> {
        self.proc.as_ref()
    }
}

impl Executor for NaivePersistentExecutor {
    fn name(&self) -> &'static str {
        "naive-persistent"
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        self.cov.clear();
        self.os.fs.write_file(FUZZ_INPUT_PATH, input.to_vec());
        let mut mgmt = self.os.cost.persistent_loop;
        if self.proc.is_none() {
            let attempt = match &self.template {
                Some(t) => self.os.try_fork(t),
                None => self.os.try_spawn(&self.module),
            };
            match attempt {
                Ok((p, c)) => {
                    if self.template.is_none() {
                        self.template = Some(p.clone());
                    }
                    self.proc = Some(p);
                    mgmt += c;
                }
                Err(e) => {
                    // Naive persistent mode has no recovery story: surface
                    // the fault and hope the next run's respawn succeeds.
                    self.harness_faults += 1;
                    return ExecOutcome {
                        status: ExecStatus::Fault(HarnessError::ForkFailed(e.to_string())),
                        exec_cycles: 0,
                        mgmt_cycles: mgmt,
                        insts: 0,
                    };
                }
            }
        }
        let Some(p) = self.proc.as_mut() else {
            self.harness_faults += 1;
            return ExecOutcome {
                status: ExecStatus::Fault(HarnessError::ProcessLost),
                exec_cycles: 0,
                mgmt_cycles: mgmt,
                insts: 0,
            };
        };
        p.cov_state.reset();
        let machine = Machine::with_image(&self.module, &self.image);
        let out = {
            let mut ctx = HostCtx::new(&mut self.os, &mut self.cov);
            machine.call(p, &mut ctx, "main", &[0, 0], self.fuel)
        };
        let (status, kill) = match out.result {
            CallResult::Return(v) => (ExecStatus::Exit(v as i32), false),
            // A real exit() terminates the persistent process; AFL++ has to
            // bring it back up for the next test case.
            CallResult::Exited(c) | CallResult::ExitHooked(c) => (ExecStatus::Exit(c), true),
            CallResult::Crashed(c) => (ExecStatus::Crash(c), true),
            CallResult::OutOfFuel => (ExecStatus::Hang, true),
        };
        if kill {
            if let Some(dead) = self.proc.take() {
                mgmt += self.os.teardown(dead);
            }
            self.respawns += 1;
        }
        ExecOutcome {
            status,
            exec_cycles: out.cycles,
            mgmt_cycles: mgmt,
            insts: out.insts,
        }
    }

    fn coverage(&self) -> &CovMap {
        &self.cov
    }

    fn fuel(&self) -> u64 {
        self.fuel
    }

    fn inject_faults(&mut self, plan: FaultPlan) {
        self.os.fault = FaultPlane::new(plan);
    }

    fn resilience(&self) -> ResilienceReport {
        ResilienceReport {
            respawns: self.respawns,
            harness_faults: self.harness_faults,
            ..ResilienceReport::default()
        }
    }

    fn module_fingerprint(&self) -> Option<u64> {
        Some(self.fingerprint)
    }

    fn warm_decoded_image(&self, sidecar_dir: Option<&std::path::Path>) -> Option<vmos::WarmSource> {
        Some(vmos::DecodedImage::warm_with_sidecar(&self.module, sidecar_dir))
    }

    fn save_decoded_sidecar(&self, dir: &std::path::Path) -> bool {
        let img = vmos::DecodedImage::cached(&self.module);
        vmos::decoded::sidecar::save(dir, &img).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmos::CrashKind;

    fn module(src: &str) -> Module {
        minic::compile("t", src).unwrap()
    }

    #[test]
    fn state_leaks_across_test_cases() {
        // The semantic-inconsistency demo: identical inputs, different
        // results.
        let m = module(
            r#"
            global count;
            fn main() {
                count = count + 1;
                return count;
            }
        "#,
        );
        let mut ex = NaivePersistentExecutor::new(&m).unwrap();
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(1));
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(2), "stale state!");
        assert_eq!(ex.run(b"x").status, ExecStatus::Exit(3));
    }

    #[test]
    fn heap_leaks_accumulate() {
        let m = module(
            r#"
            fn main() {
                var p = malloc(1024);
                store8(p, 1);
                return 0;
            }
        "#,
        );
        let mut ex = NaivePersistentExecutor::new(&m).unwrap();
        ex.run(b"x");
        let after_one = ex.process().unwrap().heap.live_bytes();
        for _ in 0..9 {
            ex.run(b"x");
        }
        let after_ten = ex.process().unwrap().heap.live_bytes();
        assert_eq!(after_ten, after_one * 10, "leaks pile up unchecked");
    }

    #[test]
    fn fd_exhaustion_false_crash() {
        // Target leaks one handle per run: after RLIMIT_NOFILE runs fopen
        // hits the descriptor limit — a false crash caused by prior test
        // cases, not this input, and bucketed as exactly that.
        let m = module(
            r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                var buf[4];
                fread(buf, 1, 4, f);
                return 0;
            }
        "#,
        );
        let mut ex = NaivePersistentExecutor::new(&m).unwrap();
        let mut crashed_at = None;
        for i in 0..100 {
            let out = ex.run(b"data");
            if let Some(c) = out.status.crash() {
                assert_eq!(c.kind, CrashKind::FdExhaustion);
                assert!(c.kind.is_resource_exhaustion());
                crashed_at = Some(i);
                break;
            }
        }
        let at = crashed_at.expect("must eventually exhaust descriptors");
        assert!(at >= 32, "first runs are fine; exhaustion is cumulative");
    }

    #[test]
    fn exit_forces_respawn() {
        let m = module("fn main() { exit(1); }");
        let mut ex = NaivePersistentExecutor::new(&m).unwrap();
        ex.run(b"x");
        ex.run(b"x");
        assert_eq!(ex.respawns(), 2, "every exit() kills the loop");
    }
}
