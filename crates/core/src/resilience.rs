//! Self-healing support for the executor continuum: typed harness errors,
//! online restore-integrity verification, and graceful degradation.
//!
//! The ClosureX guarantee — every test case observes fresh-process-
//! equivalent state — is only as strong as the restore machinery behind it.
//! On a hostile substrate (the fault plane in [`vmos::fault`]) restoration
//! itself can be corrupted: a bit flips in the restored global section, a
//! descriptor slot leaks past the sweep, a respawn `fork` is refused. This
//! module gives the harness the vocabulary to *notice* and *survive* those
//! events instead of panicking or silently mis-reporting crashes:
//!
//! * [`HarnessError`] — typed, non-panicking failures of the harness
//!   machinery itself, surfaced through
//!   [`ExecStatus::Fault`](crate::executor::ExecStatus);
//! * [`RestoreDivergence`] — what a sampled post-restore integrity check
//!   (global-section hash, heap census, fd census) found out of place;
//! * [`DegradationLevel`] — where on the continuum the executor currently
//!   runs: full persistent mode, or fork-per-exec after repeated
//!   divergences (correctness preserved at forkserver speed);
//! * [`ResilienceReport`] — the counters campaigns aggregate.

use serde::{Deserialize, Serialize};

/// A failure of the harness machinery itself — not the target. These used
/// to be `expect()` panics; they now propagate as data so a fuzzing
/// campaign can retry, degrade, or report instead of dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// The initial spawn of the harness process failed.
    BootFailed(String),
    /// Forking a fresh child (template respawn or fork-per-exec) was
    /// refused by the OS.
    ForkFailed(String),
    /// Recovery needed the pristine template but none exists.
    TemplateMissing,
    /// End-of-iteration restoration failed partway.
    RestoreFailed(String),
    /// No live process and no way to make one.
    ProcessLost,
    /// The operation (e.g. checkpoint export/restore) is not supported by
    /// this execution mechanism.
    Unsupported(String),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::BootFailed(d) => write!(f, "harness boot failed: {d}"),
            HarnessError::ForkFailed(d) => write!(f, "harness fork failed: {d}"),
            HarnessError::TemplateMissing => write!(f, "pristine template missing"),
            HarnessError::RestoreFailed(d) => write!(f, "state restoration failed: {d}"),
            HarnessError::ProcessLost => write!(f, "harness process lost"),
            HarnessError::Unsupported(d) => write!(f, "unsupported harness operation: {d}"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// What a post-restore integrity check found diverging from the pristine
/// boot state. Each variant carries the expected/observed pair so reports
/// can say *how* restoration went wrong, not just that it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreDivergence {
    /// The restored global section no longer hashes to the boot snapshot.
    GlobalSectionHash {
        /// FNV-1a hash of the boot-time snapshot.
        expected: u64,
        /// Hash observed after restoration.
        actual: u64,
    },
    /// Live heap bytes after the sweep differ from the post-boot baseline.
    HeapCensus {
        /// Baseline live bytes right after boot.
        expected_bytes: u64,
        /// Live bytes observed after the sweep.
        actual_bytes: u64,
    },
    /// Open descriptors after the sweep differ from the post-boot baseline.
    FdCensus {
        /// Baseline open handles right after boot.
        expected_open: usize,
        /// Open handles observed after the sweep.
        actual_open: usize,
    },
}

impl RestoreDivergence {
    /// Stable short name for logs and JSON reports.
    pub fn name(&self) -> &'static str {
        match self {
            RestoreDivergence::GlobalSectionHash { .. } => "global_section_hash",
            RestoreDivergence::HeapCensus { .. } => "heap_census",
            RestoreDivergence::FdCensus { .. } => "fd_census",
        }
    }
}

impl std::fmt::Display for RestoreDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreDivergence::GlobalSectionHash { expected, actual } => {
                write!(f, "global section hash {actual:#x} != boot {expected:#x}")
            }
            RestoreDivergence::HeapCensus {
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "heap census {actual_bytes} live bytes != baseline {expected_bytes}"
            ),
            RestoreDivergence::FdCensus {
                expected_open,
                actual_open,
            } => write!(
                f,
                "fd census {actual_open} open handles != baseline {expected_open}"
            ),
        }
    }
}

/// Where on the continuum the executor currently operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradationLevel {
    /// Full ClosureX persistent mode (fine-grain restoration).
    #[default]
    Persistent,
    /// Fallen back to fork-per-exec: every test case runs in a fork of the
    /// pristine template and is torn down afterwards. Forkserver cost,
    /// fresh-process correctness — the safe harbor after restoration has
    /// repeatedly proven untrustworthy on this substrate.
    ForkPerExec,
}

impl DegradationLevel {
    /// Stable short name for logs and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Persistent => "persistent",
            DegradationLevel::ForkPerExec => "fork_per_exec",
        }
    }
}

/// When and how aggressively the harness verifies restore integrity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityPolicy {
    /// Verify after every `check_every`-th restore (1 = every iteration,
    /// 0 = never). Sampling keeps the common-case overhead near zero while
    /// still bounding how long corruption can survive undetected.
    pub check_every: u64,
    /// After this many divergences, degrade to
    /// [`DegradationLevel::ForkPerExec`] permanently (0 = never degrade).
    pub max_divergences: u64,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        IntegrityPolicy {
            check_every: 16,
            max_divergences: 8,
        }
    }
}

impl IntegrityPolicy {
    /// Check after every restore and never degrade — maximal vigilance,
    /// used by tests and the correctness evaluation.
    pub fn paranoid() -> Self {
        IntegrityPolicy {
            check_every: 1,
            max_divergences: 0,
        }
    }

    /// Never check (the pre-resilience behavior).
    pub fn disabled() -> Self {
        IntegrityPolicy {
            check_every: 0,
            max_divergences: 0,
        }
    }
}

/// Resilience counters an executor accumulates over its lifetime.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Times the process was re-created after a crash/hang/divergence.
    pub respawns: u64,
    /// Restore divergences detected by the integrity check.
    pub divergences: u64,
    /// Integrity checks performed.
    pub integrity_checks: u64,
    /// Inputs quarantined because a divergence was detected after running
    /// them (their observed behavior is untrustworthy).
    pub quarantined: u64,
    /// Quarantined inputs evicted past the ring's capacity. A nonzero
    /// value means the retained quarantine is a *sample*, not the full
    /// set — campaigns surface this instead of discarding silently.
    pub quarantine_dropped: u64,
    /// Harness faults surfaced as [`ExecStatus::Fault`]
    /// (crate::executor::ExecStatus::Fault) instead of panics.
    pub harness_faults: u64,
    /// Current degradation level.
    pub degradation: DegradationLevel,
}

/// FNV-1a over `bytes` — the cheap, deterministic digest the integrity
/// check compares global sections with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_detects_single_bit_flips() {
        let base = vec![0u8; 4096];
        let h0 = fnv1a(&base);
        for (byte, bit) in [(0usize, 0u8), (17, 3), (4095, 7)] {
            let mut flipped = base.clone();
            flipped[byte] ^= 1 << bit;
            assert_ne!(fnv1a(&flipped), h0, "flip at {byte}:{bit} must change hash");
        }
        assert_eq!(fnv1a(&base), h0, "hash is deterministic");
    }

    #[test]
    fn divergence_display_names_are_stable() {
        let d = RestoreDivergence::GlobalSectionHash {
            expected: 1,
            actual: 2,
        };
        assert_eq!(d.name(), "global_section_hash");
        assert!(d.to_string().contains("boot"));
        let f = RestoreDivergence::FdCensus {
            expected_open: 1,
            actual_open: 3,
        };
        assert_eq!(f.name(), "fd_census");
    }

    #[test]
    fn policy_defaults_and_presets() {
        assert_eq!(IntegrityPolicy::paranoid().check_every, 1);
        assert_eq!(IntegrityPolicy::disabled().check_every, 0);
        assert!(IntegrityPolicy::default().check_every > 0);
        assert_eq!(DegradationLevel::default(), DegradationLevel::Persistent);
    }

    #[test]
    fn harness_error_display() {
        assert!(HarnessError::ForkFailed("EAGAIN".into())
            .to_string()
            .contains("EAGAIN"));
        assert!(HarnessError::TemplateMissing
            .to_string()
            .contains("template"));
    }
}
