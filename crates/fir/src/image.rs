//! Binary-image size accounting.
//!
//! The `vmos` cost model charges `exec` proportionally to the loaded image
//! size, and Table 4 of the paper reports each benchmark's executable size.
//! This module defines the deterministic encoding-size estimate used for both.

use crate::inst::{Inst, Terminator};
use crate::module::Module;

/// Estimated encoded size in bytes of one instruction.
///
/// The estimate models a simple fixed-width encoding: 4 bytes of opcode +
/// operand descriptors, 8 bytes per immediate, plus callee-name bytes for
/// calls (string table).
pub fn inst_size(inst: &Inst) -> u64 {
    let base = 4u64;
    let imm_bytes: u64 = inst
        .operands()
        .iter()
        .filter(|o| o.as_imm().is_some())
        .count() as u64
        * 8;
    let extra = match inst {
        Inst::Call { callee, args, .. } => callee.len() as u64 + args.len() as u64,
        Inst::Const { .. } => 8,
        Inst::AddrOf { .. } => 4,
        _ => 0,
    };
    base + imm_bytes + extra
}

fn term_size(t: &Terminator) -> u64 {
    match t {
        Terminator::Ret(_) => 4,
        Terminator::Br(_) => 8,
        Terminator::CondBr { .. } => 12,
        Terminator::Switch { cases, .. } => 12 + cases.len() as u64 * 12,
        Terminator::Unreachable => 4,
    }
}

/// Estimated loadable image size of a module in bytes:
/// text (all instructions + terminators) + data (global images) + symbol
/// table (names).
pub fn image_size(m: &Module) -> u64 {
    let text: u64 = m
        .functions
        .iter()
        .map(|f| {
            f.blocks
                .iter()
                .map(|b| b.insts.iter().map(inst_size).sum::<u64>() + term_size(&b.term))
                .sum::<u64>()
                + f.name.len() as u64
                + 16
        })
        .sum();
    let data: u64 = m
        .globals
        .iter()
        .map(|g| g.size + g.name.len() as u64 + 8)
        .sum();
    text + data + 64
}

/// Human-readable size string, matching the paper's Table 4 style
/// ("4.7 M", "232 K").
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} M", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.0} K", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::global::Global;
    use crate::inst::Operand;

    #[test]
    fn image_grows_with_code_and_data() {
        let mut mb = ModuleBuilder::new("a");
        let mut f = mb.function("main");
        f.ret(None);
        f.finish();
        let small = image_size(&mb.finish());

        let mut mb = ModuleBuilder::new("b");
        mb.global(Global::zeroed("big", 4096));
        let mut f = mb.function("main");
        for i in 0..100 {
            f.const_i64(i);
        }
        f.call_void("helper", vec![Operand::Imm(0)]);
        f.ret(None);
        f.finish();
        let big = image_size(&mb.finish());
        assert!(big > small + 4096, "big={big} small={small}");
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(100), "100 B");
        assert_eq!(human_size(232 * 1024), "232 K");
        assert_eq!(human_size(4928307), "4.7 M");
    }

    #[test]
    fn deterministic() {
        let mut mb = ModuleBuilder::new("d");
        let mut f = mb.function("main");
        f.const_i64(1);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        assert_eq!(image_size(&m), image_size(&m.clone()));
    }
}
