//! Parser for the textual FIR format emitted by [`crate::printer`].
//!
//! The printer/parser pair gives FIR a stable on-disk form and lets tests
//! assert exact round-trips, the way LLVM's `.ll` format does.

use std::fmt;

use crate::global::{Global, Section};
use crate::inst::{BinOp, BlockId, CmpPred, Inst, Operand, Reg, Terminator, Width};
use crate::module::{Block, Function, Module};

/// A parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a textual module.
///
/// # Errors
/// Returns a [`ParseError`] pointing at the first malformed line.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("");
    let mut lines = text.lines().enumerate().peekable();

    while let Some((ln0, raw)) = lines.next() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            module.name = rest.trim().trim_matches('"').to_string();
        } else if let Some(rest) = line.strip_prefix("global @") {
            module.globals.push(parse_global(ln, rest)?);
        } else if let Some(rest) = line.strip_prefix("fn @") {
            let mut func = parse_fn_header(ln, rest)?;
            parse_fn_body(&mut lines, &mut func, &module)?;
            module.functions.push(func);
        } else {
            return Err(perr(ln, format!("unexpected line: {line}")));
        }
    }
    Ok(module)
}

fn parse_global(ln: usize, rest: &str) -> Result<Global, ParseError> {
    // NAME : SIZE bytes, section SEC[, const][, init = [hex..]]
    let (name, rest) = rest
        .split_once(" : ")
        .ok_or_else(|| perr(ln, "global missing ' : '"))?;
    let mut size = None;
    let mut section = None;
    let mut is_const = false;
    let mut init = Vec::new();
    // split on ", " but keep the init blob intact
    let (head, init_part) = match rest.split_once(", init = [") {
        Some((h, tail)) => (h, Some(tail)),
        None => (rest, None),
    };
    for part in head.split(", ") {
        let part = part.trim();
        if let Some(sz) = part.strip_suffix(" bytes") {
            size = Some(
                sz.trim()
                    .parse::<u64>()
                    .map_err(|_| perr(ln, format!("bad size {sz}")))?,
            );
        } else if let Some(sec) = part.strip_prefix("section ") {
            section = Some(
                Section::from_name(sec.trim())
                    .ok_or_else(|| perr(ln, format!("unknown section {sec}")))?,
            );
        } else if part == "const" {
            is_const = true;
        } else if !part.is_empty() {
            return Err(perr(ln, format!("unknown global attribute '{part}'")));
        }
    }
    if let Some(tail) = init_part {
        let blob = tail
            .strip_suffix(']')
            .ok_or_else(|| perr(ln, "unterminated init blob"))?;
        for b in blob.split_whitespace() {
            init.push(
                u8::from_str_radix(b, 16).map_err(|_| perr(ln, format!("bad init byte {b}")))?,
            );
        }
    }
    Ok(Global {
        name: name.trim().to_string(),
        section: section.ok_or_else(|| perr(ln, "global missing section"))?,
        size: size.ok_or_else(|| perr(ln, "global missing size"))?,
        init,
        is_const,
    })
}

fn parse_fn_header(ln: usize, rest: &str) -> Result<Function, ParseError> {
    // NAME(NPARAMS) regs=N {
    let (name, rest) = rest
        .split_once('(')
        .ok_or_else(|| perr(ln, "fn missing '('"))?;
    let (nparams, rest) = rest
        .split_once(')')
        .ok_or_else(|| perr(ln, "fn missing ')'"))?;
    let rest = rest.trim();
    let regs = rest
        .strip_prefix("regs=")
        .and_then(|r| r.strip_suffix('{'))
        .ok_or_else(|| perr(ln, "fn missing regs=N {"))?;
    Ok(Function {
        name: name.trim().to_string(),
        num_params: nparams
            .trim()
            .parse()
            .map_err(|_| perr(ln, "bad param count"))?,
        num_regs: regs.trim().parse().map_err(|_| perr(ln, "bad reg count"))?,
        blocks: Vec::new(),
    })
}

fn parse_fn_body<'a, I>(
    lines: &mut std::iter::Peekable<I>,
    func: &mut Function,
    module: &Module,
) -> Result<(), ParseError>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut cur: Option<Block> = None;
    for (ln0, raw) in lines.by_ref() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "}" {
            if let Some(b) = cur.take() {
                func.blocks.push(b);
            }
            return Ok(());
        }
        if let Some(lbl) = line.strip_suffix(':') {
            if !lbl.starts_with("bb") {
                return Err(perr(ln, format!("bad block label {lbl}")));
            }
            if let Some(b) = cur.take() {
                func.blocks.push(b);
            }
            cur = Some(Block::placeholder());
            continue;
        }
        let block = cur
            .as_mut()
            .ok_or_else(|| perr(ln, "instruction before first block label"))?;
        if let Some(term) = try_parse_term(ln, line)? {
            block.term = term;
        } else {
            block.insts.push(parse_inst(ln, line, module)?);
        }
    }
    Err(perr(0, "unterminated function body (missing '}')"))
}

fn parse_operand(ln: usize, s: &str) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(r) = s.strip_prefix('%') {
        Ok(Operand::Reg(Reg(r
            .parse()
            .map_err(|_| perr(ln, format!("bad reg {s}")))?)))
    } else {
        Ok(Operand::Imm(
            s.parse().map_err(|_| perr(ln, format!("bad imm {s}")))?,
        ))
    }
}

fn parse_reg(ln: usize, s: &str) -> Result<Reg, ParseError> {
    match parse_operand(ln, s)? {
        Operand::Reg(r) => Ok(r),
        Operand::Imm(_) => Err(perr(ln, format!("expected register, got {s}"))),
    }
}

fn parse_block_id(ln: usize, s: &str) -> Result<BlockId, ParseError> {
    s.trim()
        .strip_prefix("bb")
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or_else(|| perr(ln, format!("bad block id {s}")))
}

fn parse_width(ln: usize, s: &str) -> Result<Width, ParseError> {
    match s.trim() {
        "i8" => Ok(Width::W8),
        "i16" => Ok(Width::W16),
        "i32" => Ok(Width::W32),
        "i64" => Ok(Width::W64),
        other => Err(perr(ln, format!("bad width {other}"))),
    }
}

fn try_parse_term(ln: usize, line: &str) -> Result<Option<Terminator>, ParseError> {
    if line == "ret" {
        return Ok(Some(Terminator::Ret(None)));
    }
    if let Some(v) = line.strip_prefix("ret ") {
        return Ok(Some(Terminator::Ret(Some(parse_operand(ln, v)?))));
    }
    if let Some(b) = line.strip_prefix("br ") {
        return Ok(Some(Terminator::Br(parse_block_id(ln, b)?)));
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return Err(perr(ln, "condbr needs cond, bbT, bbF"));
        }
        return Ok(Some(Terminator::CondBr {
            cond: parse_operand(ln, parts[0])?,
            if_true: parse_block_id(ln, parts[1])?,
            if_false: parse_block_id(ln, parts[2])?,
        }));
    }
    if let Some(rest) = line.strip_prefix("switch ") {
        let (value, rest) = rest
            .split_once('[')
            .ok_or_else(|| perr(ln, "switch missing '['"))?;
        let (cases_str, rest) = rest
            .split_once(']')
            .ok_or_else(|| perr(ln, "switch missing ']'"))?;
        let default = rest
            .trim()
            .strip_prefix("default ")
            .ok_or_else(|| perr(ln, "switch missing default"))?;
        let mut cases = Vec::new();
        for c in cases_str.split(',') {
            let c = c.trim();
            if c.is_empty() {
                continue;
            }
            let (v, b) = c
                .split_once("->")
                .ok_or_else(|| perr(ln, "switch case missing '->'"))?;
            cases.push((
                v.trim()
                    .parse::<i64>()
                    .map_err(|_| perr(ln, "bad case value"))?,
                parse_block_id(ln, b)?,
            ));
        }
        return Ok(Some(Terminator::Switch {
            value: parse_operand(ln, value)?,
            cases,
            default: parse_block_id(ln, default)?,
        }));
    }
    if line == "unreachable" {
        return Ok(Some(Terminator::Unreachable));
    }
    Ok(None)
}

fn parse_call(ln: usize, dst: Option<Reg>, rest: &str) -> Result<Inst, ParseError> {
    // @callee(arg, arg, ...)
    let rest = rest
        .trim()
        .strip_prefix('@')
        .ok_or_else(|| perr(ln, "call missing @callee"))?;
    let (callee, rest) = rest
        .split_once('(')
        .ok_or_else(|| perr(ln, "call missing '('"))?;
    let args_str = rest
        .strip_suffix(')')
        .ok_or_else(|| perr(ln, "call missing ')'"))?;
    let mut args = Vec::new();
    for a in args_str.split(',') {
        let a = a.trim();
        if a.is_empty() {
            continue;
        }
        args.push(parse_operand(ln, a)?);
    }
    Ok(Inst::Call {
        dst,
        callee: callee.trim().to_string(),
        args,
    })
}

fn parse_inst(ln: usize, line: &str, module: &Module) -> Result<Inst, ParseError> {
    // store / bare call have no "dst ="
    if let Some(rest) = line.strip_prefix("store ") {
        let (width, rest) = rest
            .trim()
            .split_once(' ')
            .ok_or_else(|| perr(ln, "store missing width"))?;
        let (value, addr) = rest
            .split_once(", [")
            .ok_or_else(|| perr(ln, "store missing ', ['"))?;
        let addr = addr
            .strip_suffix(']')
            .ok_or_else(|| perr(ln, "store missing ']'"))?;
        return Ok(Inst::Store {
            addr: parse_operand(ln, addr)?,
            value: parse_operand(ln, value)?,
            width: parse_width(ln, width)?,
        });
    }
    if let Some(rest) = line.strip_prefix("call ") {
        return parse_call(ln, None, rest);
    }
    let (dst, rhs) = line
        .split_once('=')
        .ok_or_else(|| perr(ln, format!("unrecognized instruction: {line}")))?;
    let dst = parse_reg(ln, dst)?;
    let rhs = rhs.trim();
    if let Some(v) = rhs.strip_prefix("const ") {
        return Ok(Inst::Const {
            dst,
            value: v.trim().parse().map_err(|_| perr(ln, "bad const"))?,
        });
    }
    if let Some(v) = rhs.strip_prefix("mov ") {
        return Ok(Inst::Mov {
            dst,
            src: parse_operand(ln, v)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("cmp ") {
        let (pred, rest) = rest
            .trim()
            .split_once(' ')
            .ok_or_else(|| perr(ln, "cmp missing predicate"))?;
        let pred =
            CmpPred::from_mnemonic(pred).ok_or_else(|| perr(ln, format!("bad pred {pred}")))?;
        let (lhs, rhs_op) = rest
            .split_once(',')
            .ok_or_else(|| perr(ln, "cmp missing ','"))?;
        return Ok(Inst::Cmp {
            pred,
            dst,
            lhs: parse_operand(ln, lhs)?,
            rhs: parse_operand(ln, rhs_op)?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("select ") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return Err(perr(ln, "select needs 3 operands"));
        }
        return Ok(Inst::Select {
            dst,
            cond: parse_operand(ln, parts[0])?,
            if_true: parse_operand(ln, parts[1])?,
            if_false: parse_operand(ln, parts[2])?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (width, rest) = rest
            .split_once(", [")
            .ok_or_else(|| perr(ln, "load missing ', ['"))?;
        let addr = rest
            .strip_suffix(']')
            .ok_or_else(|| perr(ln, "load missing ']'"))?;
        return Ok(Inst::Load {
            dst,
            addr: parse_operand(ln, addr)?,
            width: parse_width(ln, width)?,
        });
    }
    if let Some(name) = rhs.strip_prefix("addrof @") {
        let gid = module
            .global_id(name.trim())
            .ok_or_else(|| perr(ln, format!("addrof of unknown global {name}")))?;
        return Ok(Inst::AddrOf { dst, global: gid });
    }
    if let Some(sz) = rhs.strip_prefix("alloca ") {
        return Ok(Inst::Alloca {
            dst,
            size: sz.trim().parse().map_err(|_| perr(ln, "bad alloca size"))?,
        });
    }
    if let Some(rest) = rhs.strip_prefix("call ") {
        return parse_call(ln, Some(dst), rest);
    }
    // binary op: "<mnemonic> lhs, rhs"
    if let Some((mn, rest)) = rhs.split_once(' ') {
        if let Some(op) = BinOp::from_mnemonic(mn) {
            let (lhs, rhs_op) = rest
                .split_once(',')
                .ok_or_else(|| perr(ln, "binop missing ','"))?;
            return Ok(Inst::Bin {
                op,
                dst,
                lhs: parse_operand(ln, lhs)?,
                rhs: parse_operand(ln, rhs_op)?,
            });
        }
    }
    Err(perr(ln, format!("unrecognized instruction: {line}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::printer::print_module;

    #[test]
    fn roundtrip_simple_module() {
        let mut mb = ModuleBuilder::new("rt");
        let g = mb.global(Global::constant("magic", vec![1, 2, 3]));
        let w = mb.global(Global::zeroed("state", 16));
        let mut f = mb.function_with_params("main", 1);
        let a = f.addr_of(g);
        let v = f.load8(Operand::Reg(a));
        let s = f.add(Operand::Reg(v), Operand::Imm(-3));
        let wa = f.addr_of(w);
        f.store64(Operand::Reg(wa), Operand::Reg(s));
        let exit_bb = f.new_block();
        let ok_bb = f.new_block();
        let c = f.cmp(CmpPred::SGt, Operand::Reg(s), Operand::Imm(10));
        f.cond_br(Operand::Reg(c), exit_bb, ok_bb);
        f.switch_to(exit_bb);
        f.call_void("exit", vec![Operand::Imm(2)]);
        f.unreachable();
        f.switch_to(ok_bb);
        let m2 = f.call("helper", vec![Operand::Reg(s), Operand::Imm(7)]);
        f.ret(Some(Operand::Reg(m2)));
        f.finish();
        let mut h = mb.function_with_params("helper", 2);
        let t = h.select(
            Operand::Reg(h.param(0)),
            Operand::Reg(h.param(1)),
            Operand::Imm(0),
        );
        h.ret(Some(Operand::Reg(t)));
        h.finish();
        let m = mb.finish();

        let text = print_module(&m);
        let parsed = parse_module(&text).expect("parses");
        assert_eq!(m, parsed, "print→parse must round-trip");
    }

    #[test]
    fn roundtrip_switch() {
        let mut mb = ModuleBuilder::new("sw");
        let mut f = mb.function_with_params("dispatch", 1);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let d = f.new_block();
        let p = f.param(0);
        f.switch(Operand::Reg(p), vec![(1, b1), (2, b2)], d);
        for b in [b1, b2, d] {
            f.switch_to(b);
            f.ret(Some(Operand::Imm(0)));
        }
        f.finish();
        let m = mb.finish();
        let parsed = parse_module(&print_module(&m)).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn error_has_line_number() {
        let text = "module \"x\"\nglobal @g 8 bytes\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("hello world").is_err());
    }
}
