//! Module verifier: structural well-formedness checks run after construction
//! and after each compiler pass (the analog of LLVM's `verifyModule`).

use std::collections::HashSet;
use std::fmt;

use crate::inst::{Inst, Operand, Reg, Terminator};
use crate::module::{Function, Module};

/// A verification failure, with enough context to locate the defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name (empty for module-level errors).
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "module: {}", self.message)
        } else {
            write!(f, "function {}: {}", self.function, self.message)
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(function: &str, message: impl Into<String>) -> VerifyError {
    VerifyError {
        function: function.to_string(),
        message: message.into(),
    }
}

/// Verify a whole module. Returns the first error found.
///
/// Checks:
/// * unique function and global names;
/// * every function verifies (see [`verify_function`]);
/// * every `AddrOf` references an existing global.
///
/// # Errors
/// Returns a [`VerifyError`] describing the first violation.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for f in &m.functions {
        if !names.insert(&f.name) {
            return Err(err("", format!("duplicate function name {}", f.name)));
        }
    }
    let mut gnames = HashSet::new();
    for g in &m.globals {
        if !gnames.insert(&g.name) {
            return Err(err("", format!("duplicate global name {}", g.name)));
        }
        if g.init.len() as u64 > g.size {
            return Err(err(
                "",
                format!(
                    "global {} initializer ({} bytes) exceeds size {}",
                    g.name,
                    g.init.len(),
                    g.size
                ),
            ));
        }
        if g.size == 0 {
            return Err(err("", format!("global {} has zero size", g.name)));
        }
    }
    for f in &m.functions {
        verify_function(m, f)?;
    }
    Ok(())
}

/// Verify a single function.
///
/// Checks:
/// * at least one block;
/// * every register index is below `num_regs`;
/// * every branch target is a valid block id;
/// * every `AddrOf` global id is valid;
/// * `Alloca` sizes are non-zero.
///
/// # Errors
/// Returns a [`VerifyError`] describing the first violation.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(&f.name, "function has no blocks"));
    }
    if f.num_params > f.num_regs {
        return Err(err(
            &f.name,
            format!(
                "num_params {} exceeds num_regs {}",
                f.num_params, f.num_regs
            ),
        ));
    }
    let check_reg = |r: Reg, what: &str| -> Result<(), VerifyError> {
        if r.0 >= f.num_regs {
            Err(err(
                &f.name,
                format!("{what} register {r} out of range (num_regs={})", f.num_regs),
            ))
        } else {
            Ok(())
        }
    };
    let check_op = |o: Operand, what: &str| -> Result<(), VerifyError> {
        match o {
            Operand::Reg(r) => check_reg(r, what),
            Operand::Imm(_) => Ok(()),
        }
    };
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            if let Some(d) = inst.dst() {
                check_reg(d, "destination")?;
            }
            for o in inst.operands() {
                check_op(o, "source")?;
            }
            match inst {
                Inst::AddrOf { global, .. } if global.0 as usize >= m.globals.len() => {
                    return Err(err(
                        &f.name,
                        format!("bb{bi}: AddrOf references unknown global {global}"),
                    ));
                }
                Inst::Alloca { size, .. } if *size == 0 => {
                    return Err(err(&f.name, format!("bb{bi}: alloca of zero bytes")));
                }
                Inst::Call { callee, .. } if callee.is_empty() => {
                    return Err(err(&f.name, format!("bb{bi}: call with empty callee")));
                }
                _ => {}
            }
        }
        let check_target = |t| -> Result<(), VerifyError> {
            if (t as usize) < f.blocks.len() {
                Ok(())
            } else {
                Err(err(
                    &f.name,
                    format!("bb{bi}: branch to nonexistent block bb{t}"),
                ))
            }
        };
        match &b.term {
            Terminator::Ret(Some(v)) => check_op(*v, "return")?,
            Terminator::Ret(None) | Terminator::Unreachable => {}
            Terminator::Br(t) => check_target(t.0)?,
            Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                check_op(*cond, "branch condition")?;
                check_target(if_true.0)?;
                check_target(if_false.0)?;
            }
            Terminator::Switch {
                value,
                cases,
                default,
            } => {
                check_op(*value, "switch value")?;
                for (_, t) in cases {
                    check_target(t.0)?;
                }
                check_target(default.0)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::Global;
    use crate::inst::{BlockId, Width};
    use crate::module::Block;

    fn func(name: &str, num_regs: u32, blocks: Vec<Block>) -> Function {
        Function {
            name: name.into(),
            num_params: 0,
            num_regs,
            blocks,
        }
    }

    #[test]
    fn empty_function_rejected() {
        let mut m = Module::new("t");
        m.functions.push(func("f", 0, vec![]));
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn out_of_range_register_rejected() {
        let mut m = Module::new("t");
        m.functions.push(func(
            "f",
            1,
            vec![Block {
                insts: vec![Inst::Const {
                    dst: Reg(5),
                    value: 0,
                }],
                term: Terminator::Ret(None),
            }],
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut m = Module::new("t");
        m.functions.push(func(
            "f",
            0,
            vec![Block {
                insts: vec![],
                term: Terminator::Br(BlockId(7)),
            }],
        ));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("nonexistent block"), "{e}");
    }

    #[test]
    fn unknown_global_rejected() {
        let mut m = Module::new("t");
        m.functions.push(func(
            "f",
            1,
            vec![Block {
                insts: vec![Inst::AddrOf {
                    dst: Reg(0),
                    global: crate::GlobalId(3),
                }],
                term: Terminator::Ret(None),
            }],
        ));
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn oversized_initializer_rejected() {
        let mut m = Module::new("t");
        let mut g = Global::with_init("g", vec![1, 2, 3, 4]);
        g.size = 2;
        m.globals.push(g);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("exceeds size"), "{e}");
    }

    #[test]
    fn valid_module_passes() {
        let mut m = Module::new("t");
        m.globals.push(Global::zeroed("g", 8));
        m.functions.push(func(
            "f",
            2,
            vec![Block {
                insts: vec![
                    Inst::AddrOf {
                        dst: Reg(0),
                        global: crate::GlobalId(0),
                    },
                    Inst::Load {
                        dst: Reg(1),
                        addr: Operand::Reg(Reg(0)),
                        width: Width::W64,
                    },
                ],
                term: Terminator::Ret(Some(Operand::Reg(Reg(1)))),
            }],
        ));
        verify_module(&m).unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Module::new("t");
        m.functions.push(func("f", 0, vec![Block::placeholder()]));
        m.functions.push(func("f", 0, vec![Block::placeholder()]));
        assert!(verify_module(&m).unwrap_err().message.contains("duplicate"));
    }
}
