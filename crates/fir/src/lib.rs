//! # FIR — the Fuzzing Intermediate Representation
//!
//! FIR is the LLVM-IR analog used throughout the ClosureX reproduction. It is
//! a compact, typed, register-machine IR with:
//!
//! * [`Module`]s holding [`Global`]s (with ELF-like [`Section`] placement) and
//!   [`Function`]s,
//! * functions made of [`Block`]s of [`Inst`]s ending in a [`Terminator`],
//! * name-based [`Inst::Call`] sites, so compiler passes can perform
//!   `replaceAllUsesWith`-style callee rewriting exactly as the paper's LLVM
//!   passes do,
//! * a [`builder`] for programmatic construction, a [`verify`] pass, a text
//!   [`printer`] and round-tripping [`parser`], and [`cfg`] analyses.
//!
//! The interpreter for FIR lives in the `vmos` crate; the ClosureX passes that
//! transform FIR live in the `passes` crate.
//!
//! ```
//! use fir::builder::ModuleBuilder;
//! use fir::{Operand, Width};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main");
//! let v = f.const_i64(41);
//! let one = f.const_i64(1);
//! let sum = f.add(Operand::Reg(v), Operand::Reg(one));
//! f.ret(Some(Operand::Reg(sum)));
//! f.finish();
//! let module = mb.finish();
//! assert_eq!(module.functions.len(), 1);
//! assert!(fir::verify::verify_module(&module).is_ok());
//! ```

pub mod builder;
pub mod cfg;
pub mod global;
pub mod image;
pub mod inst;
pub mod liveness;
pub mod module;
pub mod parser;
pub mod printer;
pub mod verify;

pub use global::{Global, GlobalId, Section};
pub use inst::{BinOp, BlockId, CmpPred, Inst, Operand, Reg, Terminator, Width};
pub use module::{Block, Function, FunctionId, Module};

#[cfg(test)]
mod proptests;
