//! Property-based tests over FIR: random well-formed modules must verify,
//! print, and re-parse to an identical module.

use proptest::prelude::*;

use crate::builder::ModuleBuilder;
use crate::global::Global;
use crate::inst::{BinOp, CmpPred, Operand, Width};
use crate::module::Module;
use crate::parser::parse_module;
use crate::printer::print_module;
use crate::verify::verify_module;

#[derive(Debug, Clone)]
enum GenInst {
    Const(i64),
    Bin(u8, i64),
    Cmp(u8, i64),
    Load(u8),
    Store(u8, i64),
    AddrOf,
    Alloca(u32),
    Call(String, Vec<i64>),
    Select(i64, i64),
}

fn gen_inst() -> impl Strategy<Value = GenInst> {
    prop_oneof![
        any::<i64>().prop_map(GenInst::Const),
        (0u8..13, any::<i64>()).prop_map(|(o, v)| GenInst::Bin(o, v)),
        (0u8..10, any::<i64>()).prop_map(|(p, v)| GenInst::Cmp(p, v)),
        (0u8..4).prop_map(GenInst::Load),
        ((0u8..4), any::<i64>()).prop_map(|(w, v)| GenInst::Store(w, v)),
        Just(GenInst::AddrOf),
        (1u32..512).prop_map(GenInst::Alloca),
        (
            "[a-z][a-z0-9_]{0,10}",
            prop::collection::vec(any::<i64>(), 0..4)
        )
            .prop_map(|(n, a)| GenInst::Call(n, a)),
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| GenInst::Select(a, b)),
    ]
}

const BINOPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::UDiv,
    BinOp::SDiv,
    BinOp::URem,
    BinOp::SRem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
];
const PREDS: [CmpPred; 10] = [
    CmpPred::Eq,
    CmpPred::Ne,
    CmpPred::ULt,
    CmpPred::ULe,
    CmpPred::UGt,
    CmpPred::UGe,
    CmpPred::SLt,
    CmpPred::SLe,
    CmpPred::SGt,
    CmpPred::SGe,
];
const WIDTHS: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];

/// Build a random-but-well-formed module out of generated instruction specs.
fn build_module(fn_bodies: Vec<Vec<GenInst>>, global_sizes: Vec<u16>) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let mut gids = Vec::new();
    for (i, sz) in global_sizes.iter().enumerate() {
        gids.push(mb.global(Global::zeroed(format!("g{i}"), u64::from(*sz) + 1)));
    }
    if gids.is_empty() {
        gids.push(mb.global(Global::zeroed("g_default", 8)));
    }
    for (fi, body) in fn_bodies.iter().enumerate() {
        let mut f = mb.function_with_params(format!("f{fi}"), 1);
        let mut last = f.param(0);
        for gi in body {
            last = match gi.clone() {
                GenInst::Const(v) => f.const_i64(v),
                GenInst::Bin(o, v) => f.bin(
                    BINOPS[o as usize % BINOPS.len()],
                    Operand::Reg(last),
                    Operand::Imm(v),
                ),
                GenInst::Cmp(p, v) => f.cmp(
                    PREDS[p as usize % PREDS.len()],
                    Operand::Reg(last),
                    Operand::Imm(v),
                ),
                GenInst::Load(w) => f.load(Operand::Reg(last), WIDTHS[w as usize % 4]),
                GenInst::Store(w, v) => {
                    f.store(Operand::Reg(last), Operand::Imm(v), WIDTHS[w as usize % 4]);
                    last
                }
                GenInst::AddrOf => f.addr_of(gids[0]),
                GenInst::Alloca(s) => f.alloca(s),
                GenInst::Call(name, args) => {
                    f.call(name, args.into_iter().map(Operand::Imm).collect::<Vec<_>>())
                }
                GenInst::Select(a, b) => {
                    f.select(Operand::Reg(last), Operand::Imm(a), Operand::Imm(b))
                }
            };
        }
        f.ret(Some(Operand::Reg(last)));
        f.finish();
    }
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any module produced through the builder is structurally valid.
    #[test]
    fn built_modules_verify(
        bodies in prop::collection::vec(prop::collection::vec(gen_inst(), 0..20), 1..4),
        sizes in prop::collection::vec(any::<u16>(), 0..3),
    ) {
        let m = build_module(bodies, sizes);
        prop_assert!(verify_module(&m).is_ok());
    }

    /// print → parse is the identity on builder-produced modules.
    #[test]
    fn print_parse_roundtrip(
        bodies in prop::collection::vec(prop::collection::vec(gen_inst(), 0..20), 1..4),
        sizes in prop::collection::vec(any::<u16>(), 0..3),
    ) {
        let m = build_module(bodies, sizes);
        let text = print_module(&m);
        let parsed = parse_module(&text).expect("parse printed module");
        prop_assert_eq!(m, parsed);
    }

    /// replace_callee is idempotent and conserves total call-site count.
    #[test]
    fn replace_callee_conserves_calls(
        bodies in prop::collection::vec(prop::collection::vec(gen_inst(), 0..20), 1..4),
    ) {
        let mut m = build_module(bodies, vec![]);
        let before: usize = m.call_site_histogram().values().sum();
        m.replace_callee("malloc", "closurex_malloc");
        let n2 = m.replace_callee("malloc", "closurex_malloc");
        prop_assert_eq!(n2, 0, "second rewrite must find nothing");
        let after: usize = m.call_site_histogram().values().sum();
        prop_assert_eq!(before, after);
    }
}
