//! Per-block register liveness for FIR functions.
//!
//! Classic backward dataflow over the CFG: `live_out[b]` is the union of
//! the `live_in` of `b`'s successors, and `live_in[b]` is computed by
//! walking `b` backwards (terminator first), removing definitions and
//! adding uses. The decoded-layer optimizer (`vmos::decoded::opt`) uses
//! the result to prove that a register write is dead — i.e. host-only
//! bookkeeping with no observable FIR effect — before eliminating or
//! coalescing it.
//!
//! The analysis is deliberately *syntactic*: it models only the normal
//! control-flow edges a [`crate::Terminator`] declares. `longjmp`
//! re-entry edges are not modeled, so callers that transform functions
//! containing `setjmp` must apply their own (stricter) rules; the decoded
//! optimizer simply refuses to eliminate anything in such functions.

use crate::inst::Operand;
use crate::module::Function;

/// A dense register set sized to one function's register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// Empty set with capacity for `num_regs` registers.
    pub fn new(num_regs: u32) -> Self {
        RegSet {
            words: vec![0; (num_regs as usize).div_ceil(64)],
        }
    }

    /// Insert register `r`; returns true if it was newly added.
    pub fn insert(&mut self, r: u32) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Remove register `r`.
    pub fn remove(&mut self, r: u32) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        self.words[w] &= !(1 << b);
    }

    /// Is register `r` in the set?
    pub fn contains(&self, r: u32) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }
}

/// Per-block liveness sets for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

fn add_operand(set: &mut RegSet, o: Operand) {
    if let Operand::Reg(r) = o {
        set.insert(r.0);
    }
}

/// Transfer one block backwards: start from `out`, return the block's
/// `live_in`.
fn block_live_in(f: &Function, bi: usize, out: &RegSet) -> RegSet {
    let mut live = out.clone();
    let b = &f.blocks[bi];
    match &b.term {
        crate::Terminator::Ret(v) => {
            if let Some(v) = v {
                add_operand(&mut live, *v);
            }
        }
        crate::Terminator::Br(_) | crate::Terminator::Unreachable => {}
        crate::Terminator::CondBr { cond, .. } => add_operand(&mut live, *cond),
        crate::Terminator::Switch { value, .. } => add_operand(&mut live, *value),
    }
    for inst in b.insts.iter().rev() {
        if let Some(d) = inst.dst() {
            live.remove(d.0);
        }
        for o in inst.operands() {
            add_operand(&mut live, o);
        }
    }
    live
}

/// Compute per-block liveness for `f`.
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    let mut live_in = vec![RegSet::new(f.num_regs); n];
    let mut live_out = vec![RegSet::new(f.num_regs); n];
    // Iterate to a fixpoint, visiting blocks in reverse order (a good
    // approximation of post-order for machine-generated CFGs).
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            for s in f.blocks[bi].term.successors() {
                let succ_in = live_in[s.0 as usize].clone();
                changed |= live_out[bi].union_with(&succ_in);
            }
            let new_in = block_live_in(f, bi, &live_out[bi]);
            if new_in != live_in[bi] {
                live_in[bi] = new_in;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::{CmpPred, Operand};

    #[test]
    fn loop_counter_is_live_around_the_backedge() {
        // sum 0..n: acc and i are live around the loop; the cmp temp is not.
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("sum", 1);
        let n = f.param(0);
        let acc = f.const_i64(0);
        let i = f.const_i64(0);
        let hdr = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.br(hdr);
        f.switch_to(hdr);
        let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
        f.cond_br(Operand::Reg(c), body, done);
        f.switch_to(body);
        let a2 = f.add(Operand::Reg(acc), Operand::Reg(i));
        f.mov_to(acc, Operand::Reg(a2));
        let i2 = f.add(Operand::Reg(i), Operand::Imm(1));
        f.mov_to(i, Operand::Reg(i2));
        f.br(hdr);
        f.switch_to(done);
        f.ret(Some(Operand::Reg(acc)));
        f.finish();
        let m = mb.finish();
        let f = m.function("sum").unwrap();
        let lv = liveness(f);
        let hdr_in = &lv.live_in[hdr.0 as usize];
        assert!(hdr_in.contains(acc.0) && hdr_in.contains(i.0) && hdr_in.contains(n.0));
        assert!(
            !hdr_in.contains(c.0),
            "the branch temp must be dead on entry to the header"
        );
        // The body's live-out is the header's live-in (its only successor).
        assert_eq!(lv.live_out[body.0 as usize], *hdr_in);
        // Nothing is live out of the exit block.
        assert!(lv.live_out[done.0 as usize].is_empty());
    }

    #[test]
    fn straight_line_temps_die_at_last_use() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 1);
        let t = f.add(Operand::Reg(f.param(0)), Operand::Imm(1));
        let u = f.mul(Operand::Reg(t), Operand::Imm(2));
        f.ret(Some(Operand::Reg(u)));
        f.finish();
        let m = mb.finish();
        let lv = liveness(m.function("f").unwrap());
        // Single block: only the parameter is live on entry.
        assert!(lv.live_in[0].contains(0));
        assert!(!lv.live_in[0].contains(t.0));
        assert_eq!(lv.live_in[0].len(), 1);
        assert!(lv.live_out[0].is_empty());
    }
}
