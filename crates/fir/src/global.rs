//! Global variables and ELF-like section placement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a global within its [`crate::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

/// The section a global is placed in when the module is loaded.
///
/// The ClosureX `GlobalPass` moves every *writable* global into
/// [`Section::ClosureGlobal`] so the harness can snapshot and restore exactly
/// the mutable global footprint of the target (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Section {
    /// Initialized writable data (`.data`).
    Data,
    /// Read-only data (`.rodata`). Writes crash the process.
    Rodata,
    /// Zero-initialized writable data (`.bss`).
    Bss,
    /// `closure_global_section` — the snapshot/restore region created by the
    /// ClosureX `GlobalPass`.
    ClosureGlobal,
}

impl Section {
    /// Linker-style section name.
    pub fn name(self) -> &'static str {
        match self {
            Section::Data => ".data",
            Section::Rodata => ".rodata",
            Section::Bss => ".bss",
            Section::ClosureGlobal => "closure_global_section",
        }
    }

    /// Parse a linker-style section name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            ".data" => Section::Data,
            ".rodata" => Section::Rodata,
            ".bss" => Section::Bss,
            "closure_global_section" => Section::ClosureGlobal,
            _ => return None,
        })
    }

    /// Whether stores into this section are legal.
    pub fn writable(self) -> bool {
        !matches!(self, Section::Rodata)
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A module-level global variable: a named, sized, byte-initialized region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Section placement.
    pub section: Section,
    /// Total size in bytes.
    pub size: u64,
    /// Initializer bytes; shorter than `size` means the tail is
    /// zero-initialized (BSS-style).
    pub init: Vec<u8>,
    /// Whether the frontend declared this global `const`.
    ///
    /// This is the bit the `GlobalPass` inspects (the analog of LLVM's
    /// `GlobalVariable::isConstant`).
    pub is_const: bool,
}

impl Global {
    /// Create a zero-initialized writable global (a `.bss` resident).
    pub fn zeroed(name: impl Into<String>, size: u64) -> Self {
        Global {
            name: name.into(),
            section: Section::Bss,
            size,
            init: Vec::new(),
            is_const: false,
        }
    }

    /// Create an initialized writable global (a `.data` resident).
    pub fn with_init(name: impl Into<String>, init: Vec<u8>) -> Self {
        Global {
            name: name.into(),
            section: Section::Data,
            size: init.len() as u64,
            init,
            is_const: false,
        }
    }

    /// Create a constant global (a `.rodata` resident).
    pub fn constant(name: impl Into<String>, init: Vec<u8>) -> Self {
        Global {
            name: name.into(),
            section: Section::Rodata,
            size: init.len() as u64,
            init,
            is_const: true,
        }
    }

    /// Materialized initial image: `init` padded with zeros to `size`.
    pub fn image(&self) -> Vec<u8> {
        let mut v = self.init.clone();
        v.resize(self.size as usize, 0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_names_roundtrip() {
        for s in [
            Section::Data,
            Section::Rodata,
            Section::Bss,
            Section::ClosureGlobal,
        ] {
            assert_eq!(Section::from_name(s.name()), Some(s));
        }
        assert_eq!(Section::from_name(".text"), None);
    }

    #[test]
    fn writability() {
        assert!(Section::Data.writable());
        assert!(Section::Bss.writable());
        assert!(Section::ClosureGlobal.writable());
        assert!(!Section::Rodata.writable());
    }

    #[test]
    fn global_image_pads_with_zeros() {
        let mut g = Global::with_init("x", vec![1, 2, 3]);
        g.size = 8;
        assert_eq!(g.image(), vec![1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn constructors_set_sections() {
        assert_eq!(Global::zeroed("a", 8).section, Section::Bss);
        assert_eq!(Global::with_init("b", vec![0]).section, Section::Data);
        let c = Global::constant("c", vec![1]);
        assert_eq!(c.section, Section::Rodata);
        assert!(c.is_const);
    }
}
