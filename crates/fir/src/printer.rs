//! Textual FIR printer. The [`crate::parser`] round-trips this format.
//!
//! Format sketch:
//!
//! ```text
//! module "gif"
//! global @frame_count : 8 bytes, section .bss
//! global @magic : 4 bytes, section .rodata, const, init = [47 49 46 38]
//! fn @main(0) regs=12 {
//! bb0:
//!   %0 = const 42
//!   %1 = add %0, 1
//!   %2 = call @malloc(%1)
//!   store i64 %1, [%2]
//!   ret %1
//! }
//! ```

use std::fmt::Write as _;

use crate::inst::{Inst, Operand, Terminator};
use crate::module::{Function, Module};

/// Render a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module \"{}\"", m.name);
    for g in &m.globals {
        let _ = write!(
            s,
            "global @{} : {} bytes, section {}",
            g.name, g.size, g.section
        );
        if g.is_const {
            let _ = write!(s, ", const");
        }
        if !g.init.is_empty() {
            let _ = write!(s, ", init = [");
            for (i, b) in g.init.iter().enumerate() {
                if i > 0 {
                    let _ = write!(s, " ");
                }
                let _ = write!(s, "{b:02x}");
            }
            let _ = write!(s, "]");
        }
        let _ = writeln!(s);
    }
    for f in &m.functions {
        print_function(&mut s, m, f);
    }
    s
}

fn print_function(s: &mut String, m: &Module, f: &Function) {
    let _ = writeln!(s, "fn @{}({}) regs={} {{", f.name, f.num_params, f.num_regs);
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, "bb{bi}:");
        for inst in &b.insts {
            let _ = writeln!(s, "  {}", print_inst(m, inst));
        }
        let _ = writeln!(s, "  {}", print_term(&b.term));
    }
    let _ = writeln!(s, "}}");
}

fn print_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{dst} = const {value}"),
        Inst::Mov { dst, src } => format!("{dst} = mov {src}"),
        Inst::Bin { op, dst, lhs, rhs } => {
            format!("{dst} = {} {lhs}, {rhs}", op.mnemonic())
        }
        Inst::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        } => format!("{dst} = cmp {} {lhs}, {rhs}", pred.mnemonic()),
        Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        } => format!("{dst} = select {cond}, {if_true}, {if_false}"),
        Inst::Load { dst, addr, width } => format!("{dst} = load {width}, [{addr}]"),
        Inst::Store { addr, value, width } => format!("store {width} {value}, [{addr}]"),
        Inst::AddrOf { dst, global } => {
            let name = m
                .globals
                .get(global.0 as usize)
                .map(|g| g.name.as_str())
                .unwrap_or("?");
            format!("{dst} = addrof @{name}")
        }
        Inst::Alloca { dst, size } => format!("{dst} = alloca {size}"),
        Inst::Call { dst, callee, args } => {
            let args = args
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("{d} = call @{callee}({args})"),
                None => format!("call @{callee}({args})"),
            }
        }
    }
}

fn print_term(t: &Terminator) -> String {
    match t {
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Ret(Some(v)) => format!("ret {v}"),
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr {
            cond,
            if_true,
            if_false,
        } => format!("condbr {cond}, {if_true}, {if_false}"),
        Terminator::Switch {
            value,
            cases,
            default,
        } => {
            let cs = cases
                .iter()
                .map(|(v, b)| format!("{v} -> {b}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("switch {value} [{cs}] default {default}")
        }
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

/// Render one operand (used by diagnostics in other crates).
pub fn print_operand(o: &Operand) -> String {
    o.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::global::Global;
    use crate::inst::{CmpPred, Operand};

    #[test]
    fn prints_module_with_all_constructs() {
        let mut mb = ModuleBuilder::new("demo");
        let g = mb.global(Global::constant("magic", b"GIF8".to_vec()));
        let w = mb.global(Global::zeroed("count", 8));
        let mut f = mb.function_with_params("main", 2);
        let a = f.addr_of(g);
        let v = f.load8(Operand::Reg(a));
        let c = f.cmp(CmpPred::Eq, Operand::Reg(v), Operand::Imm(0x47));
        let yes = f.new_block();
        let no = f.new_block();
        f.cond_br(Operand::Reg(c), yes, no);
        f.switch_to(yes);
        let wa = f.addr_of(w);
        f.store64(Operand::Reg(wa), Operand::Imm(1));
        let buf = f.alloca(64);
        f.call_void(
            "memset",
            vec![Operand::Reg(buf), Operand::Imm(0), Operand::Imm(64)],
        );
        f.ret(Some(Operand::Imm(0)));
        f.switch_to(no);
        f.call_void("exit", vec![Operand::Imm(1)]);
        f.unreachable();
        f.finish();
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global @magic : 4 bytes, section .rodata, const"));
        assert!(text.contains("init = [47 49 46 38]"));
        assert!(text.contains("fn @main(2) regs="));
        assert!(text.contains("= addrof @magic"));
        assert!(text.contains("call @exit(1)"));
        assert!(text.contains("unreachable"));
    }
}
