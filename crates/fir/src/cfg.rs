//! Control-flow-graph analyses over FIR functions.
//!
//! Used by the coverage pass (edge enumeration) and by the verifier-adjacent
//! diagnostics (unreachable-block detection).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::inst::BlockId;
use crate::module::Function;

/// Predecessor map: for each block, the blocks that branch to it.
pub fn predecessors(f: &Function) -> HashMap<BlockId, Vec<BlockId>> {
    let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            preds.entry(s).or_default().push(BlockId(bi as u32));
        }
    }
    preds
}

/// Blocks reachable from the entry, in breadth-first order.
pub fn reachable_blocks(f: &Function) -> Vec<BlockId> {
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    q.push_back(f.entry());
    seen.insert(f.entry());
    while let Some(b) = q.pop_front() {
        order.push(b);
        for s in f.blocks[b.0 as usize].term.successors() {
            if seen.insert(s) {
                q.push_back(s);
            }
        }
    }
    order
}

/// Blocks not reachable from the entry (dead code diagnostics).
pub fn unreachable_blocks(f: &Function) -> Vec<BlockId> {
    let reach: HashSet<BlockId> = reachable_blocks(f).into_iter().collect();
    (0..f.blocks.len() as u32)
        .map(BlockId)
        .filter(|b| !reach.contains(b))
        .collect()
}

/// All CFG edges `(from, to)` of a function.
pub fn edges(f: &Function) -> Vec<(BlockId, BlockId)> {
    let mut es = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for s in b.term.successors() {
            es.push((BlockId(bi as u32), s));
        }
    }
    es
}

/// Blocks that sit on a CFG cycle (i.e. can reach themselves). These are
/// the "hot" blocks for decode-time optimization heuristics: anything on a
/// cycle may execute an unbounded number of times per call.
pub fn loop_blocks(f: &Function) -> HashSet<BlockId> {
    let n = f.blocks.len();
    // reach[b] = set of blocks reachable from b, computed by BFS per block.
    // Quadratic in the worst case but cheap at the CFG sizes MinC emits,
    // and only run once per module at decode time.
    let mut on_cycle = HashSet::new();
    for start in 0..n as u32 {
        let start = BlockId(start);
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        for s in f.blocks[start.0 as usize].term.successors() {
            if seen.insert(s) {
                q.push_back(s);
            }
        }
        while let Some(b) = q.pop_front() {
            if b == start {
                on_cycle.insert(start);
                break;
            }
            for s in f.blocks[b.0 as usize].term.successors() {
                if seen.insert(s) {
                    q.push_back(s);
                }
            }
        }
    }
    on_cycle
}

/// Reverse-post-order over reachable blocks (classic pass iteration order).
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut visited = HashSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack to avoid recursion limits on
    // machine-generated CFGs.
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry(), 0)];
    visited.insert(f.entry());
    while let Some((b, i)) = stack.pop() {
        let succs = f.blocks[b.0 as usize].term.successors();
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    /// Build a diamond CFG:  bb0 -> {bb1, bb2} -> bb3, plus dead bb4.
    fn diamond() -> Function {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 1);
        let t = f.new_block();
        let e = f.new_block();
        let join = f.new_block();
        let dead = f.new_block();
        let p = f.param(0);
        f.cond_br(Operand::Reg(p), t, e);
        f.switch_to(t);
        f.br(join);
        f.switch_to(e);
        f.br(join);
        f.switch_to(join);
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        m.function("f").unwrap().clone()
    }

    #[test]
    fn predecessors_of_join() {
        let f = diamond();
        let preds = predecessors(&f);
        let join = BlockId(3);
        let mut p = preds.get(&join).cloned().unwrap_or_default();
        p.sort();
        assert_eq!(p, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn reachability_finds_dead_block() {
        let f = diamond();
        let dead = unreachable_blocks(&f);
        assert_eq!(dead, vec![BlockId(4)]);
        assert_eq!(reachable_blocks(&f).len(), 4);
    }

    #[test]
    fn edge_count() {
        let f = diamond();
        assert_eq!(edges(&f).len(), 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // join must come after both branches
        let pos = |b: BlockId| rpo.iter().position(|x| *x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }
}
