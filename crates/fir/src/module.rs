//! Modules, functions and basic blocks.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::global::{Global, GlobalId};
use crate::inst::{BlockId, Inst, Terminator};

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions executed in order.
    pub insts: Vec<Inst>,
    /// The terminator deciding the successor (or return).
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `unreachable` (builder placeholder).
    pub fn placeholder() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

/// A FIR function.
///
/// Parameters are the first `num_params` registers (`%0..%num_params`); all
/// parameters and the optional return value are 64-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name, unique within the module. Calls resolve against it.
    pub name: String,
    /// Number of parameters (bound to registers `%0..`).
    pub num_params: u32,
    /// Number of virtual registers used (register file size).
    pub num_regs: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Look up a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A compilation unit: globals + functions, the unit ClosureX passes run on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Module {
    /// Module (target) name.
    pub name: String,
    /// Global variables, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Functions, indexed by [`FunctionId`].
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Id of the function with the given name.
    pub fn function_id(&self, name: &str) -> Option<FunctionId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FunctionId(i as u32))
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Id of the global with the given name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Append a global, returning its id.
    ///
    /// # Panics
    /// Panics if a global with the same name already exists.
    pub fn push_global(&mut self, g: Global) -> GlobalId {
        assert!(
            self.global(&g.name).is_none(),
            "duplicate global {}",
            g.name
        );
        self.globals.push(g);
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Append a function, returning its id.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn push_function(&mut self, f: Function) -> FunctionId {
        assert!(
            self.function(&f.name).is_none(),
            "duplicate function {}",
            f.name
        );
        self.functions.push(f);
        FunctionId(self.functions.len() as u32 - 1)
    }

    /// Rewrite every call to `from` so it calls `to` instead, across the whole
    /// module. Returns the number of call sites rewritten.
    ///
    /// This is the FIR analog of collecting a function's users in LLVM and
    /// invoking `replaceAllUsesWith` — the primitive all five ClosureX passes
    /// are built from.
    pub fn replace_callee(&mut self, from: &str, to: &str) -> usize {
        let mut n = 0;
        for f in &mut self.functions {
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if callee == from {
                            *callee = to.to_string();
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    /// Histogram of callee names across the module (diagnostics / tests).
    pub fn call_site_histogram(&self) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for f in &self.functions {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::Call { callee, .. } = inst {
                        *h.entry(callee.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        h
    }

    /// Total instruction count over all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }

    /// Content fingerprint of the module, used to key derived artifacts
    /// (e.g. the decoded-bytecode image cache in `vmos`). Two structurally
    /// equal modules always fingerprint equal; distinct modules collide
    /// only if FNV-1a over their printed forms collides, and the printed
    /// form round-trips the entire module (see `printer`), so every
    /// semantic difference reaches the hash.
    pub fn fingerprint(&self) -> u64 {
        let text = crate::printer::print_module(self);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in text.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        // Fold in cheap structural counts so a (vanishingly unlikely)
        // text-hash collision would still need matching shape.
        h ^= (self.functions.len() as u64).rotate_left(17);
        h ^= (self.globals.len() as u64).rotate_left(33);
        h ^= (self.inst_count() as u64).rotate_left(49);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn call(callee: &str) -> Inst {
        Inst::Call {
            dst: None,
            callee: callee.into(),
            args: vec![Operand::Imm(1)],
        }
    }

    fn one_block_fn(name: &str, insts: Vec<Inst>) -> Function {
        Function {
            name: name.into(),
            num_params: 0,
            num_regs: 8,
            blocks: vec![Block {
                insts,
                term: Terminator::Ret(None),
            }],
        }
    }

    #[test]
    fn replace_callee_rewrites_all_sites() {
        let mut m = Module::new("t");
        m.push_function(one_block_fn("a", vec![call("malloc"), call("free")]));
        m.push_function(one_block_fn("b", vec![call("malloc")]));
        let n = m.replace_callee("malloc", "closurex_malloc");
        assert_eq!(n, 2);
        let h = m.call_site_histogram();
        assert_eq!(h.get("closurex_malloc"), Some(&2));
        assert_eq!(h.get("malloc"), None);
        assert_eq!(h.get("free"), Some(&1));
    }

    #[test]
    fn lookups() {
        let mut m = Module::new("t");
        let fid = m.push_function(one_block_fn("main", vec![]));
        let gid = m.push_global(Global::zeroed("counter", 8));
        assert_eq!(m.function_id("main"), Some(fid));
        assert_eq!(m.global_id("counter"), Some(gid));
        assert!(m.function("nope").is_none());
        assert!(m.global("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new("t");
        m.push_function(one_block_fn("main", vec![]));
        m.push_function(one_block_fn("main", vec![]));
    }

    #[test]
    fn inst_count_sums_blocks() {
        let mut m = Module::new("t");
        m.push_function(one_block_fn("a", vec![call("x"), call("y")]));
        m.push_function(one_block_fn("b", vec![call("z")]));
        assert_eq!(m.inst_count(), 3);
    }
}
