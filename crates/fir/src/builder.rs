//! Ergonomic construction of FIR modules and functions.
//!
//! ```
//! use fir::builder::ModuleBuilder;
//! use fir::Operand;
//!
//! let mut mb = ModuleBuilder::new("m");
//! let g = mb.global(fir::Global::zeroed("counter", 8));
//! let mut f = mb.function("bump");
//! let addr = f.addr_of(g);
//! let v = f.load64(Operand::Reg(addr));
//! let v2 = f.add(Operand::Reg(v), Operand::Imm(1));
//! f.store64(Operand::Reg(addr), Operand::Reg(v2));
//! f.ret(None);
//! f.finish();
//! let m = mb.finish();
//! assert!(fir::verify::verify_module(&m).is_ok());
//! ```

use crate::global::{Global, GlobalId};
use crate::inst::{BinOp, BlockId, CmpPred, Inst, Operand, Reg, Terminator, Width};
use crate::module::{Block, Function, FunctionId, Module};

/// Builds a [`Module`] incrementally.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start a new module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Add a global variable.
    pub fn global(&mut self, g: Global) -> GlobalId {
        self.module.push_global(g)
    }

    /// Begin a function with no parameters.
    pub fn function(&mut self, name: impl Into<String>) -> FunctionBuilder<'_> {
        self.function_with_params(name, 0)
    }

    /// Begin a function with `num_params` parameters (bound to `%0..`).
    pub fn function_with_params(
        &mut self,
        name: impl Into<String>,
        num_params: u32,
    ) -> FunctionBuilder<'_> {
        FunctionBuilder::new(&mut self.module, name.into(), num_params)
    }

    /// Finish and return the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Access the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds one [`Function`]; finalize with [`FunctionBuilder::finish`].
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: Function,
    cur: BlockId,
    next_reg: u32,
    finished_current: bool,
}

impl<'m> FunctionBuilder<'m> {
    fn new(module: &'m mut Module, name: String, num_params: u32) -> Self {
        let func = Function {
            name,
            num_params,
            num_regs: num_params,
            blocks: vec![Block::placeholder()],
        };
        FunctionBuilder {
            module,
            func,
            cur: BlockId(0),
            next_reg: num_params,
            finished_current: false,
        }
    }

    /// Register bound to parameter `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_params`.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.func.num_params, "param {i} out of range");
        Reg(i)
    }

    /// Allocate a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Create a new (empty) block and return its id. Does not switch to it.
    pub fn new_block(&mut self) -> BlockId {
        self.func.blocks.push(Block::placeholder());
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Switch the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.finished_current = false;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// True if the current block already has its terminator.
    pub fn is_terminated(&self) -> bool {
        self.finished_current
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            !self.finished_current,
            "block {} already terminated",
            self.cur
        );
        self.func.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(
            !self.finished_current,
            "block {} already terminated",
            self.cur
        );
        self.func.blocks[self.cur.0 as usize].term = term;
        self.finished_current = true;
    }

    // ---- instructions -------------------------------------------------

    /// `dst = value`
    pub fn const_i64(&mut self, value: i64) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// `dst = src`
    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Mov { dst, src });
        dst
    }

    /// Move into an existing register (for loop-carried variables).
    pub fn mov_to(&mut self, dst: Reg, src: Operand) {
        self.push(Inst::Mov { dst, src });
    }

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// `add`
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `sub`
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `mul`
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Reg {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Comparison producing 0/1.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// `dst = cond ? a : b`
    pub fn select(&mut self, cond: Operand, if_true: Operand, if_false: Operand) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Select {
            dst,
            cond,
            if_true,
            if_false,
        });
        dst
    }

    /// Typed load.
    pub fn load(&mut self, addr: Operand, width: Width) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Load { dst, addr, width });
        dst
    }

    /// 8-bit load (zero-extended).
    pub fn load8(&mut self, addr: Operand) -> Reg {
        self.load(addr, Width::W8)
    }

    /// 64-bit load.
    pub fn load64(&mut self, addr: Operand) -> Reg {
        self.load(addr, Width::W64)
    }

    /// Typed store.
    pub fn store(&mut self, addr: Operand, value: Operand, width: Width) {
        self.push(Inst::Store { addr, value, width });
    }

    /// 8-bit store.
    pub fn store8(&mut self, addr: Operand, value: Operand) {
        self.store(addr, value, Width::W8);
    }

    /// 64-bit store.
    pub fn store64(&mut self, addr: Operand, value: Operand) {
        self.store(addr, value, Width::W64);
    }

    /// Materialize a global's address.
    pub fn addr_of(&mut self, global: GlobalId) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::AddrOf { dst, global });
        dst
    }

    /// Reserve `size` bytes of stack in the current frame.
    pub fn alloca(&mut self, size: u32) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Alloca { dst, size });
        dst
    }

    /// Call returning a value.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.push(Inst::Call {
            dst: Some(dst),
            callee: callee.into(),
            args,
        });
        dst
    }

    /// Call discarding any return value.
    pub fn call_void(&mut self, callee: impl Into<String>, args: Vec<Operand>) {
        self.push(Inst::Call {
            dst: None,
            callee: callee.into(),
            args,
        });
    }

    // ---- terminators ---------------------------------------------------

    /// Return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Conditional branch on `cond != 0`.
    pub fn cond_br(&mut self, cond: Operand, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            if_true,
            if_false,
        });
    }

    /// Switch.
    pub fn switch(&mut self, value: Operand, cases: Vec<(i64, BlockId)>, default: BlockId) {
        self.terminate(Terminator::Switch {
            value,
            cases,
            default,
        });
    }

    /// Mark the current block unreachable.
    pub fn unreachable(&mut self) {
        self.terminate(Terminator::Unreachable);
    }

    /// Finish the function and add it to the module.
    ///
    /// # Panics
    /// Panics if a function with the same name already exists.
    pub fn finish(mut self) -> FunctionId {
        self.func.num_regs = self.next_reg.max(self.func.num_params);
        self.module.push_function(self.func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn builds_loop_function() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("sum_to_n", 1);
        let n = f.param(0);
        let acc = f.const_i64(0);
        let i = f.const_i64(0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.br(header);
        f.switch_to(header);
        let c = f.cmp(CmpPred::SLt, Operand::Reg(i), Operand::Reg(n));
        f.cond_br(Operand::Reg(c), body, exit);
        f.switch_to(body);
        let acc2 = f.add(Operand::Reg(acc), Operand::Reg(i));
        f.mov_to(acc, Operand::Reg(acc2));
        let i2 = f.add(Operand::Reg(i), Operand::Imm(1));
        f.mov_to(i, Operand::Reg(i2));
        f.br(header);
        f.switch_to(exit);
        f.ret(Some(Operand::Reg(acc)));
        f.finish();
        let m = mb.finish();
        verify_module(&m).expect("verifies");
        assert_eq!(m.function("sum_to_n").unwrap().blocks.len(), 4);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn cannot_append_after_terminator() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function("f");
        f.ret(None);
        f.const_i64(1);
    }

    #[test]
    fn num_regs_tracks_fresh_registers() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.function_with_params("f", 2);
        assert_eq!(f.param(0), Reg(0));
        assert_eq!(f.param(1), Reg(1));
        let r = f.const_i64(5);
        assert_eq!(r, Reg(2));
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        let m = mb.finish();
        assert_eq!(m.function("f").unwrap().num_regs, 3);
    }
}
