//! Instruction set of FIR.
//!
//! FIR is a register machine: every function owns an unbounded file of 64-bit
//! virtual registers ([`Reg`]). Instructions read [`Operand`]s (a register or
//! an immediate) and write at most one destination register. Memory is
//! byte-addressed; loads and stores carry an access [`Width`].

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::global::GlobalId;

/// A virtual register, local to one function.
///
/// Registers are 64-bit signed integers at runtime. Pointer values are plain
/// addresses stored in registers, exactly like LLVM `ptrtoint`ed pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block index inside one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An instruction operand: either a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Read the value of a virtual register.
    Reg(Reg),
    /// A constant immediate.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand is one.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate if this operand is one.
    pub fn as_imm(&self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(*v),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Memory access width in bytes for [`Inst::Load`] / [`Inst::Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Width {
    /// One byte; loads zero-extend.
    W8,
    /// Two bytes, little-endian; loads zero-extend.
    W16,
    /// Four bytes, little-endian; loads zero-extend.
    W32,
    /// Eight bytes, little-endian.
    W64,
}

impl Width {
    /// Number of bytes this width covers.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bytes() * 8)
    }
}

/// Two-operand integer arithmetic / bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Traps (crash) on zero divisor.
    UDiv,
    /// Signed division. Traps on zero divisor or `i64::MIN / -1`.
    SDiv,
    /// Unsigned remainder. Traps on zero divisor.
    URem,
    /// Signed remainder. Traps on zero divisor.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    LShr,
    /// Arithmetic shift right (modulo 64).
    AShr,
}

impl BinOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parse a mnemonic back into a [`BinOp`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "sdiv" => BinOp::SDiv,
            "urem" => BinOp::URem,
            "srem" => BinOp::SRem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            _ => return None,
        })
    }
}

/// Comparison predicates, mirroring LLVM `icmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
}

impl CmpPred {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::ULt => "ult",
            CmpPred::ULe => "ule",
            CmpPred::UGt => "ugt",
            CmpPred::UGe => "uge",
            CmpPred::SLt => "slt",
            CmpPred::SLe => "sle",
            CmpPred::SGt => "sgt",
            CmpPred::SGe => "sge",
        }
    }

    /// Parse a mnemonic back into a [`CmpPred`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "ult" => CmpPred::ULt,
            "ule" => CmpPred::ULe,
            "ugt" => CmpPred::UGt,
            "uge" => CmpPred::UGe,
            "slt" => CmpPred::SLt,
            "sle" => CmpPred::SLe,
            "sgt" => CmpPred::SGt,
            "sge" => CmpPred::SGe,
            _ => return None,
        })
    }

    /// Evaluate the predicate on two 64-bit values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        let (ua, ub) = (a as u64, b as u64);
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::ULt => ua < ub,
            CmpPred::ULe => ua <= ub,
            CmpPred::UGt => ua > ub,
            CmpPred::UGe => ua >= ub,
            CmpPred::SLt => a < b,
            CmpPred::SLe => a <= b,
            CmpPred::SGt => a > b,
            CmpPred::SGe => a >= b,
        }
    }
}

/// A non-terminator FIR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = value`
    Const { dst: Reg, value: i64 },
    /// `dst = src` (register-to-register or immediate move).
    Mov { dst: Reg, src: Operand },
    /// `dst = op lhs, rhs`
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cmp pred lhs, rhs` — produces 0 or 1.
    Cmp {
        pred: CmpPred,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond ? if_true : if_false`
    Select {
        dst: Reg,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// `dst = load width, [addr]`
    Load {
        dst: Reg,
        addr: Operand,
        width: Width,
    },
    /// `store width value, [addr]`
    Store {
        addr: Operand,
        value: Operand,
        width: Width,
    },
    /// `dst = &global` — materialize a global's address.
    AddrOf { dst: Reg, global: GlobalId },
    /// `dst = alloca size` — reserve `size` bytes in the current stack frame.
    ///
    /// The reservation is released when the frame pops (or when a `longjmp`
    /// unwinds past it), mirroring C automatic storage.
    Alloca { dst: Reg, size: u32 },
    /// `dst = call callee(args...)`
    ///
    /// Callees are resolved **by name** at execution time: first against the
    /// module's functions, then against the host-call table (the simulated
    /// libc). Name-based call sites are what make the ClosureX passes'
    /// `replaceAllUsesWith`-style rewrites possible.
    Call {
        dst: Option<Reg>,
        callee: String,
        args: Vec<Operand>,
    },
}

impl Inst {
    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::AddrOf { dst, .. }
            | Inst::Alloca { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// All operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::Const { .. } | Inst::AddrOf { .. } | Inst::Alloca { .. } => vec![],
            Inst::Mov { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => vec![*cond, *if_true, *if_false],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } => vec![*addr, *value],
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// True if this is a call to `callee`.
    pub fn is_call_to(&self, callee: &str) -> bool {
        matches!(self, Inst::Call { callee: c, .. } if c == callee)
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Return from the function, optionally with a value.
    Ret(Option<Operand>),
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on `cond != 0`.
    CondBr {
        cond: Operand,
        if_true: BlockId,
        if_false: BlockId,
    },
    /// Multi-way dispatch on an integer value.
    Switch {
        value: Operand,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    },
    /// Control never reaches here; executing it is a crash.
    Unreachable,
}

impl Terminator {
    /// Successor block ids of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r: Operand = Reg(3).into();
        assert_eq!(r.as_reg(), Some(Reg(3)));
        assert_eq!(r.as_imm(), None);
        let i: Operand = 42i64.into();
        assert_eq!(i.as_imm(), Some(42));
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W16.bytes(), 2);
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W64.bytes(), 8);
    }

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::UDiv,
            BinOp::SDiv,
            BinOp::URem,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn cmp_mnemonic_roundtrip_and_eval() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::ULt,
            CmpPred::ULe,
            CmpPred::UGt,
            CmpPred::UGe,
            CmpPred::SLt,
            CmpPred::SLe,
            CmpPred::SGt,
            CmpPred::SGe,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        assert!(CmpPred::SLt.eval(-1, 0));
        assert!(!CmpPred::ULt.eval(-1, 0), "-1 is u64::MAX unsigned");
        assert!(CmpPred::UGe.eval(-1, 0));
        assert!(CmpPred::Eq.eval(7, 7));
    }

    #[test]
    fn terminator_successors() {
        assert!(Terminator::Ret(None).successors().is_empty());
        assert_eq!(Terminator::Br(BlockId(2)).successors(), vec![BlockId(2)]);
        let t = Terminator::CondBr {
            cond: Operand::Imm(1),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let s = Terminator::Switch {
            value: Operand::Imm(0),
            cases: vec![(1, BlockId(3)), (2, BlockId(4))],
            default: BlockId(5),
        };
        assert_eq!(s.successors(), vec![BlockId(3), BlockId(4), BlockId(5)]);
    }

    #[test]
    fn inst_dst_and_operands() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(5),
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(2),
        };
        assert_eq!(i.dst(), Some(Reg(5)));
        assert_eq!(i.operands().len(), 2);
        let s = Inst::Store {
            addr: Operand::Reg(Reg(0)),
            value: Operand::Imm(9),
            width: Width::W64,
        };
        assert_eq!(s.dst(), None);
    }

    #[test]
    fn is_call_to() {
        let c = Inst::Call {
            dst: None,
            callee: "malloc".into(),
            args: vec![Operand::Imm(16)],
        };
        assert!(c.is_call_to("malloc"));
        assert!(!c.is_call_to("free"));
    }
}
