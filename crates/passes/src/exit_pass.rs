//! `ExitPass` — rewrite the target's `exit()` calls to the ClosureX exit
//! hook (paper §4.1).
//!
//! Programs bail out with `exit()` on malformed input — constantly, under
//! fuzzing. In a persistent loop that would kill the process; ClosureX
//! instead transfers control back to the harness loop via `longjmp` (in
//! this reproduction, via the interpreter's `ExitHooked` unwind). Only
//! call sites *inside the instrumented target* are rewritten; `exit` calls
//! inside libc itself are left alone, exactly as the paper requires — here
//! that falls out naturally because host-library code is not FIR.

use fir::Module;

use crate::manager::{ModulePass, PassError, PassReport};

/// Hook name installed in place of `exit`.
pub const EXIT_HOOK: &str = "closurex_exit_hook";

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExitPass;

impl ModulePass for ExitPass {
    fn name(&self) -> &'static str {
        "ExitPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut n = module.replace_callee("exit", EXIT_HOOK);
        n += module.replace_callee("_exit", EXIT_HOOK);
        Ok(PassReport {
            pass: self.name().into(),
            changes: n,
            summary: format!("hooked {n} exit call sites -> {EXIT_HOOK}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Operand;

    #[test]
    fn rewrites_exit_and_underscore_exit() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.call_void("exit", vec![Operand::Imm(1)]);
        f.call_void("_exit", vec![Operand::Imm(2)]);
        f.call_void("free", vec![Operand::Imm(0)]);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let r = ExitPass.run(&mut m).unwrap();
        assert_eq!(r.changes, 2);
        let h = m.call_site_histogram();
        assert_eq!(h.get(EXIT_HOOK), Some(&2));
        assert_eq!(h.get("exit"), None);
        assert_eq!(h.get("free"), Some(&1), "unrelated calls untouched");
    }

    #[test]
    fn zero_sites_is_fine() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let r = ExitPass.run(&mut m).unwrap();
        assert_eq!(r.changes, 0);
    }
}
