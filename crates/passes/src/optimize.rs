//! Standard optimization passes: constant folding and dead-block
//! elimination.
//!
//! The paper's targets are built through an ordinary compiler pipeline
//! before the ClosureX passes run; these passes play that role here (and
//! exercise the claim that ClosureX instrumentation composes with other
//! transforms — the pipeline order tests in `pipelines` cover both
//! orderings).

use std::collections::HashMap;

use fir::{BinOp, BlockId, Inst, Module, Operand, Reg, Terminator};

use crate::manager::{ModulePass, PassError, PassReport};

/// Fold constant-operand arithmetic and propagate `const`/`mov` chains
/// within each basic block.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFoldPass;

/// Fold one binary op over constant operands, or `None` when folding
/// would change behavior (division by zero, `i64::MIN / -1` overflow —
/// both must stay in the program so the interpreter reports the crash).
///
/// This is the compile-time twin of `vmos::interp::eval_bin`; the
/// differential proptest in this module pins the two together on the
/// edge cases (shift-amount masking, signed-overflow division).
pub fn fold_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::LShr => ((a as u64) >> (b as u32 & 63)) as i64,
        BinOp::AShr => a >> (b as u32 & 63),
        // Division folds only when provably safe; a fold must never hide
        // a division-by-zero crash the interpreter would report.
        BinOp::UDiv if b != 0 => ((a as u64) / (b as u64)) as i64,
        BinOp::SDiv if b != 0 && !(a == i64::MIN && b == -1) => a / b,
        BinOp::URem if b != 0 => ((a as u64) % (b as u64)) as i64,
        BinOp::SRem if b != 0 && !(a == i64::MIN && b == -1) => a % b,
        _ => return None,
    })
}

impl ModulePass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "ConstFoldPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut folded = 0;
        for f in &mut module.functions {
            for b in &mut f.blocks {
                // Known-constant registers, valid within this block only
                // (registers are mutable across blocks in FIR).
                let mut known: HashMap<Reg, i64> = HashMap::new();
                let resolve = |known: &HashMap<Reg, i64>, o: Operand| match o {
                    Operand::Imm(v) => Some(v),
                    Operand::Reg(r) => known.get(&r).copied(),
                };
                for inst in &mut b.insts {
                    match inst {
                        Inst::Const { dst, value } => {
                            known.insert(*dst, *value);
                        }
                        Inst::Mov { dst, src } => {
                            if let Some(v) = resolve(&known, *src) {
                                *inst = Inst::Const {
                                    dst: *dst,
                                    value: v,
                                };
                                known.insert(inst.dst().expect("const has dst"), v);
                                folded += 1;
                            } else {
                                known.remove(dst);
                            }
                        }
                        Inst::Bin { op, dst, lhs, rhs } => {
                            let fold = resolve(&known, *lhs)
                                .zip(resolve(&known, *rhs))
                                .and_then(|(a, c)| fold_bin(*op, a, c));
                            let dst = *dst;
                            if let Some(v) = fold {
                                *inst = Inst::Const { dst, value: v };
                                known.insert(dst, v);
                                folded += 1;
                            } else {
                                known.remove(&dst);
                            }
                        }
                        Inst::Cmp {
                            pred,
                            dst,
                            lhs,
                            rhs,
                        } => {
                            let fold = resolve(&known, *lhs)
                                .zip(resolve(&known, *rhs))
                                .map(|(a, c)| i64::from(pred.eval(a, c)));
                            let dst = *dst;
                            if let Some(v) = fold {
                                *inst = Inst::Const { dst, value: v };
                                known.insert(dst, v);
                                folded += 1;
                            } else {
                                known.remove(&dst);
                            }
                        }
                        other => {
                            // Any other def invalidates prior knowledge.
                            if let Some(d) = other.dst() {
                                known.remove(&d);
                            }
                        }
                    }
                }
                // Fold conditional branches on known conditions.
                if let Terminator::CondBr {
                    cond,
                    if_true,
                    if_false,
                } = &b.term
                {
                    if let Some(v) = resolve(&known, *cond) {
                        b.term = Terminator::Br(if v != 0 { *if_true } else { *if_false });
                        folded += 1;
                    }
                }
            }
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: folded,
            summary: format!("folded {folded} instructions/branches"),
        })
    }
}

/// Replace blocks unreachable from the entry with empty `unreachable`
/// stubs (ids must stay stable, so blocks are stubbed, not removed).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadBlockPass;

impl ModulePass for DeadBlockPass {
    fn name(&self) -> &'static str {
        "DeadBlockPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut stubbed = 0;
        for f in &mut module.functions {
            let dead: Vec<BlockId> = fir::cfg::unreachable_blocks(f);
            for b in dead {
                let blk = f.block_mut(b);
                if !blk.insts.is_empty() || blk.term != Terminator::Unreachable {
                    blk.insts.clear();
                    blk.term = Terminator::Unreachable;
                    stubbed += 1;
                }
            }
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: stubbed,
            summary: format!("stubbed {stubbed} unreachable blocks"),
        })
    }
}

#[cfg(test)]
mod differential {
    //! `fold_bin` vs. the reference interpreter's `eval_bin`: wherever the
    //! fold produces a value, the interpreter must produce the **same**
    //! value; wherever the interpreter traps, the fold must decline.
    //! Divergence in either direction is a miscompile (a folded-in wrong
    //! constant, or a fold that hides a crash site).

    use super::fold_bin;
    use fir::BinOp;
    use proptest::prelude::*;
    use vmos::interp::eval_bin;

    const OPS: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::SDiv,
        BinOp::URem,
        BinOp::SRem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
    ];

    /// Values with every edge the semantics care about: signed-overflow
    /// division pairs, zero divisors, shift counts at/past the 63 mask.
    fn operand() -> impl Strategy<Value = i64> {
        prop_oneof![
            any::<i64>(),
            prop_oneof![
                Just(0i64),
                Just(1),
                Just(-1),
                Just(2),
                Just(i64::MIN),
                Just(i64::MIN + 1),
                Just(i64::MAX),
                Just(62),
                Just(63),
                Just(64),
                Just(65),
                Just(127),
                Just(-63),
            ],
        ]
    }

    fn bin_op() -> impl Strategy<Value = BinOp> {
        (0usize..OPS.len()).prop_map(|i| OPS[i])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]

        #[test]
        fn fold_agrees_with_the_reference_interpreter(
            op in bin_op(),
            a in operand(),
            b in operand(),
        ) {
            let folded = fold_bin(op, a, b);
            let executed = eval_bin(op, a, b);
            match (folded, executed) {
                (Some(f), Ok(e)) => prop_assert_eq!(
                    f, e,
                    "fold_bin({:?}, {}, {}) folded a different value than \
                     the interpreter computes", op, a, b
                ),
                (Some(f), Err(detail)) => prop_assert!(
                    false,
                    "fold_bin({:?}, {}, {}) folded {} but the interpreter \
                     traps with {:?}", op, a, b, f, detail
                ),
                // Declining to fold a computable op is allowed (it only
                // costs optimization); folding a trapping op is not.
                (None, _) => {}
            }
        }

        /// Shift amounts are masked to the low 6 bits in both worlds:
        /// folds of oversized shift counts must match execution exactly
        /// (x86-style masking, not UB, not saturation).
        #[test]
        fn shift_masking_is_identical(a in operand(), b in operand()) {
            for op in [BinOp::Shl, BinOp::LShr, BinOp::AShr] {
                let folded = fold_bin(op, a, b).expect("shifts always fold");
                let executed = eval_bin(op, a, b).expect("shifts never trap");
                prop_assert_eq!(folded, executed);
                // The mask really is mod-64: an oversized count behaves
                // like its low bits in both implementations.
                let masked = b & 63;
                prop_assert_eq!(folded, fold_bin(op, a, masked).unwrap());
            }
        }
    }

    /// The four signed-overflow / zero-divisor corners, pinned exactly:
    /// the fold must decline and the interpreter must trap.
    #[test]
    fn division_corners_never_fold_and_always_trap() {
        let corners = [
            (BinOp::UDiv, 7i64, 0i64),
            (BinOp::URem, 7, 0),
            (BinOp::SDiv, 7, 0),
            (BinOp::SRem, 7, 0),
            (BinOp::SDiv, i64::MIN, -1),
            (BinOp::SRem, i64::MIN, -1),
        ];
        for (op, a, b) in corners {
            assert_eq!(fold_bin(op, a, b), None, "{op:?} {a} {b} must not fold");
            assert!(eval_bin(op, a, b).is_err(), "{op:?} {a} {b} must trap");
        }
        // ...and the near-misses both compute, identically.
        for (op, a, b) in [
            (BinOp::SDiv, i64::MIN, 1),
            (BinOp::SDiv, i64::MIN + 1, -1),
            (BinOp::SRem, i64::MIN, 1),
            (BinOp::UDiv, i64::MIN, -1),
            (BinOp::URem, i64::MIN, -1),
        ] {
            assert_eq!(fold_bin(op, a, b), Some(eval_bin(op, a, b).unwrap()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::verify::verify_module;
    use fir::CmpPred;

    #[test]
    fn folds_constant_chains() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let a = f.const_i64(6);
        let b = f.const_i64(7);
        let c = f.mul(Operand::Reg(a), Operand::Reg(b));
        let d = f.add(Operand::Reg(c), Operand::Imm(0));
        f.ret(Some(Operand::Reg(d)));
        f.finish();
        let mut m = mb.finish();
        let r = ConstFoldPass.run(&mut m).unwrap();
        assert!(r.changes >= 2);
        verify_module(&m).unwrap();
        let blk = &m.function("main").unwrap().blocks[0];
        assert!(matches!(blk.insts[3], Inst::Const { value: 42, .. }));
    }

    #[test]
    fn never_folds_division_by_zero() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let a = f.const_i64(10);
        let z = f.const_i64(0);
        let d = f.bin(BinOp::SDiv, Operand::Reg(a), Operand::Reg(z));
        f.ret(Some(Operand::Reg(d)));
        f.finish();
        let mut m = mb.finish();
        ConstFoldPass.run(&mut m).unwrap();
        let blk = &m.function("main").unwrap().blocks[0];
        assert!(
            matches!(
                blk.insts[2],
                Inst::Bin {
                    op: BinOp::SDiv,
                    ..
                }
            ),
            "the crash-producing divide must survive"
        );
    }

    #[test]
    fn folds_known_branches_and_stubs_dead_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let c = f.cmp(CmpPred::Eq, Operand::Imm(1), Operand::Imm(1));
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Operand::Reg(c), t, e);
        f.switch_to(t);
        f.ret(Some(Operand::Imm(1)));
        f.switch_to(e);
        f.const_i64(99);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let mut m = mb.finish();
        ConstFoldPass.run(&mut m).unwrap();
        let dead = DeadBlockPass.run(&mut m).unwrap();
        assert_eq!(dead.changes, 1, "the else block became unreachable");
        verify_module(&m).unwrap();
        assert!(m.function("main").unwrap().blocks[2].insts.is_empty());
    }

    #[test]
    fn call_clobbers_knowledge() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let a = f.const_i64(5);
        let b = f.call("rand", vec![]);
        f.mov_to(a, Operand::Reg(b));
        let c = f.add(Operand::Reg(a), Operand::Imm(1));
        f.ret(Some(Operand::Reg(c)));
        f.finish();
        let mut m = mb.finish();
        ConstFoldPass.run(&mut m).unwrap();
        let blk = &m.function("main").unwrap().blocks[0];
        assert!(
            matches!(blk.insts[3], Inst::Bin { .. }),
            "add of a call result must not fold"
        );
    }

    /// Optimized and unoptimized builds of a benchmark behave identically.
    #[test]
    fn optimization_preserves_target_semantics() {
        use vmos::{CallResult, CovMap, HostCtx, Machine, Os};
        let t = targets_sample();
        let mut opt = t.clone();
        let mut pm = crate::manager::PassManager::new();
        pm.add(ConstFoldPass).add(DeadBlockPass);
        pm.run(&mut opt).unwrap();

        let run = |m: &Module| {
            let mut os = Os::new();
            os.fs.write_file(
                "/fuzz/input",
                b"GIF89a\x04\x00\x04\x00\x00\x00\x00;".to_vec(),
            );
            let (mut p, _) = os.spawn(m);
            let mut cov = CovMap::new();
            let mut ctx = HostCtx::new(&mut os, &mut cov);
            Machine::new(m)
                .call(&mut p, &mut ctx, "main", &[0, 0], 3_000_000)
                .result
        };
        let (a, b) = (run(&t), run(&opt));
        match (&a, &b) {
            (CallResult::Return(x), CallResult::Return(y)) => assert_eq!(x, y),
            (CallResult::Exited(x), CallResult::Exited(y)) => assert_eq!(x, y),
            _ => assert_eq!(a, b),
        }
    }

    fn targets_sample() -> Module {
        minic::compile(
            "gifish",
            r#"
            global blocks;
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(1); }
                var buf[64];
                var n = fread(buf, 1, 64, f);
                fclose(f);
                var limit = 4 * 16 - 60;      // folds to 4
                if (n < limit) { exit(2); }
                var i = 0;
                while (i < n) {
                    if (load8(buf + i) == ';') { blocks = blocks + 1; }
                    i = i + 1;
                }
                return blocks;
            }
        "#,
        )
        .unwrap()
    }
}
