//! # passes — the ClosureX compiler passes
//!
//! The FIR re-implementation of the paper's five LLVM passes (Table 3):
//!
//! | Pass                | Functionality                                            |
//! |---------------------|----------------------------------------------------------|
//! | [`RenameMainPass`]  | rename target's `main` so the harness owns the real one  |
//! | [`HeapPass`]        | inject tracking of the target's heap memory              |
//! | [`FilePass`]        | inject tracking of the target's file descriptors         |
//! | [`GlobalPass`]      | move writable globals into `closure_global_section`      |
//! | [`ExitPass`]        | rename the target's `exit` calls to the harness hook     |
//!
//! plus the shared [`CoveragePass`] (the Sanitizer-Coverage-guard analog used
//! by *both* ClosureX and the AFL++ baseline, per the paper's evaluation
//! setup) and a [`PassManager`] that verifies the module after every pass.
//!
//! ```
//! use passes::{PassManager, pipelines};
//! let mut module = fir::Module::new("demo");
//! // ... build a target with a `main` ...
//! # let mut f = fir::builder::ModuleBuilder::new("demo");
//! # let mut fb = f.function("main"); fb.ret(None); fb.finish();
//! # module = f.finish();
//! let mut pm = pipelines::closurex_pipeline();
//! let report = pm.run(&mut module).unwrap();
//! assert!(module.function("target_main").is_some());
//! assert!(report.iter().any(|r| r.pass == "RenameMainPass"));
//! ```

pub mod coverage;
pub mod exit_pass;
pub mod file_pass;
pub mod global_pass;
pub mod heap_pass;
pub mod manager;
pub mod optimize;
pub mod pipelines;
pub mod rename_main;

pub use coverage::CoveragePass;
pub use exit_pass::ExitPass;
pub use file_pass::FilePass;
pub use global_pass::GlobalPass;
pub use heap_pass::HeapPass;
pub use manager::{ModulePass, PassError, PassManager, PassReport};
pub use optimize::{ConstFoldPass, DeadBlockPass};
pub use rename_main::RenameMainPass;

/// Name the harness calls after `RenameMainPass` runs.
pub const TARGET_MAIN: &str = "target_main";
