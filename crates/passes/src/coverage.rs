//! `CoveragePass` — Sanitizer-Coverage-guard-style edge instrumentation.
//!
//! Inserts `__cov_edge(block_id)` at the top of every basic block. The
//! runtime applies the AFL transform (`map[id ^ prev]++; prev = id >> 1`),
//! giving hitcount edge coverage. Both ClosureX and the AFL++ baseline are
//! instrumented with *this same pass*, so throughput/coverage comparisons
//! isolate the execution mechanism, exactly as in the paper's evaluation
//! setup (§5.3).

use fir::{Inst, Module, Operand};

use crate::manager::{ModulePass, PassError, PassReport};

/// Name of the runtime coverage probe.
pub const COV_EDGE: &str = "__cov_edge";

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoveragePass;

/// Deterministic 16-bit block id from function name + block index
/// (FNV-1a), mimicking the compile-time random guards SanCov assigns.
pub fn block_guard_id(func: &str, block_idx: u32) -> u16 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in func.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= u64::from(block_idx);
    h = h.wrapping_mul(0x100000001b3);
    (h ^ (h >> 16) ^ (h >> 32)) as u16
}

impl ModulePass for CoveragePass {
    fn name(&self) -> &'static str {
        "CoveragePass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut guards = 0;
        for f in &mut module.functions {
            let fname = f.name.clone();
            for (bi, b) in f.blocks.iter_mut().enumerate() {
                let already = b.insts.first().is_some_and(|i| i.is_call_to(COV_EDGE));
                if already {
                    continue;
                }
                let id = block_guard_id(&fname, bi as u32);
                b.insts.insert(
                    0,
                    Inst::Call {
                        dst: None,
                        callee: COV_EDGE.to_string(),
                        args: vec![Operand::Imm(i64::from(id))],
                    },
                );
                guards += 1;
            }
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: guards,
            summary: format!("inserted {guards} coverage guards"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Operand as Op;

    #[test]
    fn instruments_every_block_once() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function_with_params("main", 1);
        let t = f.new_block();
        let e = f.new_block();
        f.cond_br(Op::Reg(f.param(0)), t, e);
        f.switch_to(t);
        f.ret(None);
        f.switch_to(e);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let r = CoveragePass.run(&mut m).unwrap();
        assert_eq!(r.changes, 3);
        for b in &m.function("main").unwrap().blocks {
            assert!(b.insts[0].is_call_to(COV_EDGE));
        }
        // Idempotent: second run inserts nothing.
        assert_eq!(CoveragePass.run(&mut m).unwrap().changes, 0);
    }

    #[test]
    fn guard_ids_are_deterministic_and_spread() {
        assert_eq!(block_guard_id("f", 0), block_guard_id("f", 0));
        assert_ne!(block_guard_id("f", 0), block_guard_id("f", 1));
        assert_ne!(block_guard_id("f", 0), block_guard_id("g", 0));
        // Rough dispersion check: 100 blocks over 10 functions, mostly
        // distinct ids.
        let mut ids = std::collections::HashSet::new();
        for f in 0..10 {
            for b in 0..10 {
                ids.insert(block_guard_id(&format!("fn{f}"), b));
            }
        }
        assert!(ids.len() > 95, "ids too collision-heavy: {}", ids.len());
    }
}
