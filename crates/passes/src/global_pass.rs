//! `GlobalPass` — move writable globals into `closure_global_section`
//! (paper §4.2, Fig. 3).
//!
//! The pass iterates over every global in the module and checks the
//! `is_const` flag (the `GlobalVariable::isConstant` analog). Every
//! *potentially modifiable* global is re-sectioned into
//! [`fir::Section::ClosureGlobal`] (the `setSection` analog), producing one
//! contiguous region the harness can snapshot before the loop and restore
//! after every test case (Fig. 4). Constant data stays put and is never
//! copied.

use fir::{Module, Section};

use crate::manager::{ModulePass, PassError, PassReport};

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalPass;

impl ModulePass for GlobalPass {
    fn name(&self) -> &'static str {
        "GlobalPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut moved = 0;
        let mut bytes = 0;
        for g in &mut module.globals {
            if g.is_const {
                continue;
            }
            if g.section != Section::ClosureGlobal {
                g.section = Section::ClosureGlobal;
                moved += 1;
                bytes += g.size;
            }
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: moved,
            summary: format!(
                "moved {moved} writable globals ({bytes} bytes) to closure_global_section"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Global;

    #[test]
    fn moves_writable_leaves_const() {
        let mut mb = ModuleBuilder::new("t");
        mb.global(Global::constant("magic", vec![1, 2, 3, 4]));
        mb.global(Global::with_init("counter", vec![0; 8]));
        mb.global(Global::zeroed("table", 256));
        let mut m = mb.finish();
        let r = GlobalPass.run(&mut m).unwrap();
        assert_eq!(r.changes, 2);
        assert_eq!(m.global("magic").unwrap().section, Section::Rodata);
        assert_eq!(m.global("counter").unwrap().section, Section::ClosureGlobal);
        assert_eq!(m.global("table").unwrap().section, Section::ClosureGlobal);
    }

    #[test]
    fn idempotent() {
        let mut mb = ModuleBuilder::new("t");
        mb.global(Global::zeroed("g", 8));
        let mut m = mb.finish();
        assert_eq!(GlobalPass.run(&mut m).unwrap().changes, 1);
        assert_eq!(GlobalPass.run(&mut m).unwrap().changes, 0);
    }

    #[test]
    fn reports_moved_bytes() {
        let mut mb = ModuleBuilder::new("t");
        mb.global(Global::zeroed("a", 100));
        mb.global(Global::zeroed("b", 28));
        let mut m = mb.finish();
        let r = GlobalPass.run(&mut m).unwrap();
        assert!(r.summary.contains("128 bytes"), "{}", r.summary);
    }
}
