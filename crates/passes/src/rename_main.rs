//! `RenameMainPass` — rename the target's `main` to `target_main` (paper
//! §4.1).
//!
//! The ClosureX harness provides its own `main` containing the persistent
//! fuzzing loop; the renamed target entry point is what the loop calls once
//! per test case. This is the FIR analog of calling `setName` on the
//! `main` `Function` in LLVM IR.

use fir::Module;

use crate::manager::{ModulePass, PassError, PassReport};
use crate::TARGET_MAIN;

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenameMainPass;

impl ModulePass for RenameMainPass {
    fn name(&self) -> &'static str {
        "RenameMainPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        if module.function(TARGET_MAIN).is_some() {
            return Err(PassError::Precondition {
                pass: self.name(),
                message: format!("module already defines {TARGET_MAIN}"),
            });
        }
        let Some(f) = module.function_mut("main") else {
            return Err(PassError::Precondition {
                pass: self.name(),
                message: "module has no main function".into(),
            });
        };
        f.name = TARGET_MAIN.to_string();
        // Direct recursive calls to main (rare but legal C) must follow.
        let rewritten = module.replace_callee("main", TARGET_MAIN);
        Ok(PassReport {
            pass: self.name().into(),
            changes: 1 + rewritten,
            summary: format!("renamed main -> {TARGET_MAIN} ({rewritten} call sites)"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Operand;

    #[test]
    fn renames_main_and_call_sites() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.call_void("main", vec![Operand::Imm(0)]); // self-recursion
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let r = RenameMainPass.run(&mut m).unwrap();
        assert!(m.function("main").is_none());
        assert!(m.function(TARGET_MAIN).is_some());
        assert_eq!(r.changes, 2);
        assert_eq!(m.call_site_histogram().get(TARGET_MAIN), Some(&1));
    }

    #[test]
    fn missing_main_is_error() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("helper");
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        assert!(matches!(
            RenameMainPass.run(&mut m),
            Err(PassError::Precondition { .. })
        ));
    }

    #[test]
    fn double_application_is_error() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        RenameMainPass.run(&mut m).unwrap();
        assert!(RenameMainPass.run(&mut m).is_err());
    }
}
