//! Canonical pass pipelines.
//!
//! * [`closurex_pipeline`] — the full ClosureX instrumentation (the five
//!   Table 3 passes) plus the shared coverage pass.
//! * [`baseline_pipeline`] — coverage only: what `afl-clang-fast`-style
//!   compilation gives the AFL++ forkserver baseline.

use crate::coverage::CoveragePass;
use crate::exit_pass::ExitPass;
use crate::file_pass::FilePass;
use crate::global_pass::GlobalPass;
use crate::heap_pass::HeapPass;
use crate::manager::PassManager;
use crate::rename_main::RenameMainPass;

/// The full ClosureX pipeline.
///
/// Coverage runs *first* so guard ids are computed from the original
/// function names — a ClosureX build and a baseline build of the same
/// target then produce directly comparable edge traces, which the
/// control-flow-equivalence checker (paper §6.1.4) relies on.
pub fn closurex_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(CoveragePass)
        .add(RenameMainPass)
        .add(ExitPass)
        .add(HeapPass)
        .add(FilePass)
        .add(GlobalPass);
    pm
}

/// Coverage-only instrumentation for the AFL++ baseline.
pub fn baseline_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.add(CoveragePass);
    pm
}

/// Table 3 of the paper: pass name → functionality.
pub fn table3() -> Vec<(&'static str, &'static str)> {
    vec![
        ("RenameMainPass", "Rename target's main"),
        ("HeapPass", "Inject tracking of target's heap memory"),
        ("FilePass", "Inject tracking of target's file descriptors"),
        (
            "GlobalPass",
            "Move target's writable globals into a separate memory section",
        ),
        ("ExitPass", "Rename target's exit calls"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::{Global, Operand, Section};

    fn target() -> fir::Module {
        let mut mb = ModuleBuilder::new("t");
        mb.global(Global::constant("msg", b"hi\0".to_vec()));
        mb.global(Global::zeroed("state", 64));
        let mut f = mb.function("main");
        let p = f.call("malloc", vec![Operand::Imm(32)]);
        f.call_void("free", vec![Operand::Reg(p)]);
        f.call_void("exit", vec![Operand::Imm(0)]);
        f.unreachable();
        f.finish();
        mb.finish()
    }

    #[test]
    fn closurex_pipeline_applies_all_transforms() {
        let mut m = target();
        let reports = closurex_pipeline().run(&mut m).unwrap();
        assert_eq!(reports.len(), 6);
        assert!(m.function("target_main").is_some());
        let h = m.call_site_histogram();
        assert!(h.contains_key("closurex_malloc"));
        assert!(h.contains_key("closurex_free"));
        assert!(h.contains_key("closurex_exit_hook"));
        assert!(h.contains_key("__cov_edge"));
        assert_eq!(m.global("state").unwrap().section, Section::ClosureGlobal);
        assert_eq!(m.global("msg").unwrap().section, Section::Rodata);
    }

    #[test]
    fn baseline_pipeline_only_adds_coverage() {
        let mut m = target();
        baseline_pipeline().run(&mut m).unwrap();
        assert!(m.function("main").is_some(), "main untouched");
        let h = m.call_site_histogram();
        assert!(h.contains_key("__cov_edge"));
        assert!(h.contains_key("malloc"), "malloc untouched");
        assert!(h.contains_key("exit"), "exit untouched");
    }

    #[test]
    fn table3_lists_five_passes() {
        assert_eq!(table3().len(), 5);
    }
}
