//! `FilePass` — inject file-descriptor tracking (paper §4.2).
//!
//! Replaces `fopen`/`fclose` with the ClosureX wrappers, which record open
//! handles in the runtime's file map. Between test cases the harness closes
//! any handle the target leaked; handles opened during the initialization
//! phase are *rewound* (`fseek` to 0) instead of closed and reopened — the
//! paper's optimization for initialization-time handles.

use fir::Module;

use crate::manager::{ModulePass, PassError, PassReport};

/// The rewrites this pass performs.
pub const FILE_REWRITES: [(&str, &str); 2] =
    [("fopen", "closurex_fopen"), ("fclose", "closurex_fclose")];

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePass;

impl ModulePass for FilePass {
    fn name(&self) -> &'static str {
        "FilePass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut n = 0;
        for (from, to) in FILE_REWRITES {
            n += module.replace_callee(from, to);
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: n,
            summary: format!("hooked {n} fopen/fclose call sites"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Operand;

    #[test]
    fn rewrites_fopen_fclose_only() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let h = f.call("fopen", vec![Operand::Imm(0), Operand::Imm(0)]);
        f.call(
            "fread",
            vec![
                Operand::Imm(0),
                Operand::Imm(1),
                Operand::Imm(1),
                Operand::Reg(h),
            ],
        );
        f.call_void("fclose", vec![Operand::Reg(h)]);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let r = FilePass.run(&mut m).unwrap();
        assert_eq!(r.changes, 2);
        let hist = m.call_site_histogram();
        assert_eq!(hist.get("closurex_fopen"), Some(&1));
        assert_eq!(hist.get("closurex_fclose"), Some(&1));
        assert_eq!(hist.get("fread"), Some(&1), "reads are not hooked");
    }
}
