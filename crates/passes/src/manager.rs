//! Pass infrastructure: the [`ModulePass`] trait, per-pass [`PassReport`]s,
//! and a [`PassManager`] that verifies the module after every transform
//! (the `opt -verify-each` discipline).

use std::fmt;

use fir::verify::{verify_module, VerifyError};
use fir::Module;
use serde::{Deserialize, Serialize};

/// Statistics a pass reports about what it changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassReport {
    /// Pass name.
    pub pass: String,
    /// Number of sites/symbols rewritten or moved.
    pub changes: usize,
    /// Human-readable summary.
    pub summary: String,
}

/// A transform over a whole [`Module`] — the LLVM `ModulePass` analog.
pub trait ModulePass {
    /// Pass name (stable; used in reports and Table 3 output).
    fn name(&self) -> &'static str;

    /// Run the transform.
    ///
    /// # Errors
    /// A pass may fail when its precondition does not hold (e.g.
    /// `RenameMainPass` on a module without `main`).
    fn run(&self, module: &mut Module) -> Result<PassReport, PassError>;
}

/// Why a pass or pipeline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// A pass precondition did not hold.
    Precondition {
        /// The failing pass.
        pass: &'static str,
        /// What was missing.
        message: String,
    },
    /// The module no longer verifies after a pass ran.
    BrokenModule {
        /// The offending pass.
        pass: &'static str,
        /// The verifier error.
        error: VerifyError,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Precondition { pass, message } => {
                write!(f, "{pass}: precondition failed: {message}")
            }
            PassError::BrokenModule { pass, error } => {
                write!(f, "{pass}: broke the module: {error}")
            }
        }
    }
}

impl std::error::Error for PassError {}

/// Runs a sequence of passes, verifying after each one.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PassManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pass (builder style).
    pub fn add(&mut self, pass: impl ModulePass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run all passes in order.
    ///
    /// # Errors
    /// Stops at the first [`PassError`]; the module may be partially
    /// transformed in that case.
    pub fn run(&mut self, module: &mut Module) -> Result<Vec<PassReport>, PassError> {
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let report = pass.run(module)?;
            verify_module(module).map_err(|error| PassError::BrokenModule {
                pass: pass.name(),
                error,
            })?;
            reports.push(report);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingPass;
    impl ModulePass for CountingPass {
        fn name(&self) -> &'static str {
            "CountingPass"
        }
        fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
            Ok(PassReport {
                pass: self.name().into(),
                changes: module.functions.len(),
                summary: "counted".into(),
            })
        }
    }

    struct BreakingPass;
    impl ModulePass for BreakingPass {
        fn name(&self) -> &'static str {
            "BreakingPass"
        }
        fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
            // Introduce a duplicate function name → verifier must catch it.
            if let Some(f) = module.functions.first().cloned() {
                module.functions.push(f);
            }
            Ok(PassReport {
                pass: self.name().into(),
                changes: 1,
                summary: "broke it".into(),
            })
        }
    }

    fn module_with_main() -> Module {
        let mut mb = fir::builder::ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn runs_passes_in_order() {
        let mut pm = PassManager::new();
        pm.add(CountingPass).add(CountingPass);
        let mut m = module_with_main();
        let reports = pm.run(&mut m).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(pm.pass_names(), vec!["CountingPass", "CountingPass"]);
    }

    #[test]
    fn verifier_catches_broken_pass() {
        let mut pm = PassManager::new();
        pm.add(BreakingPass);
        let mut m = module_with_main();
        let err = pm.run(&mut m).unwrap_err();
        assert!(matches!(
            err,
            PassError::BrokenModule {
                pass: "BreakingPass",
                ..
            }
        ));
    }
}
