//! `HeapPass` — inject heap tracking (paper §4.2, Fig. 5).
//!
//! Replaces every call to the `malloc` family (`malloc`, `calloc`,
//! `realloc`) and `free` with the ClosureX wrappers. At runtime the
//! wrappers maintain the chunk map (pointer → size); between test cases the
//! harness frees every pointer still present — the target's leaks — so the
//! heap is clean for the next input.

use fir::Module;

use crate::manager::{ModulePass, PassError, PassReport};

/// The rewrites this pass performs.
pub const HEAP_REWRITES: [(&str, &str); 4] = [
    ("malloc", "closurex_malloc"),
    ("calloc", "closurex_calloc"),
    ("realloc", "closurex_realloc"),
    ("free", "closurex_free"),
];

/// See module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapPass;

impl ModulePass for HeapPass {
    fn name(&self) -> &'static str {
        "HeapPass"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, PassError> {
        let mut n = 0;
        for (from, to) in HEAP_REWRITES {
            n += module.replace_callee(from, to);
        }
        Ok(PassReport {
            pass: self.name().into(),
            changes: n,
            summary: format!("hooked {n} malloc-family call sites"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::ModuleBuilder;
    use fir::Operand;

    #[test]
    fn rewrites_whole_family() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        let p = f.call("malloc", vec![Operand::Imm(8)]);
        let q = f.call("calloc", vec![Operand::Imm(2), Operand::Imm(8)]);
        let r = f.call("realloc", vec![Operand::Reg(p), Operand::Imm(16)]);
        f.call_void("free", vec![Operand::Reg(q)]);
        f.call_void("free", vec![Operand::Reg(r)]);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        let rep = HeapPass.run(&mut m).unwrap();
        assert_eq!(rep.changes, 5);
        let h = m.call_site_histogram();
        assert_eq!(h.get("closurex_malloc"), Some(&1));
        assert_eq!(h.get("closurex_calloc"), Some(&1));
        assert_eq!(h.get("closurex_realloc"), Some(&1));
        assert_eq!(h.get("closurex_free"), Some(&2));
        for (orig, _) in HEAP_REWRITES {
            assert_eq!(h.get(orig), None, "{orig} must be fully rewritten");
        }
    }

    #[test]
    fn idempotent() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main");
        f.call("malloc", vec![Operand::Imm(8)]);
        f.ret(None);
        f.finish();
        let mut m = mb.finish();
        HeapPass.run(&mut m).unwrap();
        let second = HeapPass.run(&mut m).unwrap();
        assert_eq!(second.changes, 0);
    }
}
