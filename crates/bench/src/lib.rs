//! # bench — experiment harnesses
//!
//! Shared machinery for the table/figure regenerator binaries (see
//! `DESIGN.md` §4 for the experiment index). Every binary prints a
//! markdown table shaped like the paper's and writes a JSON record under
//! `results/`.
//!
//! Scale note: the paper runs 5×24h Azure trials per configuration; this
//! reproduction runs 5 simulated-cycle-budget trials per configuration
//! (default 20M cycles ≈ 1 simulated second, configurable via the
//! `CLOSUREX_BUDGET` environment variable). Absolute counts are therefore
//! smaller; the paper's *shape* — who wins, by what factor, where
//! significance lands — is what the harness reproduces.

use aflrs::mwu::mann_whitney_u;
use aflrs::{Campaign, CampaignConfig, CampaignResult};
use closurex::executor::{Executor, ExecutorFactory};
use closurex::forkserver::ForkServerExecutor;
use closurex::fresh::FreshProcessExecutor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::naive::NaivePersistentExecutor;
use closurex::resilience::HarnessError;
use serde::Serialize;
use targets::TargetSpec;

/// Number of trials per configuration (the paper's 5).
pub const TRIALS: u64 = 5;

/// Default per-trial cycle budget.
pub const DEFAULT_BUDGET: u64 = 20_000_000;

/// Which execution mechanism a trial uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Spawn + exec per test case.
    Fresh,
    /// AFL++ forkserver baseline.
    ForkServer,
    /// Persistent loop with no restoration.
    NaivePersistent,
    /// ClosureX.
    ClosureX,
}

impl Mechanism {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Fresh => "fresh-process",
            Mechanism::ForkServer => "AFL++ (forkserver)",
            Mechanism::NaivePersistent => "naive-persistent",
            Mechanism::ClosureX => "ClosureX",
        }
    }

    /// Stable wire tag for worker specs (see
    /// [`MechanismFactory::worker_spec`]).
    pub fn wire_tag(self) -> u8 {
        match self {
            Mechanism::Fresh => 0,
            Mechanism::ForkServer => 1,
            Mechanism::NaivePersistent => 2,
            Mechanism::ClosureX => 3,
        }
    }

    /// Inverse of [`Mechanism::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Mechanism::Fresh,
            1 => Mechanism::ForkServer,
            2 => Mechanism::NaivePersistent,
            3 => Mechanism::ClosureX,
            _ => return None,
        })
    }

    /// Build an executor over an already-compiled module.
    ///
    /// # Errors
    /// [`HarnessError::BootFailed`] when instrumentation fails (bundled
    /// targets always pass).
    pub fn build(self, module: &fir::Module) -> Result<Box<dyn Executor + Send>, HarnessError> {
        let boot = |e: passes::PassError| HarnessError::BootFailed(e.to_string());
        Ok(match self {
            Mechanism::Fresh => Box::new(FreshProcessExecutor::new(module).map_err(boot)?),
            Mechanism::ForkServer => Box::new(ForkServerExecutor::new(module).map_err(boot)?),
            Mechanism::NaivePersistent => {
                Box::new(NaivePersistentExecutor::new(module).map_err(boot)?)
            }
            Mechanism::ClosureX => {
                Box::new(ClosureXExecutor::new(module, ClosureXConfig::default()).map_err(boot)?)
            }
        })
    }

    /// Build the executor for a target.
    ///
    /// # Panics
    /// Panics if instrumentation fails (bundled targets always pass).
    pub fn executor(self, target: &TargetSpec) -> Box<dyn Executor + Send> {
        self.build(&target.module()).expect("instrument")
    }
}

/// An [`ExecutorFactory`] over a (mechanism, target) pair — what sharded
/// campaigns hand to [`aflrs::Campaign::factory`] so every lane gets its
/// own executor instance. Compiles the target once at construction; each
/// [`ExecutorFactory::build`] instruments a fresh executor over it.
pub struct MechanismFactory {
    mechanism: Mechanism,
    target_name: &'static str,
    module: fir::Module,
}

impl MechanismFactory {
    /// Compile `target` and wrap it for `mechanism`.
    pub fn new(mechanism: Mechanism, target: &TargetSpec) -> Self {
        MechanismFactory {
            mechanism,
            target_name: target.name,
            module: target.module(),
        }
    }
}

impl ExecutorFactory for MechanismFactory {
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError> {
        self.mechanism.build(&self.module)
    }

    /// Warm over the module *as the executor will decode it*: every
    /// executor runs its instrumentation pipeline on a clone before
    /// lowering, so the cache/sidecar key is the **instrumented**
    /// module's fingerprint — warming the raw module would prime a key
    /// nothing ever reads.
    fn warm_decoded_image(
        &self,
        sidecar_dir: Option<&std::path::Path>,
    ) -> Option<vmos::WarmSource> {
        let mut m = self.module.clone();
        let mut pipeline = match self.mechanism {
            Mechanism::ClosureX => passes::pipelines::closurex_pipeline(),
            _ => passes::pipelines::baseline_pipeline(),
        };
        pipeline.run(&mut m).ok()?;
        Some(vmos::DecodedImage::warm_with_sidecar(&m, sidecar_dir))
    }

    /// Process-isolated campaigns ship `(mechanism tag, target name)` to
    /// each worker; the worker's [`factory_from_spec`] recompiles the
    /// bundled target by name — bit-identical modules on both sides.
    fn worker_spec(&self) -> Option<Vec<u8>> {
        let mut w = vmos::Writer::new();
        w.put_u8(self.mechanism.wire_tag());
        w.put_str(self.target_name);
        Some(w.into_bytes())
    }
}

/// Rebuild the factory a [`MechanismFactory::worker_spec`] describes — the
/// parser a `proc` worker entrypoint hands to
/// [`aflrs::worker_main_hook`].
///
/// # Errors
/// A human-readable message when the spec bytes are malformed, name an
/// unknown mechanism tag, or name a target this build does not bundle.
pub fn factory_from_spec(spec: &[u8]) -> Result<Box<dyn ExecutorFactory>, String> {
    let mut r = vmos::Reader::new(spec);
    let tag = r.get_u8().map_err(|e| format!("bad worker spec: {e:?}"))?;
    let name = r
        .get_str()
        .map_err(|e| format!("bad worker spec: {e:?}"))?;
    if !r.is_empty() {
        return Err("bad worker spec: trailing bytes".to_string());
    }
    let mechanism =
        Mechanism::from_wire_tag(tag).ok_or_else(|| format!("unknown mechanism tag {tag}"))?;
    let target =
        targets::by_name(&name).ok_or_else(|| format!("unknown target {name:?} in worker spec"))?;
    Ok(Box::new(MechanismFactory::new(mechanism, target)))
}

/// [`aflrs::SpecResolver`] over the bundled targets: resolves the same
/// `(mechanism tag, target name)` wire spec as [`factory_from_spec`], so a
/// campaign service can be restarted by any binary that links this crate
/// and get byte-identical factories back.
pub struct MechanismResolver;

impl aflrs::SpecResolver for MechanismResolver {
    fn resolve(
        &self,
        spec: &[u8],
    ) -> Result<Box<dyn ExecutorFactory + Send + Sync>, String> {
        let mut r = vmos::Reader::new(spec);
        let tag = r.get_u8().map_err(|e| format!("bad factory spec: {e:?}"))?;
        let name = r
            .get_str()
            .map_err(|e| format!("bad factory spec: {e:?}"))?;
        if !r.is_empty() {
            return Err("bad factory spec: trailing bytes".to_string());
        }
        let mechanism = Mechanism::from_wire_tag(tag)
            .ok_or_else(|| format!("unknown mechanism tag {tag}"))?;
        let target = targets::by_name(&name)
            .ok_or_else(|| format!("unknown target {name:?} in factory spec"))?;
        Ok(Box::new(MechanismFactory::new(mechanism, target)))
    }
}

/// Per-trial budget: `CLOSUREX_BUDGET` env var or [`DEFAULT_BUDGET`].
pub fn budget() -> u64 {
    std::env::var("CLOSUREX_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BUDGET)
}

/// Run [`TRIALS`] campaigns of `mechanism` on `target`, fanned out across
/// one OS thread per trial.
///
/// Trials are fully independent — each builds its own executor and derives
/// its RNG from `trial` alone — so parallelism cannot change any result.
/// Handles are joined in spawn order, so the returned vector is in trial
/// order regardless of which worker finishes first.
///
/// A trial that panics (a wedged executor, a bad target) is dropped with a
/// note on stderr rather than killing the whole table run — losing one
/// sample beats losing the evening's sweep.
pub fn run_trials(target: &TargetSpec, mechanism: Mechanism, budget: u64) -> Vec<CampaignResult> {
    // The engine switch is thread-local: carry the caller's choice (e.g.
    // exec_throughput's reference runs) into every worker.
    let reference = vmos::reference_engine();
    let decode_opt = vmos::decode_opt();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..TRIALS)
            .map(|trial| {
                s.spawn(move || {
                    vmos::set_reference_engine(reference);
                    vmos::set_decode_opt(decode_opt);
                    let cfg = CampaignConfig {
                        budget_cycles: budget,
                        seed: 0xC0FFEE + trial * 7919,
                        deterministic_stage: true,
                        stop_after_crashes: 0,
                        ..CampaignConfig::default()
                    };
                    run_trial_catching(target, mechanism, &cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().ok().flatten())
            .collect()
    })
}

/// Run one campaign, converting a panic anywhere in the executor or
/// campaign loop into `None`.
pub fn run_trial_catching(
    target: &TargetSpec,
    mechanism: Mechanism,
    cfg: &CampaignConfig,
) -> Option<CampaignResult> {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ex = mechanism.executor(target);
        let seeds = (target.seeds)();
        Campaign::new(&seeds, cfg)
            .executor(ex.as_mut())
            .run()
            .expect("plain campaign config is always valid")
            .finished()
            .expect("no kill configured")
    }));
    match res {
        Ok(r) => Some(r),
        Err(_) => {
            eprintln!(
                "(trial dropped: {} on {} panicked, seed {})",
                mechanism.name(),
                target.name,
                cfg.seed
            );
            None
        }
    }
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Two-sided Mann-Whitney p for two result samples under `metric`.
pub fn p_value(
    a: &[CampaignResult],
    b: &[CampaignResult],
    metric: impl Fn(&CampaignResult) -> f64,
) -> f64 {
    let xa: Vec<f64> = a.iter().map(&metric).collect();
    let xb: Vec<f64> = b.iter().map(&metric).collect();
    mann_whitney_u(&xa, &xb)
}

/// Total CFG edges of a target (denominator of the coverage percentage).
pub fn total_cfg_edges(target: &TargetSpec) -> usize {
    let module = target.module();
    module
        .functions
        .iter()
        .map(|f| fir::cfg::edges(f).len().max(1))
        .sum()
}

/// Write a JSON report under `results/`.
pub fn write_report<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        eprintln!("(wrote {})", path.display());
    }
}

/// Pull a bare number out of a flat JSON object by key — the deserializer
/// side of serde is stubbed in this build, so floor files are parsed by
/// string search.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("| {} |\n", headers.join(" | ")));
    s.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for r in rows {
        s.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanisms_build_for_every_target() {
        for t in targets::all().into_iter().take(2) {
            for m in [
                Mechanism::Fresh,
                Mechanism::ForkServer,
                Mechanism::NaivePersistent,
                Mechanism::ClosureX,
            ] {
                let mut ex = m.executor(t);
                let out = ex.run(&(t.seeds)()[0]);
                assert!(out.total_cycles() > 0, "{} on {}", m.name(), t.name);
            }
        }
    }

    #[test]
    fn markdown_renders() {
        let s = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    fn cfg_edge_totals_positive() {
        for t in targets::all() {
            assert!(total_cfg_edges(t) > 10, "{}", t.name);
        }
    }
}
