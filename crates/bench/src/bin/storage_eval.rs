//! **Storage fault-plane evaluation**: the ALICE-style crash-consistency
//! gauntlet over the checkpoint storage plane. A deterministic disk fault
//! — ENOSPC, EIO, a short write, a machine death at the I/O boundary, a
//! lost rename, or silent bitrot — is injected at a grid of I/O operation
//! boundaries on every storage stream (the coordinator plus each lane
//! journal), on **both isolation modes** (in-process sharded and
//! lane-per-process).
//!
//! Every cell must land in a sanctioned state:
//!
//! * transient kinds retry (seeded backoff) or degrade with a typed
//!   `StorageDegradation`, and the campaign finishes bit-identically;
//! * crash kinds kill the machine (or just the worker, whose supervisor
//!   contains it), and a fault-free resume reproduces the uninterrupted
//!   result exactly — falling back to a fresh start only when the crash
//!   predates the first durable commit;
//! * bitrot cells run under a kill switch so the resume's scrub actually
//!   reads the rotted bytes back.
//!
//! Zero raw `io::Error` aborts, zero panics, zero silent data loss.
//!
//! Also measures the clean-path cost of routing all checkpoint I/O
//! through the storage plane: a clean checkpointed campaign vs the same
//! campaign with checkpointing off.
//!
//! Writes `results/BENCH_storage.json` (`_smoke` under `--smoke`). Smoke
//! mode gates the grid pass rate and the clean-path overhead ratio
//! against the checked-in floor (`results/BENCH_storage_floor.json`).

use aflrs::{
    Campaign, CampaignConfig, CampaignError, CampaignOutcome, CampaignResult, CheckpointConfig,
    Isolation,
};
use bench::{json_number, Mechanism, MechanismFactory};
use serde::Serialize;
use std::time::Instant;
use vmos::{DiskFaultKind, DiskFaultPlan};

const SMOKE_BUDGET: u64 = 3_000_000;
const LANES: usize = 2;
const EPOCHS: u64 = 2;

#[derive(Serialize)]
struct Cell {
    isolation: String,
    fault: String,
    stream: u64,
    op: u64,
    /// finished | killed+resumed | killed+restarted
    path: String,
    /// Did the injected fault observably fire in this cell?
    fired: bool,
    transient_faults: u64,
    degradations: usize,
    corrupt_snapshots: u64,
    snapshots_repaired: u64,
    torn_records: u64,
    sweep_warnings: u64,
    contained_worker_faults: u64,
    /// The gate: bit-identical to the unfaulted baseline outside the
    /// storage and supervision reports.
    identical: bool,
}

#[derive(Serialize)]
struct Aggregate {
    grid_cells: usize,
    fired_cells: usize,
    killed_cells: usize,
    degraded_cells: usize,
    grid_pass_rate: f64,
    plain_wall_secs: f64,
    checkpointed_wall_secs: f64,
    /// Clean checkpointed wall clock over clean unjournaled wall clock:
    /// what the storage plane costs when nothing goes wrong.
    clean_overhead_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    lanes: usize,
    sync_epochs: u64,
    cells: Vec<Cell>,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_supervision().sans_storage().sans_resume()).expect("result serializes")
}

struct Lab {
    factory: MechanismFactory,
    seeds: Vec<Vec<u8>>,
    cfg: CampaignConfig,
    iso: Isolation,
    scratch: std::path::PathBuf,
}

impl Lab {
    fn leg(
        &self,
        plan: Option<DiskFaultPlan>,
        ck: Option<&CheckpointConfig>,
        resume: bool,
    ) -> Result<CampaignOutcome, CampaignError> {
        let mut c = Campaign::new(&self.seeds, &self.cfg)
            .factory(&self.factory)
            .lanes(LANES)
            .sync_epochs(EPOCHS)
            .shards(2)
            .isolation(self.iso);
        if let Some(p) = plan {
            c = c.storage_faults(p);
        }
        if let Some(k) = ck {
            c = c.checkpoint(k.clone());
        }
        if resume {
            c.resume().map(|(out, _)| out)
        } else {
            c.run()
        }
    }

    fn dir(&self, tag: &str) -> CheckpointConfig {
        let d = self.scratch.join(tag);
        let _ = std::fs::remove_dir_all(&d);
        CheckpointConfig::new(d)
    }

    /// One grid cell under the ALICE recovery rules, judged against the
    /// unfaulted baseline fingerprint.
    fn cell(
        &self,
        kind: DiskFaultKind,
        stream: u64,
        op: u64,
        fires: u32,
        kill_at: Option<u64>,
        want: &str,
    ) -> Cell {
        let mut ck = self.dir(&format!("{}-{}-{stream}-{op}", self.tag(), kind.name()));
        ck.kill_after_execs = kill_at;
        let mut plan = DiskFaultPlan::at(stream, op, kind);
        plan.targeted[0].fires = fires;
        let first = self
            .leg(Some(plan), Some(&ck), false)
            .expect("a disk fault never surfaces as a raw error");
        ck.kill_after_execs = None;
        let (result, path) = match first {
            CampaignOutcome::Killed { .. } => match self.leg(None, Some(&ck), true) {
                Ok(out) => (
                    out.finished().expect("resume leg finishes"),
                    "killed+resumed",
                ),
                // Crash before the first durable commit: nothing to
                // resume from; a fresh start is the correct recovery.
                Err(_) => (
                    self.leg(None, Some(&ck), false)
                        .expect("fresh restart over crash debris")
                        .finished()
                        .expect("restart leg finishes"),
                    "killed+restarted",
                ),
            },
            finished => (finished.finished().expect("finished leg"), "finished"),
        };
        let _ = std::fs::remove_dir_all(&ck.dir);
        let st = &result.resilience.storage;
        let contained = result.resilience.supervision.faults_contained();
        let killed = path != "finished";
        Cell {
            isolation: self.tag().to_string(),
            fault: kind.name().to_string(),
            stream,
            op,
            path: path.to_string(),
            fired: killed
                || contained > 0
                || st.transient_faults > 0
                || st.sweep_warnings > 0
                || st.bitrot_injected > 0
                || st.corrupt_snapshots > 0
                || st.torn_records_dropped > 0
                || !st.degradations.is_empty(),
            transient_faults: st.transient_faults,
            degradations: st.degradations.len(),
            corrupt_snapshots: st.corrupt_snapshots,
            snapshots_repaired: st.snapshots_repaired,
            torn_records: st.torn_records_dropped,
            sweep_warnings: st.sweep_warnings,
            contained_worker_faults: contained,
            identical: fingerprint(&result) == want,
        }
    }

    fn tag(&self) -> &'static str {
        match self.iso {
            Isolation::Process => "process",
            _ => "in-process",
        }
    }
}

fn main() {
    // Hidden worker entrypoint: when the supervisor re-execs this binary
    // with `AFLRS_PROC_WORKER` set, serve the lane protocol and exit.
    aflrs::worker_main_hook(bench::factory_from_spec);

    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let mode = if smoke { "smoke" } else { "full" };
    // Ops per stream to probe. Streams are 0 (coordinator) and 1 + lane
    // (per-lane journals); later boundaries on a stream repeat the same
    // operation shapes (journal appends), so a bounded prefix covers
    // every distinct boundary kind while full mode pushes deeper.
    let inproc_ops = if smoke { 4u64 } else { 12 };
    let proc_ops = if smoke { 2u64 } else { 6 };
    let target = targets::by_name("giftext").expect("bundled target");
    println!(
        "storage_eval ({mode}): budget = {budget} cycles/campaign, \
         {LANES} lanes x {EPOCHS} epochs, streams 0..{}, \
         ops/stream = {inproc_ops} (in-process) / {proc_ops} (process)\n",
        LANES + 1
    );

    let scratch = std::env::temp_dir().join(format!("closurex-storage-eval-{}", std::process::id()));
    let mut cells: Vec<Cell> = Vec::new();
    let mut all_identical = true;
    let mut plain_secs = 0.0f64;
    let mut ck_secs = 0.0f64;

    for iso in [Isolation::InProcess, Isolation::Process] {
        let lab = Lab {
            factory: MechanismFactory::new(Mechanism::ClosureX, target),
            seeds: (target.seeds)(),
            cfg: CampaignConfig {
                budget_cycles: budget,
                seed: 0x5708A6E,
                deterministic_stage: true,
                stop_after_crashes: 0,
                ..CampaignConfig::default()
            },
            iso,
            scratch: scratch.clone(),
        };

        // Baselines: the unfaulted, uncheckpointed run is ground truth;
        // the unfaulted checkpointed run times the clean storage path
        // (and must itself be invisible). Warm-up settles decode caches.
        let _ = lab.leg(None, None, false).expect("warm-up");
        let start = Instant::now();
        let plain = lab
            .leg(None, None, false)
            .expect("plain run")
            .finished()
            .expect("no kill configured");
        let p_secs = start.elapsed().as_secs_f64();
        let want = fingerprint(&plain);
        let ck = lab.dir(&format!("{}-clean", lab.tag()));
        let start = Instant::now();
        let clean_ck = lab
            .leg(None, Some(&ck), false)
            .expect("checkpointed run")
            .finished()
            .expect("no kill configured");
        let c_secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&ck.dir);
        if fingerprint(&clean_ck) != want {
            all_identical = false;
            eprintln!("OVERHEAD DIVERGENCE ({}): checkpointing was not invisible", lab.tag());
        }
        assert!(
            clean_ck.resilience.storage.is_quiet(),
            "a fault-free run must report zero storage activity"
        );
        if iso == Isolation::InProcess {
            plain_secs = p_secs;
            ck_secs = c_secs;
        }
        eprintln!(
            "  {} / baseline: {} execs, plain {p_secs:.2}s, checkpointed {c_secs:.2}s",
            lab.tag(),
            plain.execs
        );

        // The kill switch for bitrot cells: rot lands silently, so the
        // run must die young enough that the resume still reads the
        // rotted generation back.
        let kill_at = (plain.execs / 2).max(1);
        let ops = if iso == Isolation::Process { proc_ops } else { inproc_ops };
        for kind in DiskFaultKind::ALL {
            for stream in 0..=(LANES as u64) {
                for op in 0..ops {
                    let kill = (kind == DiskFaultKind::Bitrot).then_some(kill_at);
                    let cell = lab.cell(kind, stream, op, 1, kill, &want);
                    if !cell.identical {
                        all_identical = false;
                        eprintln!(
                            "STORAGE DIVERGENCE: {} {} at (stream {stream}, op {op}) \
                             did not reproduce the unfaulted result",
                            lab.tag(),
                            kind.name()
                        );
                    }
                    cells.push(cell);
                }
            }
        }

        // The degradation ladder: permanently broken storage (fires far
        // past the retry budget) must take the typed in-memory exit on
        // every stream and still finish bit-identically.
        for kind in [
            DiskFaultKind::NoSpace,
            DiskFaultKind::Io,
            DiskFaultKind::ShortWrite,
        ] {
            for stream in 0..=(LANES as u64) {
                let cell = lab.cell(kind, stream, 0, 10, None, &want);
                if !cell.identical || cell.degradations + cell.sweep_warnings as usize == 0 {
                    all_identical = false;
                    eprintln!(
                        "DEGRADATION FAILURE: {} {} on stream {stream} did not take \
                         the typed exit (or diverged)",
                        lab.tag(),
                        kind.name()
                    );
                }
                cells.push(cell);
            }
        }
    }

    let _ = std::fs::remove_dir_all(&scratch);
    let fired = cells.iter().filter(|c| c.fired).count();
    let killed = cells.iter().filter(|c| c.path.starts_with("killed")).count();
    let degraded = cells.iter().filter(|c| c.degradations > 0).count();
    let passed = cells.iter().filter(|c| c.identical).count();
    let pass_rate = passed as f64 / cells.len().max(1) as f64;
    let overhead = ck_secs / plain_secs.max(1e-9);

    let table: Vec<Vec<String>> = cells
        .iter()
        .filter(|c| c.fired)
        .map(|c| {
            vec![
                c.isolation.clone(),
                c.fault.clone(),
                c.stream.to_string(),
                c.op.to_string(),
                c.path.clone(),
                c.degradations.to_string(),
                (c.corrupt_snapshots + c.torn_records).to_string(),
                if c.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Isolation",
                "Fault",
                "Stream",
                "Op",
                "Recovery path",
                "Degradations",
                "Scrubbed",
                "Identical",
            ],
            &table
        )
    );
    println!(
        "\nAggregate: {} cells ({fired} fired, {killed} killed, {degraded} degraded), \
         pass rate {pass_rate:.3}, clean-path overhead {overhead:.2}x",
        cells.len()
    );

    let agg = Aggregate {
        grid_cells: cells.len(),
        fired_cells: fired,
        killed_cells: killed,
        degraded_cells: degraded,
        grid_pass_rate: pass_rate,
        plain_wall_secs: plain_secs,
        checkpointed_wall_secs: ck_secs,
        clean_overhead_ratio: overhead,
    };
    let report_name = if smoke { "BENCH_storage_smoke" } else { "BENCH_storage" };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            lanes: LANES,
            sync_epochs: EPOCHS,
            cells,
            aggregate: agg,
        },
    );

    if !all_identical || pass_rate < 1.0 {
        eprintln!("FAIL: a storage-fault cell diverged from the unfaulted baseline");
        std::process::exit(1);
    }
    if smoke {
        let floor = std::fs::read_to_string("results/BENCH_storage_floor.json").ok();
        match floor.as_deref().and_then(|s| json_number(s, "grid_pass_rate")) {
            Some(f) if pass_rate < f => {
                eprintln!("FAIL: grid pass rate {pass_rate:.3} below the checked-in floor {f:.3}");
                std::process::exit(1);
            }
            Some(f) => println!("Floor check passed: pass rate {pass_rate:.3} >= {f:.3}."),
            None => eprintln!("(no grid_pass_rate floor found; skipping gate)"),
        }
        match floor
            .as_deref()
            .and_then(|s| json_number(s, "smoke_clean_overhead_ratio"))
        {
            Some(f) => {
                // Wall clock is noisy and the numerator is one campaign:
                // gate at twice the recorded ratio.
                let max = f * 2.0;
                if overhead > max {
                    eprintln!(
                        "FAIL: clean-path overhead {overhead:.2}x exceeds twice the checked-in \
                         ceiling {f:.2}x (maximum {max:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!("Floor check passed: overhead {overhead:.2}x <= 2x ceiling {f:.2}x.");
            }
            None => eprintln!("(no smoke_clean_overhead_ratio ceiling found; skipping gate)"),
        }
    }
}
