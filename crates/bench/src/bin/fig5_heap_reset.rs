//! Regenerates **Figure 5**: the ClosureX heap resetting procedure — the
//! chunk map before, during, and after a test-case execution.

use closurex::executor::Executor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};

fn main() {
    // A target that leaks: libbpf leaks str_buf/sym_buf on some paths.
    let src = r#"
        fn main() {
            var a = malloc(100);    // leaked
            var b = malloc(200);    // freed properly
            var c = malloc(50);     // leaked
            store8(a, 1); store8(b, 2); store8(c, 3);
            free(b);
            return 0;
        }
    "#;
    let module = minic::compile("leaky", src).expect("compiles");
    let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("instrument");
    println!("Figure 5: ClosureX heap resetting procedure\n");
    println!(
        "A) before execution: chunk map empty, heap live = {} bytes",
        ex.process().expect("live").heap.live_bytes()
    );
    let out = ex.run(b"x");
    let rs = ex.last_restore();
    println!("B) during execution: 3 mallocs tracked, 1 freed by the target (map holds 2)");
    println!(
        "C) after execution: harness swept {} leaked chunks; heap live = {} bytes",
        rs.leaked_chunks,
        ex.process().expect("live").heap.live_bytes()
    );
    assert_eq!(rs.leaked_chunks, 2);
    assert_eq!(ex.process().expect("live").heap.live_bytes(), 0);
    println!(
        "\nper-iteration restore cost: {} cycles (exec was {} cycles)",
        rs.cycles, out.exec_cycles
    );
    println!("After 1000 iterations the naive loop would hold ~150 KB of leaks; ClosureX holds 0.");
}
