//! **Process-isolation evaluation**: prove that lane-per-process
//! campaigns (`Isolation::Process`) reproduce the in-process engine's
//! results bit-identically, and that a worker process dying in *any* ugly
//! way — `abort()`, an OOM-kill exit, a wedged stall, a corrupted frame on
//! the protocol pipe — at any `(lane, epoch)` grid position is contained,
//! recovered, and erased from the campaign result.
//!
//! Scenarios per target:
//!
//! 1. **Engine identity** — the unfaulted process-mode campaign must match
//!    the in-process campaign exactly (via
//!    `CampaignResult::sans_supervision`); this is the tentpole's
//!    acceptance gate.
//! 2. **Fault grid** — one campaign per `(kind, lane, epoch)` cell over
//!    the four process-fault kinds (the full grid in full mode, the lane
//!    diagonal in `--smoke`), each compared against the unfaulted
//!    baseline. Any divergence fails the run outright.
//! 3. **Repeated-failure degradation** — a worker that keeps aborting
//!    past its respawn budget must be retired with a typed
//!    `LaneDegradation` while the campaign still finishes.
//!
//! Writes `results/BENCH_proc.json` (`results/BENCH_proc_smoke.json`
//! under `--smoke`). In smoke mode the mean recovery-overhead ratio is
//! gated against the checked-in floor (`results/BENCH_proc_floor.json`):
//! exceeding twice the floor exits nonzero, as does any non-identical
//! recovery.

use aflrs::{Campaign, CampaignConfig, CampaignResult, Isolation, SupervisorConfig};
use bench::{json_number, Mechanism, MechanismFactory};
use serde::Serialize;
use std::time::Instant;
use vmos::{ProcFaultKind, ProcFaultPlan};

/// Smoke-mode per-campaign cycle budget. The grid multiplies campaigns,
/// so each one stays small.
const SMOKE_BUDGET: u64 = 6_000_000;

/// Grid dimensions: lanes × epochs per target.
const LANES: usize = 4;
const EPOCHS: u64 = 4;

/// The supervisor's pipe-read deadline. Stall cells cost exactly this
/// much wall clock, so the eval tightens it well below the production
/// default while staying far above a legitimate epoch's compute time.
const SMOKE_DEADLINE_MS: u64 = 2_000;
const FULL_DEADLINE_MS: u64 = 8_000;

#[derive(Serialize)]
struct Row {
    target: String,
    fault: String,
    lane: u64,
    epoch: u64,
    wall_secs: f64,
    faults_contained: u64,
    recovered: u64,
    /// The gate: identical to the unfaulted baseline outside the
    /// supervision report.
    identical: bool,
}

#[derive(Serialize)]
struct DegradationTrial {
    target: String,
    lane: u64,
    epoch: u64,
    attempts: u64,
    reclaimed_cycles: u64,
    last_fault: String,
    finished: bool,
}

#[derive(Serialize)]
struct Aggregate {
    inproc_wall_secs: f64,
    proc_wall_secs: f64,
    /// Clean process-mode wall clock over clean in-process wall clock:
    /// what per-lane processes + the wire protocol cost with no faults.
    isolation_overhead_ratio: f64,
    mean_faulted_wall_secs: f64,
    /// Mean faulted wall clock over the clean process-mode wall clock,
    /// **excluding stall cells** — a stalled worker costs exactly the
    /// read deadline by construction, so folding it in would make the
    /// ratio measure the deadline constant, not recovery work.
    recovery_overhead_ratio: f64,
    grid_cells: usize,
    all_identical: bool,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    lanes: usize,
    sync_epochs: u64,
    read_deadline_ms: u64,
    rows: Vec<Row>,
    degradations: Vec<DegradationTrial>,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_supervision().sans_resume()).expect("result serializes")
}

fn campaign_cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0x150_1A7E,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn run_one(
    factory: &MechanismFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    iso: Isolation,
    sup: Option<SupervisorConfig>,
) -> CampaignResult {
    let mut c = Campaign::new(seeds, cfg)
        .factory(factory)
        .lanes(LANES)
        .sync_epochs(EPOCHS)
        .shards(2)
        .isolation(iso);
    if let Some(sup) = sup {
        c = c.supervision(sup);
    }
    c.run()
        .expect("supervised campaign survives injected process faults")
        .finished()
        .expect("no kill configured")
}

fn plan_for(lane: u64, epoch: u64, kind: ProcFaultKind, deadline_ms: u64) -> SupervisorConfig {
    SupervisorConfig {
        proc_faults: ProcFaultPlan::at(lane, epoch, kind),
        read_deadline_ms: deadline_ms,
        ..SupervisorConfig::default()
    }
}

fn main() {
    // Hidden worker entrypoint: when the supervisor re-execs this binary
    // with `AFLRS_PROC_WORKER` set, serve the lane protocol and exit.
    aflrs::worker_main_hook(bench::factory_from_spec);

    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let deadline_ms = if smoke { SMOKE_DEADLINE_MS } else { FULL_DEADLINE_MS };
    let mode = if smoke { "smoke" } else { "full" };
    let target_names: &[&str] = if smoke {
        &["giftext"]
    } else {
        &["giftext", "gpmf-parser"]
    };
    println!(
        "proc_eval ({mode}): budget = {budget} cycles/campaign, \
         grid = {LANES} lanes x {EPOCHS} epochs, read deadline = {deadline_ms}ms\n"
    );

    let clean_sup = SupervisorConfig {
        read_deadline_ms: deadline_ms,
        ..SupervisorConfig::default()
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut degradations: Vec<DegradationTrial> = Vec::new();
    let mut all_identical = true;
    let mut inproc_secs = 0.0f64;
    let mut proc_secs = 0.0f64;
    let mut faulted_secs = 0.0f64;
    let mut faulted_runs = 0usize;

    for name in target_names {
        let t = targets::by_name(name).expect("bundled target");
        let cfg = campaign_cfg(budget);
        let seeds = (t.seeds)();
        let factory = MechanismFactory::new(Mechanism::ClosureX, t);

        // Engine identity: the tentpole gate. Untimed in-process warm-up
        // settles decode caches before anything is on the clock.
        let _ = run_one(&factory, &seeds, &cfg, Isolation::InProcess, None);
        let start = Instant::now();
        let inproc = run_one(&factory, &seeds, &cfg, Isolation::InProcess, None);
        let in_secs = start.elapsed().as_secs_f64();
        inproc_secs += in_secs;
        let start = Instant::now();
        let clean = run_one(
            &factory,
            &seeds,
            &cfg,
            Isolation::Process,
            Some(clean_sup.clone()),
        );
        let clean_secs = start.elapsed().as_secs_f64();
        proc_secs += clean_secs;
        let want = fingerprint(&clean);
        if fingerprint(&inproc) != want {
            all_identical = false;
            eprintln!("ENGINE DIVERGENCE: {name}: process-mode result differs from in-process");
        }
        assert!(
            clean.resilience.supervision.is_quiet(),
            "unfaulted process-mode run must report no supervision activity"
        );
        eprintln!(
            "  {name} / baseline: {} execs, in-process {in_secs:.2}s, process {clean_secs:.2}s",
            clean.execs
        );

        // The fault grid: every ugly worker death at every cell. Smoke
        // runs the lane diagonal (still touches every lane and epoch).
        let mut cells: Vec<(ProcFaultKind, u64, u64)> = Vec::new();
        for kind in [
            ProcFaultKind::Abort,
            ProcFaultKind::Oom,
            ProcFaultKind::Stall,
            ProcFaultKind::GarbageFrame,
        ] {
            for lane in 0..LANES as u64 {
                for epoch in 0..EPOCHS {
                    if smoke && lane != epoch {
                        continue;
                    }
                    cells.push((kind, lane, epoch));
                }
            }
        }

        for (kind, lane, epoch) in cells {
            let start = Instant::now();
            let r = run_one(
                &factory,
                &seeds,
                &cfg,
                Isolation::Process,
                Some(plan_for(lane, epoch, kind, deadline_ms)),
            );
            let secs = start.elapsed().as_secs_f64();
            if kind != ProcFaultKind::Stall {
                faulted_secs += secs;
                faulted_runs += 1;
            }
            let s = &r.resilience.supervision;
            let identical = fingerprint(&r) == want && s.faults_contained() >= 1;
            if !identical {
                all_identical = false;
                eprintln!(
                    "RECOVERY DIVERGENCE: {name} {} at (lane {lane}, epoch {epoch}) did not \
                     reproduce the unfaulted result",
                    kind.name()
                );
            }
            rows.push(Row {
                target: name.to_string(),
                fault: kind.name().to_string(),
                lane,
                epoch,
                wall_secs: secs,
                faults_contained: s.faults_contained(),
                recovered: s.recovered,
                identical,
            });
        }
        eprintln!(
            "  {name} / grid: {} cells, all identical so far = {all_identical}",
            rows.iter().filter(|r| r.target == *name).count()
        );

        // Repeated-failure degradation: a worker that aborts on every
        // respawn retires its lane; the campaign finishes without it.
        let mut faults = ProcFaultPlan::at(2, 1, ProcFaultKind::Abort);
        faults.targeted[0].fires = 10;
        let sup = SupervisorConfig {
            max_lane_retries: 2,
            proc_faults: faults,
            read_deadline_ms: deadline_ms,
            ..SupervisorConfig::default()
        };
        let r = run_one(&factory, &seeds, &cfg, Isolation::Process, Some(sup));
        let degs = &r.resilience.supervision.degradations;
        let finished = r.execs > 0 && degs.len() == 1;
        if !finished {
            all_identical = false;
            eprintln!(
                "DEGRADATION FAILURE: {name}: expected exactly one retired lane, got {}",
                degs.len()
            );
        }
        for d in degs {
            eprintln!(
                "  {name} / degradation: lane {} retired at epoch {} after {} attempts \
                 ({} cycles folded forward)",
                d.lane, d.epoch, d.attempts, d.reclaimed_cycles
            );
            degradations.push(DegradationTrial {
                target: name.to_string(),
                lane: d.lane,
                epoch: d.epoch,
                attempts: d.attempts,
                reclaimed_cycles: d.reclaimed_cycles,
                last_fault: d.last_fault.clone(),
                finished,
            });
        }
    }

    let mean_faulted = faulted_secs / faulted_runs.max(1) as f64;
    let mean_clean_proc = proc_secs / target_names.len() as f64;
    let overhead = mean_faulted / mean_clean_proc.max(1e-9);
    let agg = Aggregate {
        inproc_wall_secs: inproc_secs,
        proc_wall_secs: proc_secs,
        isolation_overhead_ratio: proc_secs / inproc_secs.max(1e-9),
        mean_faulted_wall_secs: mean_faulted,
        recovery_overhead_ratio: overhead,
        grid_cells: rows.len(),
        all_identical,
    };
    println!(
        "\nAggregate: {} grid cells, clean process campaign {:.2}s ({:.2}x in-process), \
         mean faulted campaign {:.2}s (recovery overhead {:.2}x), all identical = {}",
        agg.grid_cells,
        mean_clean_proc,
        agg.isolation_overhead_ratio,
        agg.mean_faulted_wall_secs,
        agg.recovery_overhead_ratio,
        agg.all_identical
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.fault.clone(),
                r.lane.to_string(),
                r.epoch.to_string(),
                format!("{:.2}", r.wall_secs),
                r.faults_contained.to_string(),
                if r.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &["Target", "Fault", "Lane", "Epoch", "Wall (s)", "Contained", "Identical"],
            &table
        )
    );

    let report_name = if smoke { "BENCH_proc_smoke" } else { "BENCH_proc" };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            lanes: LANES,
            sync_epochs: EPOCHS,
            read_deadline_ms: deadline_ms,
            rows,
            degradations,
            aggregate: agg,
        },
    );

    if !all_identical {
        eprintln!("FAIL: a process-mode recovery diverged from the unfaulted baseline");
        std::process::exit(1);
    }

    if smoke {
        // Regression gate: recovery overhead against the checked-in floor.
        // Stall cells pay the full read deadline by construction, so some
        // overhead is structural; the gate catches recovery suddenly
        // costing far more than it should (tolerance 2x — wall clock is
        // noisy and the numerator is a single-campaign mean).
        match std::fs::read_to_string("results/BENCH_proc_floor.json")
            .ok()
            .and_then(|s| json_number(&s, "smoke_recovery_overhead_ratio"))
        {
            Some(floor) => {
                let max = floor * 2.0;
                if overhead > max {
                    eprintln!(
                        "FAIL: recovery overhead {overhead:.2}x exceeds twice the checked-in \
                         floor {floor:.2}x (maximum {max:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!("Floor check passed: overhead {overhead:.2}x <= 2x floor {floor:.2}x.");
            }
            None => {
                eprintln!("(no results/BENCH_proc_floor.json floor found; skipping overhead gate)");
            }
        }
    }
}
