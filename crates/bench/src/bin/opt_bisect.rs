//! Decode-optimizer bisection tool: times one target's campaign on each
//! engine configuration (reference / plain decoded / optimized decoded)
//! and reports best-of-N execs/sec, so individual passes can be bisected
//! with `CLOSUREX_OPT_SKIP=pass1,pass2,...` (see `vmos::decoded`).
//!
//! Usage: `opt_bisect [target ...]` (default: giftext gpmf-parser
//! c-blosc2). Budget via `CLOSUREX_BUDGET` (default 20M cycles).

use aflrs::{Campaign, CampaignConfig};
use bench::Mechanism;
use std::time::Instant;
use vmos::{DecodeOptGuard, ReferenceEngineGuard};

const ROUNDS: usize = 3;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        budget_cycles: bench::budget(),
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// One timed campaign run; returns (wall seconds, exec count).
fn run_once(target: &targets::TargetSpec) -> (f64, u64) {
    let cfg = cfg();
    let seeds = (target.seeds)();
    let mut ex = Mechanism::ClosureX.executor(target);
    let start = Instant::now();
    let r = Campaign::new(&seeds, &cfg)
        .executor(ex.as_mut())
        .run()
        .expect("campaign")
        .finished()
        .expect("no kill configured");
    (start.elapsed().as_secs_f64(), r.execs)
}

/// Best-of-N for all three engine configurations, with the rounds
/// *interleaved* (ref, plain, opt, ref, plain, opt, ...) so slow drift in
/// machine throughput hits every configuration equally instead of
/// penalizing whichever leg runs last. Round 0 is a discarded warm-up.
fn best3(target: &targets::TargetSpec) -> ([f64; 3], [u64; 3]) {
    let mut best = [f64::INFINITY; 3];
    let mut execs = [0u64; 3];
    for round in 0..=ROUNDS {
        for (i, s) in best.iter_mut().enumerate() {
            let guards = match i {
                0 => (Some(ReferenceEngineGuard::new()), None),
                1 => (None, Some(DecodeOptGuard::new())),
                _ => (None, None),
            };
            let (secs, e) = run_once(target);
            drop(guards);
            if round > 0 {
                *s = s.min(secs);
            }
            execs[i] = e;
        }
    }
    (best, execs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["giftext", "gpmf-parser", "c-blosc2"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let skip = std::env::var("CLOSUREX_OPT_SKIP").unwrap_or_default();
    println!("opt_bisect: budget {} cycles, skip=[{skip}]", bench::budget());
    for name in names {
        let t = targets::by_name(name).expect("bundled target");
        let ([ref_s, plain_s, opt_s], [execs, pe, oe]) = best3(t);
        assert_eq!(execs, pe, "{name}: plain engine diverged");
        assert_eq!(execs, oe, "{name}: optimized engine diverged");
        println!(
            "  {name}: {execs} execs | ref {:.0}/s | plain {:.0}/s ({:.2}x) | opt {:.0}/s ({:.2}x, {:+.1}% vs plain)",
            execs as f64 / ref_s,
            execs as f64 / plain_s,
            ref_s / plain_s,
            execs as f64 / opt_s,
            ref_s / opt_s,
            (plain_s / opt_s - 1.0) * 100.0,
        );
    }
}
