//! Regenerates **Table 7**: time-to-bug and trial-consistency for every
//! planted bug, ClosureX vs AFL++ forkserver.

use bench::{budget, run_trials, Mechanism};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    bug_id: String,
    bug_type: String,
    cve: Option<String>,
    closurex_time_s: Option<f64>,
    closurex_trials: usize,
    aflpp_time_s: Option<f64>,
    aflpp_trials: usize,
}

fn cell(time: Option<f64>, trials: usize) -> String {
    match time {
        Some(t) => format!("{t:.1} ({trials})"),
        None => "— (0)".to_string(),
    }
}

fn main() {
    let budget = budget() * 4; // bug hunting needs longer trials
    println!("Table 7: time to find bugs in seconds (count of trials that found it), budget = {budget} cycles\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut cx_wins = 0usize;
    let mut comparisons = 0usize;
    for t in targets::all().into_iter().filter(|t| !t.bugs.is_empty()) {
        let cx = run_trials(t, Mechanism::ClosureX, budget);
        let afl = run_trials(t, Mechanism::ForkServer, budget);
        for bug in t.bugs {
            let collect = |results: &[aflrs::CampaignResult]| {
                let times: Vec<f64> = results
                    .iter()
                    .filter_map(|r| {
                        r.crashes
                            .iter()
                            .find(|c| t.identify(&c.crash).map(|b| b.id) == Some(bug.id))
                            .map(|c| c.found_at_cycles as f64 / aflrs::CYCLES_PER_SECOND as f64)
                    })
                    .collect();
                let avg = if times.is_empty() {
                    None
                } else {
                    Some(times.iter().sum::<f64>() / times.len() as f64)
                };
                (avg, times.len())
            };
            let (cx_t, cx_n) = collect(&cx);
            let (afl_t, afl_n) = collect(&afl);
            if let (Some(a), Some(b)) = (cx_t, afl_t) {
                comparisons += 1;
                if a <= b {
                    cx_wins += 1;
                }
            }
            rows.push(vec![
                t.name.to_string(),
                cell(cx_t, cx_n),
                cell(afl_t, afl_n),
                bug.kind.bug_type_name().to_string(),
            ]);
            json.push(Row {
                benchmark: t.name.to_string(),
                bug_id: bug.id.to_string(),
                bug_type: bug.kind.bug_type_name().to_string(),
                cve: bug.cve.map(str::to_string),
                closurex_time_s: cx_t,
                closurex_trials: cx_n,
                aflpp_time_s: afl_t,
                aflpp_trials: afl_n,
            });
        }
        eprintln!("  {} done", t.name);
    }
    print!(
        "{}",
        bench::markdown_table(&["Benchmark", "CLOSUREX", "AFL++", "Bug Type"], &rows)
    );
    let cx_total: usize = json.iter().map(|r| r.closurex_trials).sum();
    let afl_total: usize = json.iter().map(|r| r.aflpp_trials).sum();
    println!(
        "\nClosureX found bugs in {cx_total} trials vs AFL++ {afl_total} ({}% more).",
        if afl_total > 0 {
            (cx_total as i64 - afl_total as i64) * 100 / afl_total as i64
        } else {
            0
        }
    );
    println!("Head-to-head wins where both found the bug: {cx_wins}/{comparisons}.");
    println!("Paper: 15 0-days (4 CVEs), ClosureX 1.9x faster, 25% more finding trials.");
    bench::write_report("table7_time_to_bug", &json);
}
