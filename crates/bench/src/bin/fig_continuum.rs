//! Regenerates the paper's **execution-mechanism continuum figure**
//! (Fig. 1/2): per-test-case cost decomposition for all four mechanisms on
//! one target — where the time goes and why ClosureX wins.

use bench::Mechanism;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mechanism: String,
    exec_cycles: f64,
    mgmt_cycles: f64,
    total_cycles: f64,
    mgmt_fraction: f64,
}

fn main() {
    let t = targets::by_name("giftext").expect("registered");
    let seed = (t.seeds)()[0].clone();
    println!(
        "Figure (continuum): per-test-case cost on '{}' (100-exec average)\n",
        t.name
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in [
        Mechanism::Fresh,
        Mechanism::ForkServer,
        Mechanism::NaivePersistent,
        Mechanism::ClosureX,
    ] {
        let mut ex = m.executor(t);
        let (mut exec, mut mgmt) = (0u64, 0u64);
        for _ in 0..100 {
            let out = ex.run(&seed);
            exec += out.exec_cycles;
            mgmt += out.mgmt_cycles;
        }
        let (e, g) = (exec as f64 / 100.0, mgmt as f64 / 100.0);
        rows.push(vec![
            m.name().to_string(),
            format!("{e:.0}"),
            format!("{g:.0}"),
            format!("{:.0}", e + g),
            format!("{:.1}%", g / (e + g) * 100.0),
        ]);
        json.push(Row {
            mechanism: m.name().to_string(),
            exec_cycles: e,
            mgmt_cycles: g,
            total_cycles: e + g,
            mgmt_fraction: g / (e + g),
        });
    }
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Mechanism",
                "target exec",
                "process mgmt / restore",
                "total",
                "mgmt share"
            ],
            &rows
        )
    );
    println!("\nShape check: fresh >> forkserver >> ClosureX ≈ naive-persistent (+ restore).");
    bench::write_report("fig_continuum", &json);
}
