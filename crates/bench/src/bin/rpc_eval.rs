//! **RPC front-end evaluation**: the network service plane must be
//! *invisible* to campaign results and *cheap* on the clean path.
//!
//! Scenarios:
//!
//! 1. **Fault-grid identity** — every [`vmos::NetFaultKind`] × both
//!    directions × the first three frame positions of the client's first
//!    connection, on both engines (optimized decoded lowering and the
//!    plain decoded streams). Each cell submits and awaits a campaign
//!    over the faulted wire and must (a) observe the targeted fault
//!    actually firing and (b) read a result bit-identical to the same
//!    campaign through the in-process [`Service`] API.
//! 2. **Server churn** — the campaign dies mid-epoch (simulated SIGKILL),
//!    the RPC server is killed abruptly, and a successor server over the
//!    restored service must resume the same client session and serve the
//!    bit-identical uninterrupted result.
//! 3. **Clean-path overhead** — wall clock of one campaign driven over a
//!    fault-free wire vs the same campaign through the in-process
//!    service. Within-run ratio, best of two trials per leg.
//!
//! Writes `results/BENCH_rpc.json` (`_smoke` under `--smoke`). Smoke mode
//! gates the fault-grid rate (floor: 1.0), the churn-resume identity, and
//! the overhead ratio against twice the blessed ceiling in
//! `results/BENCH_rpc_floor.json`.

use aflrs::{
    Campaign, CampaignConfig, CampaignResult, CampaignSpec, MemNet, RemoteError, RemoteOptions,
    RemoteService, RpcCounters, RpcServer, ServerOptions, Service, ServiceConfig, ServiceError,
    SpecResolver,
};
use bench::{json_number, Mechanism, MechanismFactory, MechanismResolver};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vmos::{NetFaultKind, NetFaultPlan};

/// Per-cell campaign budget: transport faults never touch the campaign,
/// so a short run discriminates exactly as well as a long one.
const GRID_BUDGET: u64 = 150_000;
const SMOKE_BUDGET: u64 = 1_500_000;
/// Off every epoch barrier, so the churn kill lands mid-epoch.
const CHURN_KILL: u64 = 151;

const GRID_KINDS: [NetFaultKind; 6] = [
    NetFaultKind::Drop,
    NetFaultKind::Delay,
    NetFaultKind::Duplicate,
    NetFaultKind::Corrupt,
    NetFaultKind::Disconnect,
    NetFaultKind::PartialFrame,
];

#[derive(Serialize)]
struct Cell {
    engine: &'static str,
    fault: &'static str,
    /// 0 = client→server, 1 = server→client.
    direction: u8,
    /// Frame sequence position on the client's first connection.
    frame: u64,
    /// The targeted fault demonstrably fired at one endpoint.
    fault_fired: bool,
    /// The gate: remote result bit-identical to the in-process run.
    identical: bool,
}

#[derive(Serialize)]
struct ChurnStory {
    /// Executions journaled when the in-campaign kill fired.
    killed_at: u64,
    /// The client's session survived the server replacement.
    session_resumed: bool,
    /// Journal replays served by both servers across the episode.
    journal_replays: u64,
    /// The gate: the resumed campaign's result is bit-identical to the
    /// uninterrupted builder run.
    identical: bool,
}

#[derive(Serialize)]
struct Aggregate {
    grid_cells: usize,
    identical_cells: usize,
    fault_grid_rate: f64,
    service_wall_secs: f64,
    rpc_wall_secs: f64,
    /// RPC-driven over in-process wall clock for one campaign: what the
    /// framing, checksumming, and reply journal cost when nothing fails.
    rpc_overhead_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    grid_budget_cycles: u64,
    overhead_budget_cycles: u64,
    cells: Vec<Cell>,
    churn: ChurnStory,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_resume()).expect("result serializes")
}

fn cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0x5EAF00D,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn factory_spec(target: &str) -> Vec<u8> {
    let mut w = vmos::Writer::new();
    w.put_u8(Mechanism::ClosureX.wire_tag());
    w.put_str(target);
    w.into_bytes()
}

fn corpus(target: &str) -> Vec<Vec<u8>> {
    let t = targets::by_name(target).expect("bundled target");
    let mut seeds = (t.seeds)();
    seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    seeds
}

fn spec(name: &str, decode_opt: bool, budget: u64) -> CampaignSpec {
    let mut s = CampaignSpec::new(name, factory_spec("giftext"), corpus("giftext"), cfg(budget));
    s.shards = 1;
    s.decode_opt = decode_opt;
    s
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("closurex-rpc-eval-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn client_opts(plan: NetFaultPlan) -> RemoteOptions {
    RemoteOptions {
        fault_plan: plan,
        read_timeout: Duration::from_millis(50),
        await_timeout: Duration::from_secs(5),
        ..RemoteOptions::default()
    }
}

/// Which counter proves a given fault kind fired.
fn fired(kind: NetFaultKind, c: &RpcCounters) -> u64 {
    match kind {
        NetFaultKind::Drop => c.frames_dropped,
        NetFaultKind::Delay => c.frames_delayed,
        NetFaultKind::Duplicate => c.frames_duplicated,
        NetFaultKind::Corrupt => c.frames_corrupted,
        NetFaultKind::Disconnect => c.disconnects_injected,
        NetFaultKind::PartialFrame => c.partial_frames,
    }
}

/// Ground truth per engine: the same campaign through a local service.
fn service_reference(decode_opt: bool) -> String {
    let dir = scratch(if decode_opt { "ref-opt" } else { "ref-plain" });
    let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
    let service = Service::new(ServiceConfig::new(&dir), resolver).expect("service starts");
    let h = service
        .submit(spec("cell", decode_opt, GRID_BUDGET))
        .expect("admission");
    let fp = fingerprint(&h.await_result().expect("local campaign finishes"));
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
    fp
}

/// One grid cell: a fresh service + server + client with the targeted
/// fault armed at both endpoints (each injects only on its own sends).
fn grid_cell(
    engine: &'static str,
    decode_opt: bool,
    kind: NetFaultKind,
    direction: u8,
    frame: u64,
    want: &str,
) -> Cell {
    let dir = scratch(&format!("grid-{engine}-{}-{direction}-{frame}", kind.name()));
    let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
    let service = Arc::new(Service::new(ServiceConfig::new(&dir), resolver).expect("service"));
    let net = MemNet::new();
    let plan = NetFaultPlan::at(0, direction, frame, kind);
    let server = RpcServer::start(
        Arc::clone(&service),
        &net,
        ServerOptions {
            fault_plan: plan.clone(),
            ..ServerOptions::default()
        },
    );
    let client = RemoteService::connect(&net, client_opts(plan)).expect("client connects");
    let h = client
        .submit(spec("cell", decode_opt, GRID_BUDGET))
        .expect("admission");
    let r = h.await_result().expect("remote campaign finishes");
    let fault_fired = fired(kind, &client.counters()) + fired(kind, &server.counters()) > 0;
    let identical = fingerprint(&r) == want;
    server.stop();
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
    Cell {
        engine,
        fault: kind.name(),
        direction,
        frame,
        fault_fired,
        identical,
    }
}

/// Server churn: campaign killed mid-epoch, RPC server killed abruptly,
/// successor server over the restored service answers the same client.
fn churn_story(budget: u64) -> ChurnStory {
    let t = targets::by_name("giftext").expect("bundled target");
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    let want = fingerprint(
        &Campaign::new(&corpus("giftext"), &cfg(budget))
            .factory(&factory)
            .run()
            .expect("reference campaign runs")
            .finished()
            .expect("no kill configured"),
    );

    let dir = scratch("churn");
    let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
    let net = MemNet::new();
    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(CHURN_KILL);
    let service1 =
        Arc::new(Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts"));
    let server1 = RpcServer::start(Arc::clone(&service1), &net, ServerOptions::default());
    let mut opts = client_opts(NetFaultPlan::none());
    opts.await_timeout = Duration::from_secs(60);
    let client = RemoteService::connect(&net, opts).expect("client connects");
    let session = client.session();
    let h = client
        .submit(spec("churn", true, budget))
        .expect("admission");
    let killed_at = match h.await_result() {
        Err(RemoteError::Service(ServiceError::Killed { execs })) => execs,
        other => panic!("expected the killed campaign over the wire, got {other:?}"),
    };
    let replays1 = server1.counters().journal_replays;
    server1.kill();
    drop(service1);

    let service2 = Arc::new(
        Service::restore(ServiceConfig::new(&dir), resolver).expect("service restores"),
    );
    let server2 = RpcServer::start(Arc::clone(&service2), &net, ServerOptions::default());
    let r = client
        .handle("churn")
        .expect("transport recovers")
        .expect("tenant survived the churn")
        .await_result()
        .expect("restored campaign finishes");
    let story = ChurnStory {
        killed_at,
        session_resumed: client.session() == session && client.counters().sessions_resumed > 0,
        journal_replays: replays1 + server2.counters().journal_replays,
        identical: fingerprint(&r) == want,
    };
    server2.stop();
    drop(service2);
    let _ = std::fs::remove_dir_all(dir);
    story
}

/// Wall clock of one campaign over the fault-free wire vs in-process.
/// Best of two trials per leg (robust to host noise spikes; the gate
/// doubles the blessed ceiling on top).
fn overhead(budget: u64) -> (f64, f64) {
    let budget = budget * 4;
    // Warm-up settles the decode cache on both paths.
    let _ = service_reference(true);

    let service_secs = (0..2)
        .map(|trial| {
            let dir = scratch(&format!("local-{trial}"));
            let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
            let start = Instant::now();
            let service =
                Service::new(ServiceConfig::new(&dir), resolver).expect("service starts");
            let h = service
                .submit(spec("solo", true, budget))
                .expect("admission");
            h.await_result().expect("service campaign finishes");
            let secs = start.elapsed().as_secs_f64();
            drop(service);
            let _ = std::fs::remove_dir_all(dir);
            secs
        })
        .fold(f64::INFINITY, f64::min);

    let rpc_secs = (0..2)
        .map(|trial| {
            let dir = scratch(&format!("remote-{trial}"));
            let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
            let start = Instant::now();
            let service = Arc::new(
                Service::new(ServiceConfig::new(&dir), resolver).expect("service starts"),
            );
            let net = MemNet::new();
            let server =
                RpcServer::start(Arc::clone(&service), &net, ServerOptions::default());
            let mut opts = client_opts(NetFaultPlan::none());
            opts.await_timeout = Duration::from_secs(600);
            let client = RemoteService::connect(&net, opts).expect("client connects");
            let h = client
                .submit(spec("solo", true, budget))
                .expect("admission");
            h.await_result().expect("remote campaign finishes");
            let secs = start.elapsed().as_secs_f64();
            server.stop();
            drop(service);
            let _ = std::fs::remove_dir_all(dir);
            secs
        })
        .fold(f64::INFINITY, f64::min);
    (service_secs, rpc_secs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "rpc_eval ({mode}): grid = {} fault kinds x 2 directions x 3 frames x 2 engines \
         at {GRID_BUDGET} cycles/cell, churn kill at {CHURN_KILL} execs, \
         overhead at {} cycles\n",
        GRID_KINDS.len(),
        budget * 4
    );

    let mut cells = Vec::new();
    for (engine, decode_opt) in [("opt", true), ("plain", false)] {
        let want = service_reference(decode_opt);
        for kind in GRID_KINDS {
            for direction in [0u8, 1u8] {
                for frame in 0u64..3 {
                    cells.push(grid_cell(engine, decode_opt, kind, direction, frame, &want));
                }
            }
        }
    }
    let identical = cells
        .iter()
        .filter(|c| c.identical && c.fault_fired)
        .count();
    let rate = identical as f64 / cells.len() as f64;
    for c in cells.iter().filter(|c| !(c.identical && c.fault_fired)) {
        eprintln!(
            "DIVERGED: engine={} fault={} direction={} frame={} (fired={}, identical={})",
            c.engine, c.fault, c.direction, c.frame, c.fault_fired, c.identical
        );
    }
    println!(
        "fault grid: {identical}/{} cells fired-and-identical (rate {rate:.3})",
        cells.len()
    );

    let churn = churn_story(budget);
    println!(
        "churn story: killed at {} execs, session resumed: {}, {} journal replays, \
         identical: {}",
        churn.killed_at, churn.session_resumed, churn.journal_replays, churn.identical
    );

    let (service_secs, rpc_secs) = overhead(budget);
    let ratio = if service_secs > 0.0 { rpc_secs / service_secs } else { 1.0 };
    println!("overhead: in-process {service_secs:.3}s, over RPC {rpc_secs:.3}s ({ratio:.2}x)");

    let agg = Aggregate {
        grid_cells: cells.len(),
        identical_cells: identical,
        fault_grid_rate: rate,
        service_wall_secs: service_secs,
        rpc_wall_secs: rpc_secs,
        rpc_overhead_ratio: ratio,
    };
    let churn_ok = churn.identical && churn.session_resumed;
    let report_name = if smoke { "BENCH_rpc_smoke" } else { "BENCH_rpc" };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            grid_budget_cycles: GRID_BUDGET,
            overhead_budget_cycles: budget * 4,
            cells,
            churn,
            aggregate: agg,
        },
    );

    if rate < 1.0 {
        eprintln!("FAIL: a fault-grid cell diverged (or its fault never fired)");
        std::process::exit(1);
    }
    if !churn_ok {
        eprintln!("FAIL: the churn episode lost the session or diverged");
        std::process::exit(1);
    }
    if smoke {
        let floor = std::fs::read_to_string("results/BENCH_rpc_floor.json").ok();
        match floor.as_deref().and_then(|s| json_number(s, "fault_grid_rate")) {
            Some(f) if rate < f => {
                eprintln!("FAIL: fault-grid rate {rate:.3} below the checked-in floor {f:.3}");
                std::process::exit(1);
            }
            Some(f) => println!("Floor check passed: fault grid {rate:.3} >= {f:.3}."),
            None => eprintln!("(no fault_grid_rate floor found; skipping gate)"),
        }
        match floor
            .as_deref()
            .and_then(|s| json_number(s, "smoke_rpc_overhead_ratio"))
        {
            Some(f) => {
                // Wall clock is noisy and the numerator is one campaign:
                // gate at twice the recorded ratio (the identity gates
                // above are the exact ones; this catches regressions in
                // transport cost, not host phase).
                let max = f * 2.0;
                if ratio > max {
                    eprintln!(
                        "FAIL: RPC overhead {ratio:.2}x exceeds twice the checked-in \
                         ceiling {f:.2}x (maximum {max:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!("Floor check passed: overhead {ratio:.2}x <= 2x ceiling {f:.2}x.");
            }
            None => eprintln!("(no smoke_rpc_overhead_ratio ceiling found; skipping gate)"),
        }
    }
}
