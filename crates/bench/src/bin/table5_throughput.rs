//! Regenerates **Table 5**: test-case execution rate, ClosureX vs the
//! AFL++ forkserver, 5 trials each, with speedup and Mann-Whitney p.

use bench::{budget, mean, p_value, run_trials, Mechanism};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    closurex_execs: f64,
    aflpp_execs: f64,
    speedup: f64,
    p_value: f64,
}

fn main() {
    let budget = budget();
    println!("Table 5: test cases executed per trial (budget = {budget} cycles, 5 trials)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut speedups = Vec::new();
    for t in targets::all() {
        let cx = run_trials(t, Mechanism::ClosureX, budget);
        let afl = run_trials(t, Mechanism::ForkServer, budget);
        let cx_execs = mean(&cx.iter().map(|r| r.execs as f64).collect::<Vec<_>>());
        let afl_execs = mean(&afl.iter().map(|r| r.execs as f64).collect::<Vec<_>>());
        let speedup = cx_execs / afl_execs.max(1.0);
        let p = p_value(&cx, &afl, |r| r.execs as f64);
        speedups.push(speedup);
        rows.push(vec![
            t.name.to_string(),
            format!("{cx_execs:.0}"),
            format!("{afl_execs:.0}"),
            format!("{speedup:.2}"),
            format!("{p:.4}"),
        ]);
        json.push(Row {
            benchmark: t.name.to_string(),
            closurex_execs: cx_execs,
            aflpp_execs: afl_execs,
            speedup,
            p_value: p,
        });
        eprintln!("  {} done (speedup {speedup:.2}x)", t.name);
    }
    let avg: f64 = speedups.iter().sum::<f64>() / speedups.len() as f64;
    rows.push(vec![
        "**Average**".into(),
        String::new(),
        String::new(),
        format!("**{avg:.2}**"),
        String::new(),
    ]);
    print!(
        "{}",
        bench::markdown_table(
            &["Benchmark", "CLOSUREX", "AFL++", "Speedup", "p value"],
            &rows
        )
    );
    println!("\nPaper: speedups 2.36–4.79x, average 3.53x, p = 0.0079 everywhere.");
    bench::write_report("table5_throughput", &json);
}
