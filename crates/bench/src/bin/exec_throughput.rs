//! **Host-throughput benchmark**: how many simulated test cases per host
//! second the execution engine sustains, decoded-bytecode engine vs the
//! AST-walking reference, measured in the *same* run so the comparison is
//! honest (same binary, same machine state, same workload).
//!
//! For every (target, mechanism) cell the harness runs the identical
//! campaign twice — once with `vmos::set_reference_engine(true)` (the
//! pre-change engine: AST walk, full coverage-map clears, full-scan virgin
//! merge) and once on the decoded fast path — and cross-checks that
//! `execs`, `clock_cycles` and `coverage_hash` are bit-identical. A
//! mismatch is a determinism bug and fails the run outright.
//!
//! Modes:
//! * default: all targets × {ClosureX, forkserver}, `CLOSUREX_BUDGET` or
//!   the standard default budget;
//! * `--smoke`: first two targets, small budget — the CI gate. In smoke
//!   mode the aggregate decoded execs/sec is compared against the
//!   checked-in floor (`results/BENCH_floor.json`); a drop of more than
//!   20% below the floor exits nonzero.
//!
//! Writes `results/BENCH_throughput.json`.

use aflrs::{Campaign, CampaignConfig, CampaignResult};
use bench::Mechanism;
use closurex::executor::Executor;
use serde::Serialize;
use std::time::Instant;

/// Smoke-mode per-campaign cycle budget (big enough that the decoded
/// engine's dispatch dominates, small enough for CI).
const SMOKE_BUDGET: u64 = 4_000_000;

#[derive(Serialize)]
struct Row {
    target: String,
    mechanism: String,
    execs: u64,
    clock_cycles: u64,
    coverage_hash: u64,
    reference_secs: f64,
    decoded_secs: f64,
    reference_execs_per_sec: f64,
    decoded_execs_per_sec: f64,
    speedup: f64,
    deterministic: bool,
}

#[derive(Serialize)]
struct Aggregate {
    total_execs: u64,
    reference_execs_per_sec: f64,
    decoded_execs_per_sec: f64,
    speedup: f64,
}

/// Decode-time optimizer statistics for one target, lifted from the
/// cached [`vmos::DecodedImage`] so the report records *what* the
/// optimizer did to the stream the timed rows ran on.
#[derive(Serialize)]
struct OptRow {
    target: String,
    decode_micros: u64,
    insts_eliminated: u64,
    operands_resolved: u64,
    movs_coalesced: u64,
    blocks_merged: u64,
    fused_sites: u64,
    chains: u64,
    chain_comps: u64,
    inlined_callees: u64,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    rows: Vec<Row>,
    optimizer: Vec<OptRow>,
    aggregate: Aggregate,
}

/// One plain campaign through the builder.
fn run(ex: &mut dyn Executor, seeds: &[Vec<u8>], cfg: &CampaignConfig) -> CampaignResult {
    Campaign::new(seeds, cfg)
        .executor(ex)
        .run()
        .expect("plain campaign config is always valid")
        .finished()
        .expect("no kill configured")
}

fn campaign_cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0xC0FFEE,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// One timed campaign on the requested engine. Executor construction is
/// outside the timed window (decode happens once per module and is cached);
/// the window covers exactly what a fuzzing campaign spends per test case.
fn timed_run(
    target: &targets::TargetSpec,
    mech: Mechanism,
    budget: u64,
    reference: bool,
) -> (CampaignResult, f64) {
    vmos::set_reference_engine(reference);
    let cfg = campaign_cfg(budget);
    let seeds = (target.seeds)();
    // Untimed warm-up campaign: caches, branch predictors and CPU
    // frequency settle before either engine is on the clock.
    {
        let mut warm = mech.executor(target);
        let _ = run(warm.as_mut(), &seeds, &cfg);
    }
    let mut ex = mech.executor(target);
    let start = Instant::now();
    let r = run(ex.as_mut(), &seeds, &cfg);
    let secs = start.elapsed().as_secs_f64();
    vmos::set_reference_engine(false);
    (r, secs)
}

use bench::json_number;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let targets: Vec<&targets::TargetSpec> = if smoke {
        targets::all().into_iter().take(2).collect()
    } else {
        targets::all()
    };
    let mode = if smoke { "smoke" } else { "full" };
    println!("exec_throughput ({mode}): budget = {budget} cycles/campaign\n");

    let mut rows = Vec::new();
    let mut opt_rows = Vec::new();
    let mut all_deterministic = true;
    let (mut total_execs, mut ref_secs, mut dec_secs) = (0u64, 0.0f64, 0.0f64);
    for t in &targets {
        let s = vmos::DecodedImage::cached(&t.module()).stats.clone();
        eprintln!(
            "  {} optimizer: {} insts eliminated, {} fused sites, {} chains ({} comps), \
             {} callees inlined, decoded in {}us",
            t.name,
            s.insts_eliminated,
            s.fused_total(),
            s.chains,
            s.chain_comps,
            s.inlined_callees,
            s.decode_micros,
        );
        opt_rows.push(OptRow {
            target: t.name.to_string(),
            decode_micros: s.decode_micros,
            insts_eliminated: s.insts_eliminated,
            operands_resolved: s.operands_resolved,
            movs_coalesced: s.movs_coalesced,
            blocks_merged: s.blocks_merged,
            fused_sites: s.fused_total(),
            chains: s.chains,
            chain_comps: s.chain_comps,
            inlined_callees: s.inlined_callees,
        });
        for mech in [Mechanism::ClosureX, Mechanism::ForkServer] {
            let (ref_r, r_secs) = timed_run(t, mech, budget, true);
            let (dec_r, d_secs) = timed_run(t, mech, budget, false);
            let deterministic = ref_r.execs == dec_r.execs
                && ref_r.clock_cycles == dec_r.clock_cycles
                && ref_r.coverage_hash == dec_r.coverage_hash
                && ref_r.edges_found == dec_r.edges_found
                && ref_r.crashes.len() == dec_r.crashes.len();
            if !deterministic {
                all_deterministic = false;
                eprintln!(
                    "DETERMINISM VIOLATION: {} / {}: reference (execs={}, cycles={}, cov={:#x}) \
                     != decoded (execs={}, cycles={}, cov={:#x})",
                    t.name,
                    mech.name(),
                    ref_r.execs,
                    ref_r.clock_cycles,
                    ref_r.coverage_hash,
                    dec_r.execs,
                    dec_r.clock_cycles,
                    dec_r.coverage_hash
                );
            }
            let ref_eps = dec_r.execs as f64 / r_secs.max(1e-9);
            let dec_eps = dec_r.execs as f64 / d_secs.max(1e-9);
            eprintln!(
                "  {} / {}: {} execs | reference {:.0}/s, decoded {:.0}/s ({:.2}x)",
                t.name,
                mech.name(),
                dec_r.execs,
                ref_eps,
                dec_eps,
                dec_eps / ref_eps.max(1e-9)
            );
            total_execs += dec_r.execs;
            ref_secs += r_secs;
            dec_secs += d_secs;
            rows.push(Row {
                target: t.name.to_string(),
                mechanism: mech.name().to_string(),
                execs: dec_r.execs,
                clock_cycles: dec_r.clock_cycles,
                coverage_hash: dec_r.coverage_hash,
                reference_secs: r_secs,
                decoded_secs: d_secs,
                reference_execs_per_sec: ref_eps,
                decoded_execs_per_sec: dec_eps,
                speedup: dec_eps / ref_eps.max(1e-9),
                deterministic,
            });
        }
    }

    let agg_ref = total_execs as f64 / ref_secs.max(1e-9);
    let agg_dec = total_execs as f64 / dec_secs.max(1e-9);
    let agg = Aggregate {
        total_execs,
        reference_execs_per_sec: agg_ref,
        decoded_execs_per_sec: agg_dec,
        speedup: agg_dec / agg_ref.max(1e-9),
    };
    println!(
        "\nAggregate: {} execs | reference {:.0} execs/s | decoded {:.0} execs/s | speedup {:.2}x",
        agg.total_execs, agg.reference_execs_per_sec, agg.decoded_execs_per_sec, agg.speedup
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.mechanism.clone(),
                r.execs.to_string(),
                format!("{:.0}", r.reference_execs_per_sec),
                format!("{:.0}", r.decoded_execs_per_sec),
                format!("{:.2}", r.speedup),
                r.deterministic.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Target",
                "Mechanism",
                "Execs",
                "Ref execs/s",
                "Decoded execs/s",
                "Speedup",
                "Deterministic",
            ],
            &table
        )
    );
    // Smoke mode writes to its own file so the CI gate never clobbers the
    // blessed full-run report.
    let report_name = if smoke {
        "BENCH_throughput_smoke"
    } else {
        "BENCH_throughput"
    };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            rows,
            optimizer: opt_rows,
            aggregate: agg,
        },
    );

    if !all_deterministic {
        eprintln!("FAIL: decoded engine diverged from the reference engine");
        std::process::exit(1);
    }

    if smoke {
        // Regression gate: compare against the checked-in floors. Absolute
        // decoded execs/sec is the primary signal but swings with host load
        // (shared machines show ±60% phases); the decoded/reference speedup
        // measured in the *same* run is load-robust, because both engines
        // ride the same phase. A real engine regression drags both down, so
        // the gate fails only when BOTH miss their floor.
        let floor_json = std::fs::read_to_string("results/BENCH_floor.json").ok();
        let abs_floor = floor_json
            .as_deref()
            .and_then(|s| json_number(s, "smoke_decoded_execs_per_sec"));
        let ratio_floor = floor_json
            .as_deref()
            .and_then(|s| json_number(s, "smoke_min_speedup"));
        match (abs_floor, ratio_floor) {
            (None, None) => {
                eprintln!("(no results/BENCH_floor.json floor found; skipping regression gate)");
            }
            (abs, ratio) => {
                let speedup = agg_dec / agg_ref.max(1e-9);
                let abs_ok = abs.map(|floor| agg_dec >= floor * 0.8);
                let ratio_ok = ratio.map(|floor| speedup >= floor);
                if abs_ok == Some(false) && ratio_ok != Some(true) {
                    eprintln!(
                        "FAIL: decoded throughput {agg_dec:.0} execs/s is more than 20% below \
                         the checked-in floor {:.0}, and the decoded/reference speedup \
                         {speedup:.2}x is below the speedup floor {:.2}x — regression, not \
                         host noise",
                        abs.unwrap_or(0.0),
                        ratio.unwrap_or(0.0),
                    );
                    std::process::exit(1);
                }
                if ratio_ok == Some(false) && abs_ok != Some(true) {
                    eprintln!(
                        "FAIL: decoded/reference speedup {speedup:.2}x is below the speedup \
                         floor {:.2}x and no absolute floor rescued it",
                        ratio.unwrap_or(0.0),
                    );
                    std::process::exit(1);
                }
                if abs_ok == Some(false) {
                    eprintln!(
                        "WARN: decoded throughput {agg_dec:.0} execs/s is below 80% of floor \
                         {:.0}, but the within-run speedup {speedup:.2}x clears its floor \
                         {:.2}x — treating as a host slow phase",
                        abs.unwrap_or(0.0),
                        ratio.unwrap_or(0.0),
                    );
                } else {
                    println!(
                        "Floor check passed: {agg_dec:.0} execs/s, speedup {speedup:.2}x \
                         (floors: {:.0} execs/s, {:.2}x)",
                        abs.unwrap_or(0.0),
                        ratio.unwrap_or(0.0),
                    );
                }
            }
        }
    }
}
