//! **Lane-supervision evaluation**: prove that the sharded campaign
//! survives injected orchestration faults — worker panics, lane hangs,
//! barrier-timeout handoffs — at *every* `(lane, epoch)` grid position,
//! recovering to a `CampaignResult` bit-identical to the unfaulted run
//! outside the supervision report, and measure what recovery costs in
//! host wall clock.
//!
//! Scenarios per target:
//!
//! 1. **Fault grid** — one campaign per `(kind, lane, epoch)` cell (the
//!    full grid in full mode, the lane-diagonal in `--smoke`), each
//!    compared against the unfaulted baseline via
//!    `CampaignResult::sans_supervision`. Any divergence fails the run
//!    outright.
//! 2. **Barrier timeout** — the third fault kind, one cell.
//! 3. **Repeated-failure degradation** — a lane that faults past its
//!    retry budget must be retired with a typed `LaneDegradation` (budget
//!    folded into the survivors) while the campaign still finishes.
//!
//! Writes `results/BENCH_supervision.json`
//! (`results/BENCH_supervision_smoke.json` under `--smoke`, so the CI
//! gate never clobbers the blessed full-run report). In smoke mode the
//! mean recovery-overhead ratio (faulted wall clock over baseline wall
//! clock) is gated against the checked-in floor
//! (`results/BENCH_supervision_floor.json`): exceeding twice the floor
//! exits nonzero, as does any non-identical recovery.

use aflrs::{Campaign, CampaignConfig, CampaignResult, SupervisorConfig};
use bench::{json_number, Mechanism, MechanismFactory};
use serde::Serialize;
use std::time::Instant;
use vmos::{OrchFaultKind, OrchFaultPlan};

/// Smoke-mode per-campaign cycle budget. The grid multiplies campaigns,
/// so each one stays small.
const SMOKE_BUDGET: u64 = 8_000_000;

/// Grid dimensions: lanes × epochs per target. Smaller than the campaign
/// defaults so the full grid (both fault kinds at every cell) stays
/// tractable.
const LANES: usize = 4;
const EPOCHS: u64 = 4;

#[derive(Serialize)]
struct Row {
    target: String,
    fault: String,
    lane: u64,
    epoch: u64,
    wall_secs: f64,
    faults_contained: u64,
    recovered: u64,
    /// The gate: identical to the unfaulted baseline outside the
    /// supervision report.
    identical: bool,
}

#[derive(Serialize)]
struct DegradationTrial {
    target: String,
    lane: u64,
    epoch: u64,
    attempts: u64,
    reclaimed_cycles: u64,
    last_fault: String,
    /// The campaign still finished with the remaining lanes.
    finished: bool,
}

#[derive(Serialize)]
struct Aggregate {
    baseline_wall_secs: f64,
    mean_faulted_wall_secs: f64,
    /// Mean faulted wall clock over baseline wall clock: what one
    /// contained fault + lane rebuild + epoch re-run costs end to end.
    recovery_overhead_ratio: f64,
    grid_cells: usize,
    all_identical: bool,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    lanes: usize,
    sync_epochs: u64,
    max_lane_retries: u32,
    rows: Vec<Row>,
    degradations: Vec<DegradationTrial>,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_supervision().sans_resume()).expect("result serializes")
}

fn campaign_cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0x5AADED,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn run_supervised(
    factory: &MechanismFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    sup: Option<SupervisorConfig>,
) -> CampaignResult {
    let mut c = Campaign::new(seeds, cfg)
        .factory(factory)
        .lanes(LANES)
        .sync_epochs(EPOCHS)
        .shards(2);
    if let Some(sup) = sup {
        c = c.supervision(sup);
    }
    c.run()
        .expect("supervised campaign survives injected faults")
        .finished()
        .expect("no kill configured")
}

fn plan_for(lane: u64, epoch: u64, kind: OrchFaultKind) -> SupervisorConfig {
    SupervisorConfig {
        faults: OrchFaultPlan::at(lane, epoch, kind),
        ..SupervisorConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let mode = if smoke { "smoke" } else { "full" };
    let target_names: &[&str] = if smoke {
        &["giftext"]
    } else {
        &["giftext", "gpmf-parser"]
    };
    println!(
        "supervision_eval ({mode}): budget = {budget} cycles/campaign, \
         grid = {LANES} lanes x {EPOCHS} epochs\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut degradations: Vec<DegradationTrial> = Vec::new();
    let mut all_identical = true;
    let mut baseline_secs = 0.0f64;
    let mut faulted_secs = 0.0f64;
    let mut faulted_runs = 0usize;

    for name in target_names {
        let t = targets::by_name(name).expect("bundled target");
        let cfg = campaign_cfg(budget);
        let seeds = (t.seeds)();
        let factory = MechanismFactory::new(Mechanism::ClosureX, t);

        // Untimed warm-up: decode caches and thread pools settle before
        // anything is on the clock.
        let _ = run_supervised(&factory, &seeds, &cfg, None);

        let start = Instant::now();
        let clean = run_supervised(&factory, &seeds, &cfg, None);
        let clean_secs = start.elapsed().as_secs_f64();
        baseline_secs += clean_secs;
        assert!(
            clean.resilience.supervision.is_quiet(),
            "unfaulted run must report no supervision activity"
        );
        let want = fingerprint(&clean);
        eprintln!(
            "  {name} / baseline: {} execs in {clean_secs:.2}s",
            clean.execs
        );

        // The fault grid: kill or hang every lane at every epoch. Smoke
        // runs the lane diagonal (still touches every lane and epoch).
        let mut cells: Vec<(OrchFaultKind, u64, u64)> = Vec::new();
        for kind in [OrchFaultKind::WorkerPanic, OrchFaultKind::LaneHang] {
            for lane in 0..LANES as u64 {
                for epoch in 0..EPOCHS {
                    if smoke && lane != epoch {
                        continue;
                    }
                    cells.push((kind, lane, epoch));
                }
            }
        }
        cells.push((OrchFaultKind::BarrierTimeout, 1, EPOCHS - 1));

        for (kind, lane, epoch) in cells {
            let start = Instant::now();
            let r = run_supervised(&factory, &seeds, &cfg, Some(plan_for(lane, epoch, kind)));
            let secs = start.elapsed().as_secs_f64();
            faulted_secs += secs;
            faulted_runs += 1;
            let s = &r.resilience.supervision;
            let identical = fingerprint(&r) == want && s.faults_contained() >= 1;
            if !identical {
                all_identical = false;
                eprintln!(
                    "RECOVERY DIVERGENCE: {name} {} at (lane {lane}, epoch {epoch}) did not \
                     reproduce the unfaulted result",
                    kind.name()
                );
            }
            rows.push(Row {
                target: name.to_string(),
                fault: kind.name().to_string(),
                lane,
                epoch,
                wall_secs: secs,
                faults_contained: s.faults_contained(),
                recovered: s.recovered,
                identical,
            });
        }
        eprintln!(
            "  {name} / grid: {} cells, all identical so far = {all_identical}",
            rows.iter().filter(|r| r.target == *name).count()
        );

        // Repeated-failure degradation: fault one lane past its retry
        // budget; the lane retires, the campaign finishes.
        let mut faults = OrchFaultPlan::at(2, 1, OrchFaultKind::WorkerPanic);
        faults.targeted[0].fires = 10;
        let sup = SupervisorConfig {
            max_lane_retries: 2,
            faults,
            ..SupervisorConfig::default()
        };
        let r = run_supervised(&factory, &seeds, &cfg, Some(sup));
        let degs = &r.resilience.supervision.degradations;
        let finished = r.execs > 0 && degs.len() == 1;
        if !finished {
            all_identical = false;
            eprintln!(
                "DEGRADATION FAILURE: {name}: expected exactly one retired lane, got {}",
                degs.len()
            );
        }
        for d in degs {
            eprintln!(
                "  {name} / degradation: lane {} retired at epoch {} after {} attempts \
                 ({} cycles folded forward)",
                d.lane, d.epoch, d.attempts, d.reclaimed_cycles
            );
            degradations.push(DegradationTrial {
                target: name.to_string(),
                lane: d.lane,
                epoch: d.epoch,
                attempts: d.attempts,
                reclaimed_cycles: d.reclaimed_cycles,
                last_fault: d.last_fault.clone(),
                finished,
            });
        }
    }

    let mean_faulted = faulted_secs / faulted_runs.max(1) as f64;
    let mean_baseline = baseline_secs / target_names.len() as f64;
    let overhead = mean_faulted / mean_baseline.max(1e-9);
    let agg = Aggregate {
        baseline_wall_secs: baseline_secs,
        mean_faulted_wall_secs: mean_faulted,
        recovery_overhead_ratio: overhead,
        grid_cells: rows.len(),
        all_identical,
    };
    println!(
        "\nAggregate: {} grid cells, baseline {:.2}s, mean faulted campaign {:.2}s \
         (recovery overhead {:.2}x), all identical = {}",
        agg.grid_cells, mean_baseline, agg.mean_faulted_wall_secs, agg.recovery_overhead_ratio,
        agg.all_identical
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.fault.clone(),
                r.lane.to_string(),
                r.epoch.to_string(),
                format!("{:.2}", r.wall_secs),
                r.faults_contained.to_string(),
                if r.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &["Target", "Fault", "Lane", "Epoch", "Wall (s)", "Contained", "Identical"],
            &table
        )
    );

    let report_name = if smoke {
        "BENCH_supervision_smoke"
    } else {
        "BENCH_supervision"
    };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            lanes: LANES,
            sync_epochs: EPOCHS,
            max_lane_retries: SupervisorConfig::default().max_lane_retries,
            rows,
            degradations,
            aggregate: agg,
        },
    );

    if !all_identical {
        eprintln!("FAIL: a supervised recovery diverged from the unfaulted baseline");
        std::process::exit(1);
    }

    if smoke {
        // Regression gate: recovery overhead against the checked-in floor.
        // A faulted campaign re-runs one epoch, so some overhead is
        // structural; the gate catches recovery suddenly re-running far
        // more than it should (tolerance 2x — wall clock is noisy and the
        // numerator is a single-campaign mean).
        match std::fs::read_to_string("results/BENCH_supervision_floor.json")
            .ok()
            .and_then(|s| json_number(&s, "smoke_recovery_overhead_ratio"))
        {
            Some(floor) => {
                let max = floor * 2.0;
                if overhead > max {
                    eprintln!(
                        "FAIL: recovery overhead {overhead:.2}x exceeds twice the checked-in \
                         floor {floor:.2}x (maximum {max:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!(
                    "Floor check passed: overhead {overhead:.2}x <= 2x floor {floor:.2}x."
                );
            }
            None => {
                eprintln!(
                    "(no results/BENCH_supervision_floor.json floor found; skipping overhead gate)"
                );
            }
        }
    }
}
