//! Regenerates **Figure 3**: the GlobalPass section transformation —
//! section layout of a target before and after the pass.

use fir::Section;

fn section_census(m: &fir::Module) -> Vec<(Section, usize, u64)> {
    [
        Section::Rodata,
        Section::Data,
        Section::Bss,
        Section::ClosureGlobal,
    ]
    .into_iter()
    .map(|s| {
        let gs: Vec<_> = m.globals.iter().filter(|g| g.section == s).collect();
        (s, gs.len(), gs.iter().map(|g| g.size).sum())
    })
    .collect()
}

fn print_census(title: &str, m: &fir::Module) {
    println!("{title}");
    for (s, n, bytes) in section_census(m) {
        println!("  {:<24} {n:>3} globals, {bytes:>6} bytes", s.name());
    }
}

fn main() {
    let t = targets::by_name("giftext").expect("registered");
    let before = t.module();
    let mut after = before.clone();
    let report = passes::manager::PassManager::new()
        .add(passes::GlobalPass)
        .run(&mut after)
        .expect("pass runs");
    println!("Figure 3: the transformation performed by ClosureX's Global pass\n");
    print_census("Before GlobalPass:", &before);
    print_census("After GlobalPass:", &after);
    println!("\n{}", report[0].summary);
}
