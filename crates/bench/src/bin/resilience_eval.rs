//! **Resilience evaluation**: sweep a deterministic fault plan over the
//! executor continuum and show that ClosureX *self-heals* — detecting
//! corrupted restores, quarantining inputs, respawning from the pristine
//! template, and degrading to fork-per-exec when the substrate stays
//! hostile — while naive persistence silently accumulates false crashes.
//!
//! Injected faults (see `vmos::fault`): malloc-null, fopen-fail,
//! fork-fail, post-restore global-section bit flips, and fd-table leaks,
//! each fired with the same per-roll probability. Writes
//! `results/resilience_eval.json`.

use aflrs::{Campaign, CampaignConfig, CampaignResult};
use bench::{budget, Mechanism};
use closurex::executor::Executor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::naive::NaivePersistentExecutor;
use serde::Serialize;
use vmos::FaultPlan;

/// Per-roll fault probabilities swept (0.0 = control).
const RATES: [f64; 4] = [0.0, 0.001, 0.005, 0.02];

/// One plain (uncheckpointed, unkillable) campaign through the builder.
fn run(ex: &mut dyn Executor, seeds: &[Vec<u8>], cfg: &CampaignConfig) -> CampaignResult {
    Campaign::new(seeds, cfg)
        .executor(ex)
        .run()
        .expect("plain campaign config is always valid")
        .finished()
        .expect("no kill configured")
}

#[derive(Serialize)]
struct Row {
    target: String,
    mechanism: String,
    fault_rate: f64,
    /// Trial ran to budget without panicking the host.
    completed: bool,
    execs: u64,
    clock_cycles: u64,
    crashes: usize,
    /// Resource-exhaustion crashes — false positives under persistence.
    false_crashes: usize,
    respawns: u64,
    divergences: u64,
    integrity_checks: u64,
    quarantined: u64,
    /// Quarantined inputs evicted past the ring cap (retained set is a
    /// sample when nonzero).
    quarantine_dropped: u64,
    harness_faults: u64,
    retries: u64,
    dropped_inputs: u64,
    watchdog_trips: u64,
    degradation: String,
}

fn run_cell(target: &targets::TargetSpec, mech: Mechanism, rate: f64, budget: u64) -> Row {
    let cfg = CampaignConfig {
        budget_cycles: budget,
        seed: 0xFA017,
        deterministic_stage: false,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    };
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ex = mech.executor(target);
        ex.inject_faults(FaultPlan::uniform(0xDEAD ^ rate.to_bits(), rate));
        let seeds = (target.seeds)();
        run(ex.as_mut(), &seeds, &cfg)
    }));
    match out {
        Ok(r) => Row {
            target: target.name.to_string(),
            mechanism: mech.name().to_string(),
            fault_rate: rate,
            completed: r.clock_cycles >= budget
                || !r.crashes.is_empty()
                || r.execs > 0 && r.resilience.dropped_inputs == 0,
            execs: r.execs,
            clock_cycles: r.clock_cycles,
            crashes: r.crashes.len(),
            false_crashes: r.false_crashes(),
            respawns: r.resilience.executor.respawns,
            divergences: r.resilience.executor.divergences,
            integrity_checks: r.resilience.executor.integrity_checks,
            quarantined: r.resilience.executor.quarantined,
            quarantine_dropped: r.resilience.executor.quarantine_dropped,
            harness_faults: r.resilience.harness_faults,
            retries: r.resilience.retries,
            dropped_inputs: r.resilience.dropped_inputs,
            watchdog_trips: r.resilience.watchdog_trips,
            degradation: r.resilience.degradation().name().to_string(),
        },
        Err(_) => Row {
            target: target.name.to_string(),
            mechanism: mech.name().to_string(),
            fault_rate: rate,
            completed: false,
            execs: 0,
            clock_cycles: 0,
            crashes: 0,
            false_crashes: 0,
            respawns: 0,
            divergences: 0,
            integrity_checks: 0,
            quarantined: 0,
            quarantine_dropped: 0,
            harness_faults: 0,
            retries: 0,
            dropped_inputs: 0,
            watchdog_trips: 0,
            degradation: "panicked".into(),
        },
    }
}

/// A target that never crashes on its own: every crash recorded against it
/// is the harness's fault, making leak accumulation cleanly measurable.
const QUIET_TARGET: &str = r#"
    fn main() {
        var f = fopen("/fuzz/input", 0);
        if (f == 0) { exit(1); }
        var buf[16];
        var n = fread(buf, 1, 16, f);
        fclose(f);
        if (n > 8) { return 1; }
        return 0;
    }
"#;

/// Descriptor-leak stress: only `fclose` misbehaves, at a rate high enough
/// to exhaust the fd table within one campaign. Naive persistence marches
/// into `FdExhaustion` false crashes; ClosureX's fd census flags the leaked
/// slot as a restore divergence and respawns before the limit is near.
fn run_leak_stress(budget: u64) -> Vec<Row> {
    let m = minic::compile("quiet", QUIET_TARGET).expect("quiet target compiles");
    let plan = FaultPlan {
        seed: 0xFD,
        fd_leak: 0.25,
        ..FaultPlan::none()
    };
    let cfg = CampaignConfig {
        budget_cycles: budget,
        seed: 0xFA017,
        deterministic_stage: false,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    };
    let seeds = vec![b"stress".to_vec()];
    let mut rows = Vec::new();
    let mut executors: Vec<(&str, Box<dyn Executor>)> = vec![
        (
            Mechanism::ClosureX.name(),
            Box::new(ClosureXExecutor::new(&m, ClosureXConfig::default()).expect("instrument")),
        ),
        (
            Mechanism::NaivePersistent.name(),
            Box::new(NaivePersistentExecutor::new(&m).expect("instrument")),
        ),
    ];
    for (label, ex) in &mut executors {
        ex.inject_faults(plan.clone());
        let r = run(ex.as_mut(), &seeds, &cfg);
        let false_hits: u64 = r
            .crashes
            .iter()
            .filter(|c| c.crash.kind.is_resource_exhaustion())
            .map(|c| c.hits)
            .sum();
        eprintln!(
            "  fd-leak stress / {}: execs={} false_crash_hits={false_hits} \
             divergences={} respawns={} degr={}",
            r.executor,
            r.execs,
            r.resilience.executor.divergences,
            r.resilience.executor.respawns,
            r.resilience.degradation().name()
        );
        rows.push(Row {
            target: "quiet (fd-leak stress)".into(),
            mechanism: label.to_string(),
            fault_rate: plan.fd_leak,
            completed: r.clock_cycles >= budget,
            execs: r.execs,
            clock_cycles: r.clock_cycles,
            crashes: r.crashes.len(),
            false_crashes: r.false_crashes().max(false_hits as usize),
            respawns: r.resilience.executor.respawns,
            divergences: r.resilience.executor.divergences,
            integrity_checks: r.resilience.executor.integrity_checks,
            quarantined: r.resilience.executor.quarantined,
            quarantine_dropped: r.resilience.executor.quarantine_dropped,
            harness_faults: r.resilience.harness_faults,
            retries: r.resilience.retries,
            dropped_inputs: r.resilience.dropped_inputs,
            watchdog_trips: r.resilience.watchdog_trips,
            degradation: r.resilience.degradation().name().to_string(),
        });
    }
    rows
}

fn main() {
    let budget = budget();
    println!("Resilience evaluation: fault-injection sweep (budget = {budget} cycles)\n");
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();
    // The sweep grid is embarrassingly parallel: every cell builds its own
    // executor and fault plane from (target, mechanism, rate) alone. Fan the
    // cells out across threads and join in spawn order so rows, the table,
    // and the JSON report come back in the same order as the serial loop.
    let cells: Vec<(&targets::TargetSpec, Mechanism, f64)> = targets::all()
        .into_iter()
        .take(3)
        .flat_map(|t| {
            RATES.iter().flat_map(move |&rate| {
                [Mechanism::ClosureX, Mechanism::NaivePersistent]
                    .into_iter()
                    .map(move |mech| (t, mech, rate))
            })
        })
        .collect();
    let cell_rows: Vec<Row> = std::thread::scope(|s| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(t, mech, rate)| s.spawn(move || run_cell(t, mech, rate, budget)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run_cell catches target panics itself"))
            .collect()
    });
    for row in cell_rows {
        eprintln!(
            "  {} / {} @ {}: execs={} respawns={} divergences={} \
             false_crashes={} faults={} degr={}",
            row.target,
            row.mechanism,
            row.fault_rate,
            row.execs,
            row.respawns,
            row.divergences,
            row.false_crashes,
            row.harness_faults,
            row.degradation
        );
        table.push(vec![
            row.target.clone(),
            row.mechanism.clone(),
            format!("{}", row.fault_rate),
            row.execs.to_string(),
            row.respawns.to_string(),
            row.divergences.to_string(),
            format!("{} (-{})", row.quarantined, row.quarantine_dropped),
            row.false_crashes.to_string(),
            row.degradation.clone(),
        ]);
        rows.push(row);
    }
    for row in run_leak_stress(budget) {
        table.push(vec![
            row.target.clone(),
            row.mechanism.clone(),
            format!("{}", row.fault_rate),
            row.execs.to_string(),
            row.respawns.to_string(),
            row.divergences.to_string(),
            format!("{} (-{})", row.quarantined, row.quarantine_dropped),
            row.false_crashes.to_string(),
            row.degradation.clone(),
        ]);
        rows.push(row);
    }
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Target",
                "Mechanism",
                "Fault rate",
                "Execs",
                "Respawns",
                "Divergences",
                "Quarantined (evicted)",
                "False crashes",
                "Degradation",
            ],
            &table
        )
    );

    // Headline: under injected faults ClosureX keeps executing (and heals
    // via respawns) while naive persistence pollutes its crash buckets.
    fn faulted<'a>(rows: &'a [Row], m: &'a str) -> impl Iterator<Item = &'a Row> {
        rows.iter()
            .filter(move |r| r.mechanism == m && r.fault_rate > 0.0)
    }
    let cx_respawns: u64 = faulted(&rows, "ClosureX").map(|r| r.respawns).sum();
    let cx_completed = faulted(&rows, "ClosureX").all(|r| r.completed);
    let naive_false: usize = faulted(&rows, "naive-persistent")
        .map(|r| r.false_crashes)
        .sum();
    let naive_dead = faulted(&rows, "naive-persistent")
        .filter(|r| !r.completed)
        .count();
    println!(
        "\nClosureX under faults: all trials completed = {cx_completed}, \
         total respawns = {cx_respawns}."
    );
    println!(
        "Naive persistence under faults: {naive_false} false crashes, \
         {naive_dead} trials failed to complete."
    );
    bench::write_report("resilience_eval", &rows);
}
