//! Regenerates **Table 3**: the ClosureX passes and their functionality,
//! straight from the registered pipeline (not hard-coded prose).

fn main() {
    let pm = passes::pipelines::closurex_pipeline();
    println!("Table 3: CLOSUREX passes\n");
    let rows: Vec<Vec<String>> = passes::pipelines::table3()
        .into_iter()
        .map(|(name, what)| vec![name.to_string(), what.to_string()])
        .collect();
    print!(
        "{}",
        bench::markdown_table(&["CLOSUREX Pass", "Functionality"], &rows)
    );
    println!("\nRegistered pipeline order: {:?}", pm.pass_names());
    println!("(CoveragePass is shared with the AFL++ baseline build.)");
}
