//! Regenerates the paper's **§6.1.4 correctness evaluation**: dataflow and
//! control-flow equivalence of ClosureX executions against fresh-process
//! ground truth, over fuzzing queues, with pollution and non-determinism
//! masking.

use bench::{budget, run_trials, Mechanism};
use closurex::correctness::check_queue;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    queue_entries: usize,
    dataflow_ok: usize,
    controlflow_ok: usize,
    heap_clean: usize,
    masked_bytes_max: usize,
    all_ok: bool,
}

fn main() {
    // Pollution count: paper uses 1000 iterations; scale via env.
    let pollution: usize = std::env::var("CLOSUREX_POLLUTION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    println!("Correctness evaluation (pollution = {pollution} prior inputs per check)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for t in targets::all() {
        // Build a queue with a short ClosureX campaign, like the paper
        // accumulating a fuzzing queue.
        let results = run_trials(t, Mechanism::ClosureX, budget() / 4);
        let mut queue = results[0].queue_inputs.clone();
        queue.truncate(12); // keep the check fast; every entry is checked
        let module = t.module();
        let report =
            check_queue(&module, &queue, pollution, 0xBEEF, 3_000_000).expect("instrumentation");
        let df = report.inputs.iter().filter(|i| i.dataflow_ok).count();
        let cf = report.inputs.iter().filter(|i| i.controlflow_ok).count();
        let hc = report.inputs.iter().filter(|i| i.heap_clean).count();
        let mm = report
            .inputs
            .iter()
            .map(|i| i.masked_bytes)
            .max()
            .unwrap_or(0);
        let ok = report.all_ok();
        rows.push(vec![
            t.name.to_string(),
            format!("{}", report.inputs.len()),
            format!("{df}/{}", report.inputs.len()),
            format!("{cf}/{}", report.inputs.len()),
            format!("{hc}/{}", report.inputs.len()),
            format!("{mm}"),
            if ok { "PASS".into() } else { "FAIL".into() },
        ]);
        json.push(Row {
            benchmark: t.name.to_string(),
            queue_entries: report.inputs.len(),
            dataflow_ok: df,
            controlflow_ok: cf,
            heap_clean: hc,
            masked_bytes_max: mm,
            all_ok: ok,
        });
        eprintln!("  {} {}", t.name, if ok { "PASS" } else { "FAIL" });
    }
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Benchmark",
                "queue",
                "dataflow",
                "control-flow",
                "heap clean",
                "masked bytes",
                "verdict"
            ],
            &rows
        )
    );
    println!("\nPaper: all targets, all queue entries equivalent to fresh-process execution.");
    bench::write_report("correctness_eval", &json);
}
