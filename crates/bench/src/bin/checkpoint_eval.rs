//! **Checkpoint/resume torture evaluation**: prove that crash-safe
//! campaign checkpointing is *invisible* — a campaign killed at arbitrary
//! execution boundaries (even repeatedly, even with its newest snapshot
//! corrupted or torn) and resumed produces a byte-identical
//! `CampaignResult` to the same campaign run uninterrupted.
//!
//! Scenarios:
//!
//! 1. **Overhead check** — checkpointed-but-never-killed vs a plain
//!    un-checkpointed campaign: identical (checkpoint I/O charges zero
//!    simulated cycles).
//! 2. **Single kill** — K seeded-random kill points, each killed once and
//!    resumed to completion.
//! 3. **Gauntlet** — one campaign killed at *all* K points in sequence,
//!    resumed after each (resume-of-a-resume must chain journals
//!    correctly).
//! 4. **Corruption drill** — kill, then flip a bit in / truncate the
//!    newest snapshot: resume must fall back to the previous snapshot,
//!    chain the journals across the gap, and still match — no panic.
//!
//! Every scenario runs with crash revalidation wired to a fresh-process
//! executor, so the revalidation replay stream is part of what must be
//! reproduced. Writes `results/checkpoint_eval.json`; exits nonzero on
//! any mismatch (this is a correctness gate, not a benchmark).
//!
//! `--smoke` shrinks the budget and kill count for CI.

use std::path::{Path, PathBuf};

use aflrs::{
    Campaign, CampaignConfig, CampaignError, CampaignOutcome, CampaignResult, CheckpointConfig,
    ResumeReport,
};
use closurex::fresh::FreshProcessExecutor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A stateful magic-guarded target: global accumulation gives persistent
/// mode something to restore, the planted null deref gives revalidation a
/// genuine crash to confirm.
const TARGET: &str = r#"
    global total;
    fn main() {
        var f = fopen("/fuzz/input", 0);
        if (f == 0) { exit(1); }
        var buf[32];
        var n = fread(buf, 1, 32, f);
        fclose(f);
        if (n < 4) { exit(2); }
        if (load8(buf) == 'F') {
            if (load8(buf + 1) == 'U') {
                if (load8(buf + 2) == 'Z') {
                    if (load8(buf + 3) == 'Z') {
                        return load64(0); // planted crash
                    }
                    return 3;
                }
                return 2;
            }
            return 1;
        }
        total = total + n;
        return 0;
    }
"#;

#[derive(Serialize)]
struct Trial {
    scenario: String,
    /// Execution counts the campaign was killed at, in order.
    kills: Vec<u64>,
    /// Snapshot the final resume started from.
    snapshot_execs: u64,
    /// Journal records the final resume replayed.
    records_applied: u64,
    corrupt_snapshots_skipped: u64,
    /// Journal records dropped to torn/corrupt tails across all legs.
    torn_records: u64,
    /// The gate: final result byte-identical to the uninterrupted run.
    matched: bool,
    panicked: bool,
}

fn fingerprint(r: &CampaignResult) -> String {
    // Storage counters record how the run was stored (snapshots scrubbed,
    // repaired, torn records dropped), not what it computed — a resume that
    // repaired a corrupt snapshot must still count as byte-identical.
    serde_json::to_string(&r.sans_storage().sans_resume()).expect("result serializes")
}

struct Lab {
    module: fir::Module,
    cfg: CampaignConfig,
    seeds: Vec<Vec<u8>>,
    scratch: PathBuf,
}

impl Lab {
    fn executor(&self) -> ClosureXExecutor {
        ClosureXExecutor::new(&self.module, ClosureXConfig::default()).expect("instrument")
    }

    fn revalidator(&self) -> FreshProcessExecutor {
        FreshProcessExecutor::new(&self.module).expect("instrument")
    }

    fn dir(&self, tag: &str) -> PathBuf {
        let d = self.scratch.join(tag);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// One checkpointed campaign leg from scratch.
    fn run_checkpointed(&self, ck: &CheckpointConfig) -> Result<CampaignOutcome, CampaignError> {
        let mut ex = self.executor();
        let mut rv = self.revalidator();
        Campaign::new(&self.seeds, &self.cfg)
            .executor(&mut ex)
            .revalidator(&mut rv)
            .checkpoint(ck.clone())
            .run()
    }

    /// One resume leg from the checkpoint directory.
    fn resume(&self, ck: &CheckpointConfig) -> Result<(CampaignOutcome, ResumeReport), CampaignError> {
        let mut ex = self.executor();
        let mut rv = self.revalidator();
        Campaign::new(&self.seeds, &self.cfg)
            .executor(&mut ex)
            .revalidator(&mut rv)
            .checkpoint(ck.clone())
            .resume()
    }

    /// Run to completion through a kill sequence: kill at each point in
    /// `kills` (ascending), resuming after each, then resume to the end.
    /// Returns the final result, the last leg's resume info, and whether
    /// any leg panicked.
    fn run_gauntlet(
        &self,
        ck: &CheckpointConfig,
        kills: &[u64],
    ) -> (Option<CampaignResult>, ResumeReport, bool) {
        let mut ck = ck.clone();
        let mut info = ResumeReport::default();
        let mut started = false;
        for &k in kills {
            ck.kill_after_execs = Some(k);
            let leg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if started {
                    self.resume(&ck)
                } else {
                    self.run_checkpointed(&ck).map(|o| (o, ResumeReport::default()))
                }
            }));
            started = true;
            match leg {
                Ok(Ok((CampaignOutcome::Killed { .. }, i))) => info = i,
                // The campaign finished before this kill point fired.
                Ok(Ok((CampaignOutcome::Finished(r), i))) => return (Some(r), i, false),
                Ok(Err(e)) => {
                    eprintln!("  leg failed: {e}");
                    return (None, info, false);
                }
                Err(_) => return (None, info, true),
            }
        }
        ck.kill_after_execs = None;
        let last = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.resume(&ck)));
        match last {
            Ok(Ok((outcome, i))) => (outcome.finished(), i, false),
            Ok(Err(e)) => {
                eprintln!("  final resume failed: {e}");
                (None, info, false)
            }
            Err(_) => (None, info, true),
        }
    }
}

/// Newest `ckpt-*.bin` in a checkpoint directory.
fn newest_snapshot(dir: &Path) -> Option<PathBuf> {
    std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
        })
        .max()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { 3_000_000 } else { bench::budget() };
    let n_kills = if smoke { 2 } else { 6 };
    let snapshot_every = if smoke { 40 } else { 150 };

    let lab = Lab {
        module: minic::compile("magic", TARGET).expect("target compiles"),
        cfg: CampaignConfig {
            budget_cycles: budget,
            seed: 0x5EED,
            revalidate_crashes: true,
            ..CampaignConfig::default()
        },
        seeds: vec![b"FUZA".to_vec(), b"hello".to_vec()],
        scratch: std::env::temp_dir().join(format!("closurex-ckpt-eval-{}", std::process::id())),
    };
    let mut ck0 = CheckpointConfig::new(lab.scratch.join("unused"));
    ck0.snapshot_every_execs = snapshot_every;

    println!(
        "Checkpoint/resume torture evaluation (budget = {budget} cycles, \
         {n_kills} kill points, snapshot every {snapshot_every} execs)\n"
    );

    // The ground truth: one uninterrupted, uncheckpointed campaign.
    let reference = {
        let mut ex = lab.executor();
        let mut rv = lab.revalidator();
        Campaign::new(&lab.seeds, &lab.cfg)
            .executor(&mut ex)
            .revalidator(&mut rv)
            .run()
            .expect("plain campaign config is always valid")
            .finished()
            .expect("no kill configured")
    };
    let want = fingerprint(&reference);
    eprintln!(
        "  reference: execs={} edges={} crashes={} clock={}",
        reference.execs,
        reference.edges_found,
        reference.crashes.len(),
        reference.clock_cycles
    );

    let mut trials: Vec<Trial> = Vec::new();
    let mut table = Vec::new();
    let mut record = |t: Trial| {
        table.push(vec![
            t.scenario.clone(),
            format!("{:?}", t.kills),
            t.snapshot_execs.to_string(),
            t.records_applied.to_string(),
            t.corrupt_snapshots_skipped.to_string(),
            t.torn_records.to_string(),
            if t.matched { "yes".into() } else { "NO".into() },
        ]);
        trials.push(t);
    };

    // 1. Checkpointing overhead must be invisible.
    {
        let mut ck = ck0.clone();
        ck.dir = lab.dir("overhead");
        let out = lab
            .run_checkpointed(&ck)
            .expect("checkpointed run")
            .finished()
            .expect("no kill configured");
        record(Trial {
            scenario: "uninterrupted+checkpointing".into(),
            kills: vec![],
            snapshot_execs: 0,
            records_applied: 0,
            corrupt_snapshots_skipped: 0,
            torn_records: 0,
            matched: fingerprint(&out) == want,
            panicked: false,
        });
    }

    // 2. Single kill at each seeded-random point.
    let mut rng = SmallRng::seed_from_u64(0xD1E);
    let horizon = reference.execs.max(2);
    let kill_points: Vec<u64> = (0..n_kills)
        .map(|_| rng.gen_range(1..horizon))
        .collect();
    for &k in &kill_points {
        let mut ck = ck0.clone();
        ck.dir = lab.dir(&format!("kill-{k}"));
        let (result, info, panicked) = lab.run_gauntlet(&ck, &[k]);
        record(Trial {
            scenario: "kill+resume".into(),
            kills: vec![k],
            snapshot_execs: info.snapshot_execs,
            records_applied: info.records_applied,
            corrupt_snapshots_skipped: info.corrupt_snapshots_skipped,
            torn_records: info.torn_records,
            matched: result.as_ref().is_some_and(|r| fingerprint(r) == want),
            panicked,
        });
    }

    // 3. The gauntlet: all kill points in one campaign, in order.
    {
        let mut ck = ck0.clone();
        ck.dir = lab.dir("gauntlet");
        let mut kills = kill_points.clone();
        kills.sort_unstable();
        kills.dedup();
        let (result, info, panicked) = lab.run_gauntlet(&ck, &kills);
        record(Trial {
            scenario: "gauntlet (sequential kills)".into(),
            kills,
            snapshot_execs: info.snapshot_execs,
            records_applied: info.records_applied,
            corrupt_snapshots_skipped: info.corrupt_snapshots_skipped,
            torn_records: info.torn_records,
            matched: result.as_ref().is_some_and(|r| fingerprint(r) == want),
            panicked,
        });
    }

    // 4. Corruption drills: damage the newest snapshot after a kill; the
    //    resume must fall back and still match, without panicking.
    for (tag, damage) in [
        ("bit-flip", 0u8),
        ("truncate", 1u8),
    ] {
        let k = horizon * 2 / 3;
        let mut ck = ck0.clone();
        ck.dir = lab.dir(&format!("corrupt-{tag}"));
        ck.kill_after_execs = Some(k.max(1));
        let _ = lab.run_checkpointed(&ck).expect("checkpointed run");
        if let Some(path) = newest_snapshot(&ck.dir) {
            let bytes = std::fs::read(&path).expect("snapshot readable");
            let mutated = if damage == 0 {
                let mut b = bytes;
                let mid = b.len() / 2;
                b[mid] ^= 0x10;
                b
            } else {
                bytes[..bytes.len() / 3].to_vec()
            };
            std::fs::write(&path, mutated).expect("snapshot writable");
        }
        ck.kill_after_execs = None;
        let resumed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| lab.resume(&ck)));
        let (result, info, panicked) = match resumed {
            Ok(Ok((outcome, i))) => (outcome.finished(), i, false),
            Ok(Err(e)) => {
                eprintln!("  corrupt-{tag} resume failed: {e}");
                (None, ResumeReport::default(), false)
            }
            Err(_) => (None, ResumeReport::default(), true),
        };
        record(Trial {
            scenario: format!("corrupt newest snapshot ({tag})"),
            kills: vec![k.max(1)],
            snapshot_execs: info.snapshot_execs,
            records_applied: info.records_applied,
            corrupt_snapshots_skipped: info.corrupt_snapshots_skipped,
            torn_records: info.torn_records,
            matched: result.as_ref().is_some_and(|r| fingerprint(r) == want),
            panicked,
        });
    }

    print!(
        "{}",
        bench::markdown_table(
            &[
                "Scenario",
                "Kills (execs)",
                "Resume snapshot",
                "Records replayed",
                "Snapshots skipped",
                "Torn records",
                "Identical result",
            ],
            &table
        )
    );

    let failures = trials.iter().filter(|t| !t.matched || t.panicked).count();
    let skipped: u64 = trials.iter().map(|t| t.corrupt_snapshots_skipped).sum();
    println!(
        "\n{}/{} scenarios reproduced the uninterrupted result exactly; \
         {skipped} corrupt snapshot(s) skipped, 0 tolerated panics.",
        trials.len() - failures,
        trials.len()
    );
    bench::write_report("checkpoint_eval", &trials);
    let _ = std::fs::remove_dir_all(&lab.scratch);
    if failures > 0 {
        eprintln!("FAIL: {failures} scenario(s) diverged from the uninterrupted campaign");
        std::process::exit(1);
    }
}
