//! Regenerates the paper's **§3 motivation**: naive persistent fuzzing is
//! semantically inconsistent. Every crash a campaign reports is re-executed
//! in a fresh process; crashes that do not reproduce are *false crashes*
//! caused by residual state from earlier test cases.

use bench::{budget, run_trials, Mechanism};
use closurex::executor::Executor;
use closurex::fresh::FreshProcessExecutor;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    mechanism: String,
    execs: u64,
    confirmed_crash_sites: usize,
    false_crash_sites: usize,
}

fn main() {
    println!("Motivation: semantic inconsistency of naive persistent mode");
    println!("(a crash is FALSE if its input does not crash a fresh process)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for name in ["gpmf-parser", "giftext", "libbpf", "c-blosc2"] {
        let t = targets::by_name(name).expect("registered");
        let module = t.module();
        for m in [Mechanism::NaivePersistent, Mechanism::ClosureX] {
            let results = run_trials(t, m, budget());
            let execs: u64 = results.iter().map(|r| r.execs).sum::<u64>() / results.len() as u64;
            let mut confirmed = std::collections::HashSet::new();
            let mut false_sites = std::collections::HashSet::new();
            let mut fresh = FreshProcessExecutor::new(&module).expect("instrument");
            for r in &results {
                for c in &r.crashes {
                    let replay = fresh.run(&c.input);
                    match replay.status.crash() {
                        Some(rc) if rc.site_key() == c.crash.site_key() => {
                            confirmed.insert(c.crash.site_key());
                        }
                        _ => {
                            false_sites.insert(c.crash.site_key());
                        }
                    }
                }
            }
            rows.push(vec![
                t.name.to_string(),
                m.name().to_string(),
                format!("{execs}"),
                format!("{}", confirmed.len()),
                format!("{}", false_sites.len()),
            ]);
            json.push(Row {
                benchmark: t.name.to_string(),
                mechanism: m.name().to_string(),
                execs,
                confirmed_crash_sites: confirmed.len(),
                false_crash_sites: false_sites.len(),
            });
        }
        eprintln!("  {name} done");
    }
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Benchmark",
                "Mechanism",
                "execs/trial",
                "confirmed crash sites",
                "FALSE crash sites"
            ],
            &rows
        )
    );
    println!("\nNaive persistent mode reports crashes that vanish on re-execution (wasted");
    println!("triage) — fd starvation, heap exhaustion, stale flags. Every ClosureX crash");
    println!("reproduces, because every test case ran from fresh-equivalent state.");
    bench::write_report("motivation_stale_state", &json);
}
