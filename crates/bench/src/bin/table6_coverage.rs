//! Regenerates **Table 6**: edge coverage after the budget, ClosureX vs
//! AFL++ forkserver, with % improvement and Mann-Whitney p.

use bench::{budget, mean, p_value, run_trials, total_cfg_edges, Mechanism};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    closurex_cov_pct: f64,
    aflpp_cov_pct: f64,
    improvement_pct: f64,
    p_value: f64,
}

fn main() {
    let budget = budget();
    println!("Table 6: edge coverage percentage (budget = {budget} cycles, 5 trials)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut improvements = Vec::new();
    for t in targets::all() {
        let denom = total_cfg_edges(t) as f64;
        let cx = run_trials(t, Mechanism::ClosureX, budget);
        let afl = run_trials(t, Mechanism::ForkServer, budget);
        let cov = |rs: &[aflrs::CampaignResult]| {
            mean(
                &rs.iter()
                    .map(|r| r.edges_found as f64 / denom * 100.0)
                    .collect::<Vec<_>>(),
            )
        };
        let c = cov(&cx);
        let a = cov(&afl);
        let imp = if a > 0.0 { (c - a) / a * 100.0 } else { 0.0 };
        let p = p_value(&cx, &afl, |r| r.edges_found as f64);
        improvements.push(imp);
        rows.push(vec![
            t.name.to_string(),
            format!("{c:.2}%"),
            format!("{a:.2}%"),
            format!("{imp:.2}"),
            format!("{p:.3}"),
        ]);
        json.push(Row {
            benchmark: t.name.to_string(),
            closurex_cov_pct: c,
            aflpp_cov_pct: a,
            improvement_pct: imp,
            p_value: p,
        });
        eprintln!("  {} done (+{imp:.1}%)", t.name);
    }
    let avg: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    rows.push(vec![
        "**Average**".into(),
        String::new(),
        String::new(),
        format!("**{avg:.2}**"),
        String::new(),
    ]);
    print!(
        "{}",
        bench::markdown_table(
            &["Benchmark", "CLOSUREX", "AFL++", "% Improvement", "p value"],
            &rows
        )
    );
    println!("\nPaper: average +7.8%, significant on 5/10 benchmarks.");
    bench::write_report("table6_coverage", &json);
}
