//! Ablation of ClosureX's restoration components (DESIGN.md §4): disable
//! each piece and observe correctness or cost consequences.

use closurex::executor::{ExecStatus, Executor};
use closurex::harness::{ClosureXConfig, ClosureXExecutor, RestoreStrategy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    consistent: bool,
    avg_restore_cycles: f64,
}

fn run_variant(name: &str, cfg: ClosureXConfig) -> Row {
    let src = r#"
        global count;
        global big_table[2048];
        fn main() {
            count = count + 1;
            store8(big_table + (count % 2048), count & 255);
            var p = malloc(64);
            store8(p, 1);
            return count;  // 1 every time iff state restoration works
        }
    "#;
    let module = minic::compile("ablate", src).expect("compiles");
    let mut ex = ClosureXExecutor::new(&module, cfg).expect("instrument");
    let mut consistent = true;
    let mut restore_total = 0u64;
    let n = 50;
    for _ in 0..n {
        let out = ex.run(b"x");
        restore_total += ex.last_restore().cycles;
        if out.status != ExecStatus::Exit(1) {
            consistent = false;
        }
    }
    Row {
        variant: name.to_string(),
        consistent,
        avg_restore_cycles: restore_total as f64 / f64::from(n),
    }
}

fn main() {
    println!("Ablation: ClosureX restoration components\n");
    let base = ClosureXConfig::default();
    let variants = vec![
        ("full restore (paper design)", base.clone()),
        (
            "dirty-only global restore",
            ClosureXConfig {
                restore_strategy: RestoreStrategy::DirtyOnly,
                ..base.clone()
            },
        ),
        (
            "no global restore",
            ClosureXConfig {
                global_restore: false,
                ..base.clone()
            },
        ),
        (
            "no heap sweep",
            ClosureXConfig {
                heap_sweep: false,
                ..base.clone()
            },
        ),
        (
            "no fd sweep",
            ClosureXConfig {
                fd_sweep: false,
                ..base
            },
        ),
    ];
    let rows: Vec<Row> = variants
        .into_iter()
        .map(|(n, c)| run_variant(n, c))
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                if r.consistent {
                    "yes".into()
                } else {
                    "NO — stale state".into()
                },
                format!("{:.0}", r.avg_restore_cycles),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &["Variant", "semantically consistent", "avg restore cycles"],
            &table
        )
    );
    println!("\nDirty-only restore trades a scan for fewer writes; disabling any sweep");
    println!("reintroduces exactly the inconsistency class it guards against.");
    bench::write_report("ablation_restore", &rows);
}
