//! Regenerates **Table 4**: the benchmark inventory with input formats and
//! executable sizes, measured from the compiled FIR images.

use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    input_format: String,
    executable_size_bytes: u64,
    executable_size: String,
    functions: usize,
    instructions: usize,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for t in targets::all() {
        let m = t.module();
        let size = fir::image::image_size(&m);
        json.push(Row {
            benchmark: t.name.to_string(),
            input_format: t.input_format.to_string(),
            executable_size_bytes: size,
            executable_size: fir::image::human_size(size),
            functions: m.functions.len(),
            instructions: m.inst_count(),
        });
        rows.push(vec![
            t.name.to_string(),
            t.input_format.to_string(),
            fir::image::human_size(size),
        ]);
    }
    println!("Table 4: Evaluation benchmarks\n");
    print!(
        "{}",
        bench::markdown_table(&["Benchmark", "Input Format", "Executable Size"], &rows)
    );
    bench::write_report("table4_benchmarks", &json);
}
