//! Regenerates **Figure 4**: the ClosureX global resetting procedure —
//! snapshot, dirty execution, restore — observed live on a real target.

use closurex::executor::Executor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor};

fn main() {
    let t = targets::by_name("gpmf-parser").expect("registered");
    let module = t.module();
    let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("instrument");
    let (addr, size) = ex.section().expect("closure_global_section exists");
    println!("Figure 4: ClosureX global resetting procedure\n");
    println!("closure_global_section at {addr:#x}, {size} bytes (the CLOSURE_GLOBAL_SECTION_ADDR/SIZE analog)\n");

    let before = ex.process().expect("live").read_bytes(addr, size as usize);
    println!(
        "A) before execution: snapshot taken ({} bytes, {} non-zero)",
        before.len(),
        before.iter().filter(|&&b| b != 0).count()
    );

    // Run one test case and capture the dirty section before restore.
    let input = (t.seeds)()[0].clone();
    let (_out, captured) = ex.run_captured(&input, None, true);
    let dirty = captured.expect("captured");
    let dirty_bytes = before.iter().zip(&dirty).filter(|(a, b)| a != b).count();
    println!("B) during execution: target dirtied {dirty_bytes} bytes of the section");

    let after = ex.process().expect("live").read_bytes(addr, size as usize);
    println!(
        "C) after restore: section identical to snapshot = {}",
        after == before
    );
    println!("\nrestore stats: {:?}", ex.last_restore());
    assert_eq!(after, before, "restore must be exact");

    // And it holds across many polluted iterations.
    for s in (t.seeds)() {
        ex.run(&s);
    }
    let later = ex.process().expect("live").read_bytes(addr, size as usize);
    println!(
        "after 3 more test cases: still identical = {}",
        later == before
    );
}
