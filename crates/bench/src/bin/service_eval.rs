//! **Multi-tenant service evaluation**: the long-lived campaign server
//! must be *invisible* to campaign results and *amortized* on restart.
//!
//! Scenarios:
//!
//! 1. **Churn-identity grid** — on both execution engines (decoded
//!    bytecode and the AST-walking reference) and both worker shapes
//!    (`shards ∈ {1, 4}`), a service hosting two tenants (`giftext` and
//!    `gpmf-parser`) is killed abruptly mid-epoch (simulated SIGKILL with
//!    torn journal tails) at seeded kill points and restarted over the
//!    same directory. Every restored tenant must finish bit-identical
//!    (modulo the resume report) to the same campaign run uninterrupted
//!    through the single-campaign builder.
//! 2. **Restore-decodes-once** — a service hosting ≥100 same-target
//!    campaigns is killed and restored against a cold decoded-image
//!    cache. The decoded-image sidecar must make the whole restore pay
//!    **zero** module lowerings: exactly one sidecar deserialize, every
//!    other tenant a cache hit (asserted via [`vmos::decode_counters`]).
//! 3. **Scheduling overhead** — wall clock of one campaign through the
//!    service vs the same campaign through the builder. Within-run ratio
//!    (both legs share the host's noise phase).
//!
//! Writes `results/BENCH_service.json` (`_smoke` under `--smoke`). Smoke
//! mode gates the churn-identity rate (floor: 1.0), the decode-once
//! invariant, and the overhead ratio against twice the blessed ceiling
//! in `results/BENCH_service_floor.json`.

use aflrs::{
    Campaign, CampaignConfig, CampaignResult, CampaignSpec, Service, ServiceConfig, ServiceError,
    SpecResolver,
};
use bench::{json_number, Mechanism, MechanismFactory, MechanismResolver};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vmos::ReferenceEngineGuard;

const SMOKE_BUDGET: u64 = 1_500_000;
const RESTORE_BUDGET: u64 = 400_000;
const RESTORE_CAMPAIGNS: usize = 100;
/// Off every epoch barrier, so kills land mid-epoch with torn tails.
const KILL_POINTS: [u64; 3] = [97, 151, 233];

#[derive(Serialize)]
struct Cell {
    engine: &'static str,
    shards: usize,
    target: &'static str,
    kill_after_execs: u64,
    /// Executions journaled when the kill fired.
    killed_at: u64,
    /// Journal records replayed by the restore.
    resume_records: u64,
    /// Did the resume start from a warm decoded image (cache or sidecar)?
    decoded_ready: bool,
    /// The gate: restored result bit-identical to the uninterrupted
    /// builder run.
    identical: bool,
}

#[derive(Serialize)]
struct RestoreStory {
    campaigns: usize,
    /// Full lowerings paid across the whole restore (must be 0).
    lowered: u64,
    /// Sidecar deserializations (must be exactly 1).
    sidecar_loads: u64,
    cache_hits: u64,
    /// The gate: the whole fleet restored on one decode.
    decode_once: bool,
    restored_identical: usize,
}

#[derive(Serialize)]
struct Aggregate {
    grid_cells: usize,
    identical_cells: usize,
    churn_identity_rate: f64,
    builder_wall_secs: f64,
    service_wall_secs: f64,
    /// Service-hosted over builder-hosted wall clock for one campaign:
    /// what the scheduling layer costs when nothing goes wrong.
    service_overhead_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    cells: Vec<Cell>,
    restore: RestoreStory,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_resume()).expect("result serializes")
}

fn cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0x5EAF00D,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

fn factory_spec(target: &str) -> Vec<u8> {
    let mut w = vmos::Writer::new();
    w.put_u8(Mechanism::ClosureX.wire_tag());
    w.put_str(target);
    w.into_bytes()
}

fn corpus(target: &str) -> Vec<Vec<u8>> {
    let t = targets::by_name(target).expect("bundled target");
    let mut seeds = (t.seeds)();
    seeds.extend((t.witnesses)().into_iter().map(|(_, input)| input));
    seeds
}

fn spec(name: &str, target: &str, shards: usize, budget: u64) -> CampaignSpec {
    let mut s = CampaignSpec::new(name, factory_spec(target), corpus(target), cfg(budget));
    s.shards = shards;
    s
}

fn builder_reference(target: &str, budget: u64) -> CampaignResult {
    let t = targets::by_name(target).expect("bundled target");
    let factory = MechanismFactory::new(Mechanism::ClosureX, t);
    Campaign::new(&corpus(target), &cfg(budget))
        .factory(&factory)
        .run()
        .expect("reference campaign runs")
        .finished()
        .expect("no kill configured")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("closurex-service-eval-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One churn round: a two-tenant service killed at `kill_execs`,
/// restarted, every tenant compared against its uninterrupted reference.
fn churn_round(
    engine: &'static str,
    shards: usize,
    kill_execs: u64,
    budget: u64,
    references: &[(&'static str, String)],
) -> Vec<Cell> {
    let _guard = (engine == "reference").then(ReferenceEngineGuard::new);
    let dir = scratch(&format!("churn-{engine}-{shards}-{kill_execs}"));
    let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);

    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(kill_execs);
    let mut killed_at = Vec::new();
    {
        let service = Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts");
        let handles: Vec<_> = references
            .iter()
            .map(|(target, _)| {
                service
                    .submit(spec(target, target, shards, budget))
                    .expect("admission")
            })
            .collect();
        for h in &handles {
            match h.await_result() {
                Err(ServiceError::Killed { execs }) => killed_at.push(execs),
                other => panic!("{}: expected a killed campaign, got {other:?}", h.name()),
            }
        }
    }

    let service = Service::restore(ServiceConfig::new(&dir), resolver).expect("service restores");
    let cells = references
        .iter()
        .zip(&killed_at)
        .map(|((target, want), &killed)| {
            let h = service.handle(target).expect("restored tenant");
            let r = h.await_result().expect("restored campaign finishes");
            let report = r.resume.clone().unwrap_or_default();
            Cell {
                engine,
                shards,
                target,
                kill_after_execs: kill_execs,
                killed_at: killed,
                resume_records: report.records_applied,
                decoded_ready: report.decoded_image_ready,
                identical: &fingerprint(&r) == want,
            }
        })
        .collect();
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
    cells
}

/// The decoded-image checkpoint story at fleet scale: N same-target
/// campaigns killed, then restored against a cold cache on one worker
/// (serialized grants make the counter assertion exact).
fn restore_decodes_once(n: usize) -> RestoreStory {
    let dir = scratch("fleet");
    let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
    let want = fingerprint(&builder_reference("giftext", RESTORE_BUDGET));

    let mut churn_cfg = ServiceConfig::new(&dir);
    churn_cfg.kill_after_execs = Some(KILL_POINTS[0]);
    churn_cfg.max_campaigns = n;
    {
        let service = Service::new(churn_cfg, Arc::clone(&resolver)).expect("service starts");
        let handles: Vec<_> = (0..n)
            .map(|i| {
                service
                    .submit(spec(&format!("gif-{i:03}"), "giftext", 1, RESTORE_BUDGET))
                    .expect("admission")
            })
            .collect();
        for h in &handles {
            match h.await_result() {
                Err(ServiceError::Killed { .. }) => {}
                other => panic!("{}: expected a killed campaign, got {other:?}", h.name()),
            }
        }
    }

    // Simulate a server restart: cold decoded-image cache, zero counters.
    vmos::DecodedImage::cache_evict_all();
    vmos::reset_decode_counters();

    let mut restore_cfg = ServiceConfig::new(&dir);
    restore_cfg.workers = 1;
    let service = Service::restore(restore_cfg, resolver).expect("service restores");
    let restored_identical = service
        .handles()
        .iter()
        .filter(|h| {
            let r = h.await_result().expect("restored campaign finishes");
            fingerprint(&r) == want
        })
        .count();
    let decode = service.stats().decode;
    drop(service);
    let _ = std::fs::remove_dir_all(dir);
    RestoreStory {
        campaigns: n,
        lowered: decode.lowered,
        sidecar_loads: decode.sidecar_loads,
        cache_hits: decode.cache_hits,
        decode_once: decode.lowered == 0 && decode.sidecar_loads == 1,
        restored_identical,
    }
}

/// Wall clock of one campaign through the service vs through the builder.
/// Runs a longer campaign than the churn grid (the service's fixed costs
/// — thread spawn, resolver compile, spec I/O — must not dominate) and
/// takes the best of two trials per leg (robust to host noise spikes;
/// see the dual-floor gate below).
fn overhead(budget: u64) -> (f64, f64) {
    let budget = budget * 4;
    // Warm-up settles the decode cache on both paths.
    let _ = builder_reference("giftext", budget);
    let builder_secs = (0..2)
        .map(|_| {
            let start = Instant::now();
            let _ = builder_reference("giftext", budget);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let service_secs = (0..2)
        .map(|trial| {
            let dir = scratch(&format!("overhead-{trial}"));
            let resolver: Arc<dyn SpecResolver> = Arc::new(MechanismResolver);
            let start = Instant::now();
            let service =
                Service::new(ServiceConfig::new(&dir), resolver).expect("service starts");
            let h = service
                .submit(spec("solo", "giftext", 1, budget))
                .expect("admission");
            h.await_result().expect("service campaign finishes");
            let secs = start.elapsed().as_secs_f64();
            drop(service);
            let _ = std::fs::remove_dir_all(dir);
            secs
        })
        .fold(f64::INFINITY, f64::min);
    (builder_secs, service_secs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let mode = if smoke { "smoke" } else { "full" };
    let kill_points: &[u64] = if smoke { &KILL_POINTS[..1] } else { &KILL_POINTS };
    println!(
        "service_eval ({mode}): budget = {budget} cycles/campaign, \
         engines x shards {{1,4}} x {} kill point(s), \
         {RESTORE_CAMPAIGNS}-campaign restore\n",
        kill_points.len()
    );

    // Uninterrupted ground truth per (engine, target), via the builder.
    let mut cells = Vec::new();
    for engine in ["decoded", "reference"] {
        let references: Vec<(&'static str, String)> = {
            let _guard = (engine == "reference").then(ReferenceEngineGuard::new);
            ["giftext", "gpmf-parser"]
                .into_iter()
                .map(|t| (t, fingerprint(&builder_reference(t, budget))))
                .collect()
        };
        for shards in [1usize, 4] {
            for &kill in kill_points {
                cells.extend(churn_round(engine, shards, kill, budget, &references));
            }
        }
    }
    let identical = cells.iter().filter(|c| c.identical).count();
    let rate = identical as f64 / cells.len() as f64;
    for c in cells.iter().filter(|c| !c.identical) {
        eprintln!(
            "DIVERGED: engine={} shards={} target={} kill={}",
            c.engine, c.shards, c.target, c.kill_after_execs
        );
    }
    println!(
        "churn-identity: {identical}/{} restored tenants bit-identical (rate {rate:.3})",
        cells.len()
    );

    let restore = restore_decodes_once(RESTORE_CAMPAIGNS);
    println!(
        "restore story: {} campaigns, {} lowered / {} sidecar loads / {} cache hits \
         (decode-once: {})",
        restore.campaigns,
        restore.lowered,
        restore.sidecar_loads,
        restore.cache_hits,
        restore.decode_once
    );

    let (builder_secs, service_secs) = overhead(budget);
    let ratio = if builder_secs > 0.0 { service_secs / builder_secs } else { 1.0 };
    println!(
        "overhead: builder {builder_secs:.3}s, service {service_secs:.3}s ({ratio:.2}x)"
    );

    let restore_ok = restore.decode_once && restore.restored_identical == restore.campaigns;
    let agg = Aggregate {
        grid_cells: cells.len(),
        identical_cells: identical,
        churn_identity_rate: rate,
        builder_wall_secs: builder_secs,
        service_wall_secs: service_secs,
        service_overhead_ratio: ratio,
    };
    let report_name = if smoke { "BENCH_service_smoke" } else { "BENCH_service" };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            cells,
            restore,
            aggregate: agg,
        },
    );

    if rate < 1.0 {
        eprintln!("FAIL: a restored tenant diverged from its uninterrupted result");
        std::process::exit(1);
    }
    if !restore_ok {
        eprintln!("FAIL: the fleet restore re-lowered a module or diverged");
        std::process::exit(1);
    }
    if smoke {
        let floor = std::fs::read_to_string("results/BENCH_service_floor.json").ok();
        match floor
            .as_deref()
            .and_then(|s| json_number(s, "churn_identity_rate"))
        {
            Some(f) if rate < f => {
                eprintln!("FAIL: churn-identity rate {rate:.3} below the checked-in floor {f:.3}");
                std::process::exit(1);
            }
            Some(f) => println!("Floor check passed: churn-identity {rate:.3} >= {f:.3}."),
            None => eprintln!("(no churn_identity_rate floor found; skipping gate)"),
        }
        match floor
            .as_deref()
            .and_then(|s| json_number(s, "smoke_service_overhead_ratio"))
        {
            Some(f) => {
                // Wall clock is noisy and the numerator is one campaign:
                // gate at twice the recorded ratio (the identity gates
                // above are the exact ones; this catches regressions in
                // scheduling cost, not host phase).
                let max = f * 2.0;
                if ratio > max {
                    eprintln!(
                        "FAIL: service overhead {ratio:.2}x exceeds twice the checked-in \
                         ceiling {f:.2}x (maximum {max:.2}x)"
                    );
                    std::process::exit(1);
                }
                println!("Floor check passed: overhead {ratio:.2}x <= 2x ceiling {f:.2}x.");
            }
            None => eprintln!("(no smoke_service_overhead_ratio ceiling found; skipping gate)"),
        }
    }
}
