//! **Sharded-campaign evaluation**: prove that multi-worker sharding is a
//! *pure throughput knob* — on a fixed lane decomposition, `shards=2` and
//! `shards=4` reproduce the `shards=1` `CampaignResult` (coverage hash,
//! queue inputs, crash records, cycle accounting) byte-for-byte — and
//! measure the host-side wall-clock speedup the extra workers buy.
//!
//! Scenarios per target (giftext and gpmf-parser, one bug-free and one
//! with planted crashes so the crash-dedup merge is exercised):
//!
//! 1. **Shard sweep** — the same campaign at `shards ∈ {1, 2, 4}`; every
//!    result is fingerprinted (full JSON serialization) and must match the
//!    single-worker baseline exactly. A mismatch is a merge-protocol bug
//!    and fails the run outright.
//! 2. **Kill + resume** — a checkpointed sharded run killed mid-campaign
//!    and resumed must reproduce the uninterrupted sharded result, which
//!    in turn must match the baseline (resume is shard-count-agnostic).
//!
//! Writes `results/BENCH_shard.json` (`results/BENCH_shard_smoke.json`
//! under `--smoke`, so the CI gate never clobbers the blessed full-run
//! report). The measured 1→4-worker speedup is normalized to the best the
//! host can deliver (`min(4, cores)`); on a single-core machine the
//! metric therefore gates *overhead-neutrality* — sharding must not cost
//! wall clock — while multicore hosts gate real scaling. In smoke mode
//! that efficiency is compared against the checked-in floor
//! (`results/BENCH_shard_floor.json`); a drop of more than 40% below the
//! floor exits nonzero.

use aflrs::{Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig};
use bench::{json_number, Mechanism, MechanismFactory};
use serde::Serialize;
use std::time::Instant;

/// Smoke-mode per-campaign cycle budget. Deliberately larger than the
/// other smoke gates: each campaign must run long enough on the host that
/// worker parallelism beats thread/merge overhead, or the scaling-
/// efficiency floor would gate on noise.
const SMOKE_BUDGET: u64 = 24_000_000;

/// Worker counts swept. Lanes stay at the default, so every count runs
/// the identical logical schedule.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Serialize)]
struct Row {
    target: String,
    shards: usize,
    wall_secs: f64,
    execs: u64,
    clock_cycles: u64,
    coverage_hash: u64,
    edges_found: usize,
    crashes: usize,
    queue_len: usize,
    /// The gate: byte-identical to the shards=1 baseline.
    identical: bool,
}

#[derive(Serialize)]
struct ResumeTrial {
    target: String,
    shards: usize,
    kill_after_execs: u64,
    snapshot_execs: u64,
    records_applied: u64,
    /// The gate: resumed result byte-identical to the baseline.
    matched: bool,
}

#[derive(Serialize)]
struct Aggregate {
    wall_secs_1_worker: f64,
    wall_secs_4_workers: f64,
    /// Wall-clock speedup of 4 workers over 1 on the same schedule.
    speedup: f64,
    /// CPUs the host actually offers this process.
    host_cores: usize,
    /// `min(4, host_cores)` — the best 4 workers could possibly do here.
    ideal_speedup: f64,
    /// `speedup / ideal_speedup` — the fraction of the *achievable* linear
    /// scaling realized. On a single-core host the ideal is 1.0 and this
    /// measures overhead-neutrality: sharding must not cost wall clock.
    scaling_efficiency: f64,
}

#[derive(Serialize)]
struct Report {
    mode: String,
    budget_cycles: u64,
    lanes: usize,
    sync_epochs: u64,
    rows: Vec<Row>,
    resume_trials: Vec<ResumeTrial>,
    aggregate: Aggregate,
}

fn fingerprint(r: &CampaignResult) -> String {
    // Strip the resume report: it describes the revival, not the outcome.
    serde_json::to_string(&r.sans_resume()).expect("result serializes")
}

fn campaign_cfg(budget: u64) -> CampaignConfig {
    CampaignConfig {
        budget_cycles: budget,
        seed: 0x5AADED,
        deterministic_stage: true,
        stop_after_crashes: 0,
        ..CampaignConfig::default()
    }
}

/// One sharded campaign (no checkpointing) at `shards` workers.
fn run_sharded(
    factory: &MechanismFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    shards: usize,
) -> CampaignResult {
    Campaign::new(seeds, cfg)
        .factory(factory)
        .shards(shards)
        .run()
        .expect("sharded campaign runs")
        .finished()
        .expect("no kill configured")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = if smoke { SMOKE_BUDGET } else { bench::budget() };
    let mode = if smoke { "smoke" } else { "full" };
    let targets: Vec<&targets::TargetSpec> = targets::all()
        .into_iter()
        .filter(|t| t.name == "giftext" || t.name == "gpmf-parser")
        .collect();
    assert!(targets.len() == 2, "expected giftext and gpmf-parser");
    println!(
        "shard_eval ({mode}): budget = {budget} cycles/campaign, lanes = {}, epochs = {}\n",
        aflrs::DEFAULT_LANES,
        aflrs::DEFAULT_SYNC_EPOCHS
    );

    let scratch = std::env::temp_dir().join(format!("closurex-shard-eval-{}", std::process::id()));
    let mut rows: Vec<Row> = Vec::new();
    let mut resume_trials: Vec<ResumeTrial> = Vec::new();
    let mut all_identical = true;
    let (mut secs_1, mut secs_4) = (0.0f64, 0.0f64);

    for t in &targets {
        let cfg = campaign_cfg(budget);
        let seeds = (t.seeds)();
        let factory = MechanismFactory::new(Mechanism::ClosureX, t);

        // Untimed warm-up: module decode caches, thread pools, CPU
        // frequency settle before anything is on the clock.
        let _ = run_sharded(&factory, &seeds, &cfg, SHARD_COUNTS[SHARD_COUNTS.len() - 1]);

        let mut baseline: Option<String> = None;
        for &shards in &SHARD_COUNTS {
            let start = Instant::now();
            let r = run_sharded(&factory, &seeds, &cfg, shards);
            let secs = start.elapsed().as_secs_f64();
            let fp = fingerprint(&r);
            let identical = match &baseline {
                None => {
                    baseline = Some(fp);
                    true
                }
                Some(want) => &fp == want,
            };
            if !identical {
                all_identical = false;
                eprintln!(
                    "SHARD DIVERGENCE: {} at shards={shards}: execs={} cycles={} cov={:#x} \
                     differs from the shards=1 baseline",
                    t.name, r.execs, r.clock_cycles, r.coverage_hash
                );
            }
            eprintln!(
                "  {} / shards={shards}: {} execs in {:.2}s ({:.0} execs/s host), identical={identical}",
                t.name,
                r.execs,
                secs,
                r.execs as f64 / secs.max(1e-9)
            );
            if shards == 1 {
                secs_1 += secs;
            }
            if shards == 4 {
                secs_4 += secs;
            }
            rows.push(Row {
                target: t.name.to_string(),
                shards,
                wall_secs: secs,
                execs: r.execs,
                clock_cycles: r.clock_cycles,
                coverage_hash: r.coverage_hash,
                edges_found: r.edges_found,
                crashes: r.crashes.len(),
                queue_len: r.queue_len,
                identical,
            });
        }

        // Kill + resume: a sharded checkpointed campaign killed roughly
        // mid-run must resume to the exact uninterrupted result.
        let want = baseline.expect("baseline recorded");
        let total_execs = rows.last().map(|r| r.execs).unwrap_or(2).max(2);
        let kill_at = total_execs / 2;
        let shards = 2;
        let dir = scratch.join(format!("resume-{}", t.name));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = CheckpointConfig::new(dir.clone());
        ck.kill_after_execs = Some(kill_at);
        let first = Campaign::new(&seeds, &cfg)
            .factory(&factory)
            .shards(shards)
            .checkpoint(ck.clone())
            .run()
            .expect("sharded checkpointed campaign runs");
        let (resumed, info) = match first {
            CampaignOutcome::Killed { .. } => {
                ck.kill_after_execs = None;
                let (out, info) = Campaign::new(&seeds, &cfg)
                    .factory(&factory)
                    .shards(shards)
                    .checkpoint(ck)
                    .resume()
                    .expect("sharded resume runs");
                (out.finished(), info)
            }
            // The kill point fell past the campaign's end; the first leg
            // already finished and there is nothing to resume.
            CampaignOutcome::Finished(r) => (Some(r), aflrs::ResumeReport::default()),
        };
        let matched = resumed.as_ref().is_some_and(|r| fingerprint(r) == want);
        if !matched {
            all_identical = false;
            eprintln!(
                "RESUME DIVERGENCE: {} killed at {kill_at} execs did not reproduce the baseline",
                t.name
            );
        }
        eprintln!(
            "  {} / kill@{kill_at}+resume (shards={shards}): snapshot_execs={} \
             records_applied={} matched={matched}",
            t.name, info.snapshot_execs, info.records_applied
        );
        resume_trials.push(ResumeTrial {
            target: t.name.to_string(),
            shards,
            kill_after_execs: kill_at,
            snapshot_execs: info.snapshot_execs,
            records_applied: info.records_applied,
            matched,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let speedup = secs_1 / secs_4.max(1e-9);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ideal_speedup = host_cores.min(4) as f64;
    let efficiency = speedup / ideal_speedup;
    let agg = Aggregate {
        wall_secs_1_worker: secs_1,
        wall_secs_4_workers: secs_4,
        speedup,
        host_cores,
        ideal_speedup,
        scaling_efficiency: efficiency,
    };
    println!(
        "\nAggregate: 1 worker {:.2}s, 4 workers {:.2}s — speedup {:.2}x \
         of an achievable {:.0}x on {} core(s) (scaling efficiency {:.0}%)",
        agg.wall_secs_1_worker,
        agg.wall_secs_4_workers,
        agg.speedup,
        agg.ideal_speedup,
        agg.host_cores,
        agg.scaling_efficiency * 100.0
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.target.clone(),
                r.shards.to_string(),
                format!("{:.2}", r.wall_secs),
                r.execs.to_string(),
                format!("{:#x}", r.coverage_hash),
                r.crashes.to_string(),
                if r.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    print!(
        "{}",
        bench::markdown_table(
            &[
                "Target",
                "Shards",
                "Wall (s)",
                "Execs",
                "Coverage hash",
                "Crashes",
                "Identical",
            ],
            &table
        )
    );

    let report_name = if smoke { "BENCH_shard_smoke" } else { "BENCH_shard" };
    bench::write_report(
        report_name,
        &Report {
            mode: mode.to_string(),
            budget_cycles: budget,
            lanes: aflrs::DEFAULT_LANES,
            sync_epochs: aflrs::DEFAULT_SYNC_EPOCHS,
            rows,
            resume_trials,
            aggregate: agg,
        },
    );

    if !all_identical {
        eprintln!("FAIL: sharded campaigns diverged from the single-worker baseline");
        std::process::exit(1);
    }

    if smoke {
        // Regression gate: scaling efficiency (normalized to what the host
        // can actually deliver) against the checked-in floor. Parallel
        // wall-clock is far noisier than throughput, so the tolerance is
        // wider than exec_throughput's (40% vs 20%).
        match std::fs::read_to_string("results/BENCH_shard_floor.json")
            .ok()
            .and_then(|s| json_number(&s, "smoke_scaling_efficiency"))
        {
            Some(floor) => {
                let min = floor * 0.6;
                if efficiency < min {
                    eprintln!(
                        "FAIL: scaling efficiency {efficiency:.2} is more than 40% below the \
                         checked-in floor {floor:.2} (minimum {min:.2})"
                    );
                    std::process::exit(1);
                }
                println!(
                    "Floor check passed: efficiency {efficiency:.2} >= 60% of floor {floor:.2}."
                );
            }
            None => {
                eprintln!("(no results/BENCH_shard_floor.json floor found; skipping scaling gate)");
            }
        }
    }
}
