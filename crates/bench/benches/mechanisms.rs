//! Criterion micro-benchmarks: per-test-case cost of each execution
//! mechanism (the continuum figure, measured in host time).

use bench::Mechanism;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_mechanisms(c: &mut Criterion) {
    let t = targets::by_name("giftext").unwrap();
    let seed = (t.seeds)()[0].clone();
    let mut g = c.benchmark_group("per_testcase_by_mechanism");
    for m in [
        Mechanism::Fresh,
        Mechanism::ForkServer,
        Mechanism::NaivePersistent,
        Mechanism::ClosureX,
    ] {
        g.bench_function(m.name(), |b| {
            let mut ex = m.executor(t);
            b.iter(|| ex.run(&seed));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mechanisms
}
criterion_main!(benches);
