//! Criterion micro-benchmarks: ClosureX restore cost scaling — the
//! fine-grain-restore half of the paper's performance argument.

use closurex::executor::Executor;
use closurex::harness::{ClosureXConfig, ClosureXExecutor, RestoreStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn leaky_target(chunks: usize) -> fir::Module {
    let src = format!(
        r#"
        global table[4096];
        fn main() {{
            var i = 0;
            while (i < {chunks}) {{
                var p = malloc(32);
                store8(p, i & 255);
                i = i + 1;
            }}
            store64(table, i);
            return 0;
        }}
    "#
    );
    minic::compile("leaky", &src).expect("compiles")
}

fn bench_chunk_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_sweep_by_leaked_chunks");
    for chunks in [1usize, 8, 64, 256] {
        let module = leaky_target(chunks);
        g.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |b, _| {
            let mut ex = ClosureXExecutor::new(&module, ClosureXConfig::default()).unwrap();
            b.iter(|| ex.run(b"x"));
        });
    }
    g.finish();
}

fn bench_global_restore_strategies(c: &mut Criterion) {
    let module = targets::by_name("freetype").unwrap().module();
    let seed = (targets::by_name("freetype").unwrap().seeds)()[0].clone();
    let mut g = c.benchmark_group("global_restore_strategy");
    for (name, strat) in [
        ("full_section", RestoreStrategy::FullSection),
        ("dirty_only", RestoreStrategy::DirtyOnly),
    ] {
        g.bench_function(name, |b| {
            let cfg = ClosureXConfig {
                restore_strategy: strat,
                ..ClosureXConfig::default()
            };
            let mut ex = ClosureXExecutor::new(&module, cfg).unwrap();
            b.iter(|| ex.run(&seed));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_chunk_sweep, bench_global_restore_strategies
}
criterion_main!(benches);
