//! Criterion micro-benchmarks for the host-throughput engine work:
//!
//! * `dispatch/*` — per-test-case cost of the decoded-bytecode engine vs
//!   the AST-walking reference interpreter, per mechanism;
//! * `virgin_merge/*` — sparse touched-list virgin merge vs the full
//!   64KiB word-scan, at a realistic touched-edge density.

use bench::Mechanism;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vmos::cov::{CovMap, VirginMap};
use vmos::ReferenceEngineGuard;

fn bench_dispatch(c: &mut Criterion) {
    let t = targets::by_name("giftext").unwrap();
    let seed = (t.seeds)()[0].clone();
    let mut g = c.benchmark_group("dispatch");
    for m in [Mechanism::ClosureX, Mechanism::ForkServer] {
        g.bench_function(format!("{}/decoded", m.name()), |b| {
            let mut ex = m.executor(t);
            b.iter(|| black_box(ex.run(&seed)));
        });
        g.bench_function(format!("{}/reference", m.name()), |b| {
            let _guard = ReferenceEngineGuard::new();
            let mut ex = m.executor(t);
            b.iter(|| black_box(ex.run(&seed)));
        });
    }
    g.finish();
}

fn bench_virgin_merge(c: &mut Criterion) {
    // A realistic run map: a few hundred touched edges out of 64Ki slots.
    let mut run = CovMap::new();
    for i in 0..400u16 {
        run.hit(i.wrapping_mul(163));
    }
    let mut g = c.benchmark_group("virgin_merge");
    g.bench_function("sparse", |b| {
        let mut virgin = VirginMap::new();
        b.iter(|| black_box(virgin.merge(&run)));
    });
    g.bench_function("full_scan", |b| {
        let _guard = ReferenceEngineGuard::new();
        let mut virgin = VirginMap::new();
        b.iter(|| black_box(virgin.merge(&run)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dispatch, bench_virgin_merge
}
criterion_main!(benches);
