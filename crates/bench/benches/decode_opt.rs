//! Criterion micro-benchmarks for the decode-time FIR optimizer stack:
//!
//! * `decode/*` — one-time cost of lowering a target module to a
//!   [`vmos::DecodedImage`], optimizer included vs plain streams only
//!   (the optimizer must stay cheap enough to amortize in one campaign);
//! * `exec/*` — per-test-case cost on the three engine configurations
//!   (optimized stream / plain stream / reference interpreter), isolating
//!   what superinstruction fusion buys at the dispatch loop itself.

use bench::Mechanism;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vmos::{DecodeOptGuard, DecodedImage, ReferenceEngineGuard};

const TARGETS: [&str; 3] = ["giftext", "c-blosc2", "gpmf-parser"];

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode");
    for name in TARGETS {
        let t = targets::by_name(name).unwrap();
        let m = t.module();
        // The full image: plain streams + the optimizer stack.
        g.bench_function(format!("{name}/optimized"), |b| {
            b.iter(|| black_box(DecodedImage::new(&m)));
        });
    }
    g.finish();
}

fn bench_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec");
    for name in TARGETS {
        let t = targets::by_name(name).unwrap();
        let seed = (t.seeds)()[0].clone();
        g.bench_function(format!("{name}/optimized"), |b| {
            let mut ex = Mechanism::ClosureX.executor(t);
            b.iter(|| black_box(ex.run(&seed)));
        });
        g.bench_function(format!("{name}/plain"), |b| {
            let _guard = DecodeOptGuard::new();
            let mut ex = Mechanism::ClosureX.executor(t);
            b.iter(|| black_box(ex.run(&seed)));
        });
        g.bench_function(format!("{name}/reference"), |b| {
            let _guard = ReferenceEngineGuard::new();
            let mut ex = Mechanism::ClosureX.executor(t);
            b.iter(|| black_box(ex.run(&seed)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_decode, bench_exec
}
criterion_main!(benches);
