//! Semantic checks over the AST: duplicate symbols, arity of calls to
//! user-defined functions, and reserved-name collisions.
//!
//! Reference resolution (is this identifier a local, a parameter, or a
//! global?) happens during code generation, where scopes are tracked.

use std::collections::HashMap;

use crate::ast::{Expr, Program, Stmt};
use crate::error::CompileError;

/// Builtins lowered to FIR instructions rather than calls.
pub const MEMORY_INTRINSICS: [&str; 8] = [
    "load8", "load16", "load32", "load64", "store8", "store16", "store32", "store64",
];

/// Names the ClosureX runtime reserves; user functions may not shadow them.
const RESERVED: [&str; 8] = [
    "closurex_malloc",
    "closurex_calloc",
    "closurex_realloc",
    "closurex_free",
    "closurex_fopen",
    "closurex_fclose",
    "closurex_exit_hook",
    "__cov_edge",
];

/// Run all checks.
///
/// # Errors
/// The first [`CompileError`] found.
pub fn check(program: &Program) -> Result<(), CompileError> {
    let mut globals = HashMap::new();
    for g in &program.globals {
        if globals.insert(g.name.clone(), ()).is_some() {
            return Err(CompileError::new(
                g.line,
                format!("duplicate global '{}'", g.name),
            ));
        }
    }
    let mut arities: HashMap<&str, (usize, usize)> = HashMap::new();
    for f in &program.functions {
        if RESERVED.contains(&f.name.as_str()) || MEMORY_INTRINSICS.contains(&f.name.as_str()) {
            return Err(CompileError::new(
                f.line,
                format!("function name '{}' is reserved", f.name),
            ));
        }
        if globals.contains_key(&f.name) {
            return Err(CompileError::new(
                f.line,
                format!("'{}' is already a global", f.name),
            ));
        }
        if arities
            .insert(f.name.as_str(), (f.params.len(), f.line))
            .is_some()
        {
            return Err(CompileError::new(
                f.line,
                format!("duplicate function '{}'", f.name),
            ));
        }
    }
    for f in &program.functions {
        check_stmts(&f.body, &arities)?;
    }
    Ok(())
}

fn check_stmts(
    stmts: &[Stmt],
    arities: &HashMap<&str, (usize, usize)>,
) -> Result<(), CompileError> {
    for s in stmts {
        match s {
            Stmt::VarDecl { init, .. } => {
                if let Some(e) = init {
                    check_expr(e, arities)?;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(cond, arities)?;
                check_stmts(then_body, arities)?;
                check_stmts(else_body, arities)?;
            }
            Stmt::While { cond, body } => {
                check_expr(cond, arities)?;
                check_stmts(body, arities)?;
            }
            Stmt::Return(Some(e)) | Stmt::Expr(e) => check_expr(e, arities)?,
            Stmt::Return(None) | Stmt::Break(_) | Stmt::Continue(_) => {}
        }
    }
    Ok(())
}

fn check_expr(e: &Expr, arities: &HashMap<&str, (usize, usize)>) -> Result<(), CompileError> {
    match e {
        Expr::Int(_) | Expr::Str(_) | Expr::Ident(_, _) | Expr::AddrOf(_, _) => Ok(()),
        Expr::Unary(_, inner) => check_expr(inner, arities),
        Expr::Bin(_, l, r) => {
            check_expr(l, arities)?;
            check_expr(r, arities)
        }
        Expr::Assign { value, .. } => check_expr(value, arities),
        Expr::Call { callee, args, line } => {
            if MEMORY_INTRINSICS.contains(&callee.as_str()) {
                let want = if callee.starts_with("load") { 1 } else { 2 };
                if args.len() != want {
                    return Err(CompileError::new(
                        *line,
                        format!("{callee} takes {want} argument(s), got {}", args.len()),
                    ));
                }
            } else if let Some((want, _)) = arities.get(callee.as_str()) {
                if args.len() != *want {
                    return Err(CompileError::new(
                        *line,
                        format!(
                            "function '{callee}' takes {want} argument(s), got {}",
                            args.len()
                        ),
                    ));
                }
            }
            // Unknown names are host calls, resolved (or rejected) at run
            // time, mirroring C's link-time resolution.
            for a in args {
                check_expr(a, arities)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), crate::CompileError> {
        super::check(&parse(lex(src).unwrap()).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check_src("global g; fn f(a) { return a; } fn main() { return f(g); }").unwrap();
    }

    #[test]
    fn rejects_duplicate_globals() {
        assert!(check_src("global g; global g;").is_err());
    }

    #[test]
    fn rejects_duplicate_functions() {
        assert!(check_src("fn f() { return 0; } fn f() { return 1; }").is_err());
    }

    #[test]
    fn rejects_reserved_names() {
        assert!(check_src("fn closurex_malloc(n) { return n; }").is_err());
        assert!(check_src("fn load8(p) { return p; }").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(check_src("fn f(a, b) { return a + b; } fn main() { return f(1); }").is_err());
        assert!(check_src("fn main() { return load8(1, 2); }").is_err());
        assert!(check_src("fn main() { store8(1); return 0; }").is_err());
    }

    #[test]
    fn hostcalls_pass_without_declaration() {
        check_src("fn main() { return malloc(8); }").unwrap();
    }

    #[test]
    fn rejects_global_function_collision() {
        assert!(check_src("global f; fn f() { return 0; }").is_err());
    }
}
