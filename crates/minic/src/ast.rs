//! The MinC abstract syntax tree.

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variable declarations, in order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in order.
    pub functions: Vec<FuncDecl>,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Declared `const` (placed in `.rodata`).
    pub is_const: bool,
    /// Size in bytes. Scalars are 8; arrays are their element count
    /// (MinC arrays are byte arrays); string-initialized globals default to
    /// `len + 1`.
    pub size: u64,
    /// True if declared with `[n]` (or string initializer): name yields the
    /// address. Scalars load/store through the name directly.
    pub is_array: bool,
    /// Initializer bytes (little-endian for scalars).
    pub init: Vec<u8>,
    /// Source line.
    pub line: usize,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var name = expr;` or `var name[k];`
    VarDecl {
        /// Variable name.
        name: String,
        /// Byte size if `[k]` form (stack array).
        array_size: Option<u32>,
        /// Initializer (scalars only).
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch body.
        then_body: Vec<Stmt>,
        /// Else-branch body (possibly a nested `if`).
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break(usize),
    /// `continue;`
    Continue(usize),
    /// Expression statement (calls, assignments).
    Expr(Expr),
}

/// Binary operators (post-desugaring; `&&`/`||` stay distinct for
/// short-circuit codegen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed)
    Div,
    /// `%` (signed)
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal → interned `.rodata` global's address.
    Str(Vec<u8>),
    /// Variable / global reference.
    Ident(String, usize),
    /// `&global`
    AddrOf(String, usize),
    /// Unary `-` `!` `~`.
    Unary(UnaryKind, Box<Expr>),
    /// Binary operation.
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// `name(args...)` — direct call (functions, builtins, hostcalls).
    Call {
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `lhs = rhs` where lhs is an identifier (local or global scalar).
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: Box<Expr>,
        /// Source line.
        line: usize,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryKind {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!e` → `e == 0`).
    Not,
    /// Bitwise complement.
    BitNot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_construct() {
        let e = Expr::Bin(
            BinKind::Add,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Ident("x".into(), 3)),
        );
        assert!(matches!(e, Expr::Bin(BinKind::Add, _, _)));
        let s = Stmt::Return(Some(e));
        assert!(matches!(s, Stmt::Return(Some(_))));
    }
}
