//! The MinC lexer.

use crate::error::CompileError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Integer literal (decimal, hex, or char).
    Int(i64),
    /// String literal (unescaped bytes, no NUL).
    Str(Vec<u8>),
    /// Identifier or keyword.
    Ident(String),
    /// `fn`
    Fn,
    /// `global`
    Global,
    /// `const`
    Const,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// Punctuation / operators.
    Punct(&'static str),
    /// End of input.
    Eof,
}

const PUNCTS2: [&str; 10] = ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-="];
const PUNCTS1: [char; 18] = [
    '+', '-', '*', '/', '%', '(', ')', '{', '}', '[', ']', ';', ',', '<', '>', '=', '!', '~',
];

/// Tokenize MinC source.
///
/// # Errors
/// [`CompileError`] on malformed literals or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let text = &src[start + 2..i];
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| CompileError::new(line, format!("bad hex literal 0x{text}")))?;
                out.push(Token {
                    kind: TokKind::Int(v),
                    line,
                });
            } else {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v = text
                    .parse::<i64>()
                    .map_err(|_| CompileError::new(line, format!("bad integer literal {text}")))?;
                out.push(Token {
                    kind: TokKind::Int(v),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let kind = match word {
                "fn" => TokKind::Fn,
                "global" => TokKind::Global,
                "const" => TokKind::Const,
                "var" => TokKind::Var,
                "if" => TokKind::If,
                "else" => TokKind::Else,
                "while" => TokKind::While,
                "return" => TokKind::Return,
                "break" => TokKind::Break,
                "continue" => TokKind::Continue,
                _ => TokKind::Ident(word.to_string()),
            };
            out.push(Token { kind, line });
            continue;
        }
        // Char literal.
        if c == '\'' {
            let (v, consumed) = lex_char(&bytes[i..], line)?;
            out.push(Token {
                kind: TokKind::Int(v),
                line,
            });
            i += consumed;
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            let mut s = Vec::new();
            loop {
                if i >= bytes.len() {
                    return Err(CompileError::new(line, "unterminated string literal"));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        if i >= bytes.len() {
                            return Err(CompileError::new(line, "dangling escape"));
                        }
                        s.push(unescape(bytes[i], line)?);
                        i += 1;
                    }
                    b'\n' => return Err(CompileError::new(line, "newline in string literal")),
                    b => {
                        s.push(b);
                        i += 1;
                    }
                }
            }
            out.push(Token {
                kind: TokKind::Str(s),
                line,
            });
            continue;
        }
        // Operators: longest match first.
        let rest = &src[i..];
        if let Some(p2) = PUNCTS2.iter().find(|p| rest.starts_with(**p)) {
            out.push(Token {
                kind: TokKind::Punct(p2),
                line,
            });
            i += 2;
            continue;
        }
        if let Some(p1) = PUNCTS1.iter().find(|p| **p == c) {
            let s: &'static str = match *p1 {
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                '[' => "[",
                ']' => "]",
                ';' => ";",
                ',' => ",",
                '<' => "<",
                '>' => ">",
                '=' => "=",
                '!' => "!",
                '~' => "~",
                _ => unreachable!(),
            };
            out.push(Token {
                kind: TokKind::Punct(s),
                line,
            });
            i += 1;
            continue;
        }
        if c == '&' {
            out.push(Token {
                kind: TokKind::Punct("&"),
                line,
            });
            i += 1;
            continue;
        }
        if c == '|' {
            out.push(Token {
                kind: TokKind::Punct("|"),
                line,
            });
            i += 1;
            continue;
        }
        if c == '^' {
            out.push(Token {
                kind: TokKind::Punct("^"),
                line,
            });
            i += 1;
            continue;
        }
        return Err(CompileError::new(
            line,
            format!("unexpected character '{c}'"),
        ));
    }
    out.push(Token {
        kind: TokKind::Eof,
        line,
    });
    Ok(out)
}

fn lex_char(bytes: &[u8], line: usize) -> Result<(i64, usize), CompileError> {
    // bytes[0] == '\''
    if bytes.len() < 3 {
        return Err(CompileError::new(line, "unterminated char literal"));
    }
    if bytes[1] == b'\\' {
        if bytes.len() < 4 || bytes[3] != b'\'' {
            return Err(CompileError::new(line, "bad escaped char literal"));
        }
        Ok((i64::from(unescape(bytes[2], line)?), 4))
    } else {
        if bytes[2] != b'\'' {
            return Err(CompileError::new(line, "unterminated char literal"));
        }
        Ok((i64::from(bytes[1]), 3))
    }
}

fn unescape(b: u8, line: usize) -> Result<u8, CompileError> {
    Ok(match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(CompileError::new(
                line,
                format!("unknown escape \\{}", other as char),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("fn main() { return 42; }");
        assert_eq!(
            k,
            vec![
                TokKind::Fn,
                TokKind::Ident("main".into()),
                TokKind::Punct("("),
                TokKind::Punct(")"),
                TokKind::Punct("{"),
                TokKind::Return,
                TokKind::Int(42),
                TokKind::Punct(";"),
                TokKind::Punct("}"),
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        let k = kinds("a <= b == c << 2 && d");
        assert!(k.contains(&TokKind::Punct("<=")));
        assert!(k.contains(&TokKind::Punct("==")));
        assert!(k.contains(&TokKind::Punct("<<")));
        assert!(k.contains(&TokKind::Punct("&&")));
    }

    #[test]
    fn literals() {
        assert_eq!(kinds("0xFF")[0], TokKind::Int(255));
        assert_eq!(kinds("'A'")[0], TokKind::Int(65));
        assert_eq!(kinds(r"'\n'")[0], TokKind::Int(10));
        assert_eq!(kinds(r#""hi\0""#)[0], TokKind::Str(vec![b'h', b'i', 0]));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("fn\nmain\n()").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("1 // x\n2 /* y\nz */ 3");
        assert_eq!(
            k,
            vec![
                TokKind::Int(1),
                TokKind::Int(2),
                TokKind::Int(3),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'x").is_err());
        assert!(lex("@").is_err());
        assert!(lex("/* open").is_err());
    }
}
