//! Compilation errors.

use std::fmt;

/// A MinC compilation failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line (0 for whole-program errors).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CompileError {
    /// Construct an error at a line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}
