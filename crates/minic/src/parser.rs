//! Recursive-descent parser for MinC.

use crate::ast::{BinKind, Expr, FuncDecl, GlobalDecl, Program, Stmt, UnaryKind};
use crate::error::CompileError;
use crate::lexer::{TokKind, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse a token stream into a [`Program`].
///
/// # Errors
/// [`CompileError`] at the first syntax error.
pub fn parse(toks: Vec<Token>) -> Result<Program, CompileError> {
    let mut p = Parser { toks, pos: 0 };
    let mut program = Program::default();
    loop {
        match p.peek().clone() {
            TokKind::Eof => break,
            TokKind::Const | TokKind::Global => program.globals.push(p.global_decl()?),
            TokKind::Fn => program.functions.push(p.func_decl()?),
            other => {
                return Err(p.err(format!("expected item, found {other:?}")));
            }
        }
    }
    Ok(program)
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn bump(&mut self) -> TokKind {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match self.peek() {
            TokKind::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), TokKind::Punct(q) if *q == p)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            TokKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64, CompileError> {
        match self.bump() {
            TokKind::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    // ---- items -----------------------------------------------------------

    fn global_decl(&mut self) -> Result<GlobalDecl, CompileError> {
        let line = self.line();
        let is_const = if matches!(self.peek(), TokKind::Const) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            TokKind::Global => {}
            other => return Err(self.err(format!("expected 'global', found {other:?}"))),
        }
        let name = self.ident()?;
        let mut size: Option<u64> = None;
        let mut is_array = false;
        if self.at_punct("[") {
            self.bump();
            let n = self.int()?;
            if n <= 0 {
                return Err(self.err("array size must be positive"));
            }
            size = Some(n as u64);
            is_array = true;
            self.eat_punct("]")?;
        }
        let mut init = Vec::new();
        if self.at_punct("=") {
            self.bump();
            match self.bump() {
                TokKind::Int(v) => {
                    if is_array {
                        return Err(self.err("array initializer must be {..} or string"));
                    }
                    init = v.to_le_bytes().to_vec();
                }
                TokKind::Str(s) => {
                    init = s;
                    init.push(0);
                    is_array = true;
                    if size.is_none() {
                        size = Some(init.len() as u64);
                    }
                }
                TokKind::Punct("{") => {
                    loop {
                        if self.at_punct("}") {
                            self.bump();
                            break;
                        }
                        let v = self.int()?;
                        if !(0..=255).contains(&v) {
                            return Err(self.err("array initializer bytes must be in 0..=255"));
                        }
                        init.push(v as u8);
                        if self.at_punct(",") {
                            self.bump();
                        }
                    }
                    is_array = true;
                    if size.is_none() {
                        size = Some(init.len() as u64);
                    }
                }
                other => return Err(self.err(format!("bad initializer {other:?}"))),
            }
        }
        self.eat_punct(";")?;
        let size = size.unwrap_or(8);
        if init.len() as u64 > size {
            return Err(CompileError::new(
                line,
                format!("initializer ({} bytes) exceeds size {size}", init.len()),
            ));
        }
        Ok(GlobalDecl {
            name,
            is_const,
            size,
            is_array,
            init,
            line,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, CompileError> {
        let line = self.line();
        self.bump(); // fn
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.at_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            body,
            line,
        })
    }

    // ---- statements --------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if matches!(self.peek(), TokKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            TokKind::Var => {
                let line = self.line();
                self.bump();
                let name = self.ident()?;
                let mut array_size = None;
                let mut init = None;
                if self.at_punct("[") {
                    self.bump();
                    let n = self.int()?;
                    if n <= 0 || n > i64::from(u32::MAX) {
                        return Err(self.err("bad local array size"));
                    }
                    array_size = Some(n as u32);
                    self.eat_punct("]")?;
                } else if self.at_punct("=") {
                    self.bump();
                    init = Some(self.expr()?);
                }
                self.eat_punct(";")?;
                Ok(Stmt::VarDecl {
                    name,
                    array_size,
                    init,
                    line,
                })
            }
            TokKind::If => self.if_stmt(),
            TokKind::While => {
                self.bump();
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokKind::Return => {
                self.bump();
                if self.at_punct(";") {
                    self.bump();
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            TokKind::Break => {
                let line = self.line();
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Break(line))
            }
            TokKind::Continue => {
                let line = self.line();
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let e = self.expr()?;
                self.eat_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // if
        self.eat_punct("(")?;
        let cond = self.expr()?;
        self.eat_punct(")")?;
        let then_body = self.block()?;
        let mut else_body = Vec::new();
        if matches!(self.peek(), TokKind::Else) {
            self.bump();
            if matches!(self.peek(), TokKind::If) {
                else_body.push(self.if_stmt()?);
            } else {
                else_body = self.block()?;
            }
        }
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.binary_expr(0)?;
        if self.at_punct("=") {
            let line = self.line();
            self.bump();
            let value = self.assign_expr()?;
            match lhs {
                Expr::Ident(name, _) => Ok(Expr::Assign {
                    name,
                    value: Box::new(value),
                    line,
                }),
                _ => Err(CompileError::new(
                    line,
                    "assignment target must be a variable (use storeN for memory)",
                )),
            }
        } else {
            Ok(lhs)
        }
    }

    /// Precedence-climbing over binary operators.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        while let Some((kind, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Bin(kind, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinKind, u8)> {
        let TokKind::Punct(p) = self.peek() else {
            return None;
        };
        Some(match *p {
            "||" => (BinKind::LogOr, 1),
            "&&" => (BinKind::LogAnd, 2),
            "|" => (BinKind::BitOr, 3),
            "^" => (BinKind::BitXor, 4),
            "&" => (BinKind::BitAnd, 5),
            "==" => (BinKind::Eq, 6),
            "!=" => (BinKind::Ne, 6),
            "<" => (BinKind::Lt, 7),
            "<=" => (BinKind::Le, 7),
            ">" => (BinKind::Gt, 7),
            ">=" => (BinKind::Ge, 7),
            "<<" => (BinKind::Shl, 8),
            ">>" => (BinKind::Shr, 8),
            "+" => (BinKind::Add, 9),
            "-" => (BinKind::Sub, 9),
            "*" => (BinKind::Mul, 10),
            "/" => (BinKind::Div, 10),
            "%" => (BinKind::Rem, 10),
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        if self.at_punct("-") {
            self.bump();
            return Ok(Expr::Unary(UnaryKind::Neg, Box::new(self.unary_expr()?)));
        }
        if self.at_punct("!") {
            self.bump();
            return Ok(Expr::Unary(UnaryKind::Not, Box::new(self.unary_expr()?)));
        }
        if self.at_punct("~") {
            self.bump();
            return Ok(Expr::Unary(UnaryKind::BitNot, Box::new(self.unary_expr()?)));
        }
        if self.at_punct("&") {
            let line = self.line();
            self.bump();
            let name = self.ident()?;
            return Ok(Expr::AddrOf(name, line));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            TokKind::Int(v) => Ok(Expr::Int(v)),
            TokKind::Str(s) => Ok(Expr::Str(s)),
            TokKind::Ident(name) => {
                if self.at_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Ok(Expr::Call {
                        callee: name,
                        args,
                        line,
                    })
                } else {
                    Ok(Expr::Ident(name, line))
                }
            }
            TokKind::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Program, CompileError> {
        parse(lex(src)?)
    }

    #[test]
    fn parses_globals_of_all_shapes() {
        let p = parse_src(
            r#"
            global a;
            global b[16];
            global c = 7;
            global d[4] = {1, 2};
            const global e = "hi";
        "#,
        )
        .unwrap();
        assert_eq!(p.globals.len(), 5);
        assert_eq!(p.globals[0].size, 8);
        assert!(!p.globals[0].is_array);
        assert_eq!(p.globals[1].size, 16);
        assert!(p.globals[1].is_array);
        assert_eq!(p.globals[2].init, 7i64.to_le_bytes().to_vec());
        assert_eq!(p.globals[3].init, vec![1, 2]);
        assert_eq!(p.globals[4].init, vec![b'h', b'i', 0]);
        assert!(p.globals[4].is_const);
        assert_eq!(p.globals[4].size, 3);
    }

    #[test]
    fn precedence_shape() {
        let p = parse_src("fn f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Bin(BinKind::Add, _, rhs))) = &p.functions[0].body[0] else {
            panic!("expected add at top");
        };
        assert!(matches!(**rhs, Expr::Bin(BinKind::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative_expr() {
        let p = parse_src("fn f() { a = b = 1; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(**value, Expr::Assign { .. }));
    }

    #[test]
    fn rejects_assignment_to_literal() {
        assert!(parse_src("fn f() { 3 = 4; }").is_err());
    }

    #[test]
    fn rejects_oversized_initializer() {
        assert!(parse_src("global g[2] = {1,2,3};").is_err());
    }

    #[test]
    fn else_if_nests() {
        let p = parse_src("fn f(x) { if (x) { } else if (x) { } else { } }").unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn address_of_parses() {
        let p = parse_src("fn f() { return &g; }").unwrap();
        assert!(matches!(
            p.functions[0].body[0],
            Stmt::Return(Some(Expr::AddrOf(_, _)))
        ));
    }

    #[test]
    fn garbage_rejected_with_line() {
        let e = parse_src("fn f() {\n  var 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
