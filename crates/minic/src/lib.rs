//! # MinC — a small C-like language compiled to FIR
//!
//! The paper instruments real C targets with LLVM. This reproduction's
//! targets are written in MinC and compiled to [`fir`] — giving the ClosureX
//! passes realistic call sites (`malloc`, `fopen`, `exit`), mutable global
//! state, stack arrays, and byte-level parsing loops to transform.
//!
//! ## Language sketch
//!
//! ```text
//! const global MAGIC = "GIF8";        // .rodata, name yields address
//! global frame_count;                  // 8-byte scalar, .bss
//! global palette[768];                 // byte array
//! global table[8] = {1, 2, 3};        // byte-initialized array
//!
//! fn helper(x, y) { return x * y + 1; }
//!
//! fn main() {
//!     var f = fopen("/fuzz/input", 0);
//!     if (f == 0) { exit(1); }
//!     var buf[64];
//!     var n = fread(buf, 1, 64, f);
//!     var b = load8(buf);              // byte load intrinsic
//!     store8(buf + 1, b);              // byte store intrinsic
//!     frame_count = frame_count + 1;   // global scalar access
//!     while (n > 0) { n = n - 1; }
//!     fclose(f);
//!     return 0;
//! }
//! ```
//!
//! * every value is a 64-bit integer; pointers are addresses;
//! * `load8/16/32/64` and `store8/16/32/64` are lowered to FIR loads/stores;
//! * `var a[k];` reserves `k` bytes of stack (the name is the address);
//! * string literals are interned as `.rodata` globals;
//! * `&name` takes a global's address;
//! * `&&`/`||` short-circuit; `/ % >> ` are signed (C defaults);
//! * everything else called by name becomes a FIR `call`, resolved at run
//!   time against module functions, then the simulated libc.
//!
//! ```
//! let module = minic::compile("demo", "fn main() { return 41 + 1; }").unwrap();
//! assert!(module.function("main").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use error::CompileError;

/// Compile MinC source into a verified FIR module.
///
/// # Errors
/// Returns a [`CompileError`] for lexical, syntactic, or semantic problems.
pub fn compile(module_name: &str, source: &str) -> Result<fir::Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(tokens)?;
    sema::check(&program)?;
    let module = codegen::emit(module_name, &program)?;
    fir::verify::verify_module(&module).map_err(|e| CompileError {
        line: 0,
        message: format!("internal: generated module failed verification: {e}"),
    })?;
    Ok(module)
}

#[cfg(test)]
mod compile_tests {
    use vmos::{CallResult, CovMap, HostCtx, Machine, Os};

    fn run(src: &str, args: &[i64]) -> CallResult {
        run_with_input(src, args, None).0
    }

    fn run_with_input(
        src: &str,
        args: &[i64],
        input: Option<&[u8]>,
    ) -> (CallResult, vmos::Process) {
        let m = crate::compile("t", src).expect("compiles");
        let mut os = Os::new();
        if let Some(data) = input {
            os.fs.write_file("/fuzz/input", data.to_vec());
        }
        let (mut p, _) = os.spawn(&m);
        let mut cov = CovMap::new();
        let mut ctx = HostCtx::new(&mut os, &mut cov);
        let out = Machine::new(&m).call(&mut p, &mut ctx, "main", args, 10_000_000);
        (out.result, p)
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(
            run("fn main() { return 2 + 3 * 4 - 10 / 2; }", &[]),
            CallResult::Return(9)
        );
        assert_eq!(
            run("fn main() { return (2 + 3) * 4 % 7; }", &[]),
            CallResult::Return(6)
        );
        assert_eq!(
            run("fn main() { return 1 << 4 | 3; }", &[]),
            CallResult::Return(19)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            run(
                "fn main() { return (3 < 5) + (5 <= 5) + (7 > 9) + (1 == 1) + (2 != 2); }",
                &[]
            ),
            CallResult::Return(3)
        );
        assert_eq!(
            run("fn main() { return 1 && 2; }", &[]),
            CallResult::Return(1)
        );
        assert_eq!(
            run("fn main() { return 0 || 0; }", &[]),
            CallResult::Return(0)
        );
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let src = r#"
            global hits;
            fn bump() { hits = hits + 1; return 1; }
            fn main() {
                var a = 0 && bump();
                var b = 1 || bump();
                return hits * 10 + a + b;
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(1));
    }

    #[test]
    fn while_loop_and_break_continue() {
        let src = r#"
            fn main() {
                var i = 0;
                var sum = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2) { continue; }
                    sum = sum + i;
                }
                return sum;
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(30));
    }

    #[test]
    fn functions_params_recursion() {
        let src = r#"
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(12); }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(144));
    }

    #[test]
    fn globals_scalar_and_array() {
        let src = r#"
            global counter;
            global bytes[16] = {5, 6, 7};
            fn main() {
                counter = counter + 40;
                var p = bytes;
                return counter + load8(p) - load8(p + 2) + load8(bytes + 1);
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(44));
    }

    #[test]
    fn const_global_string_is_readonly() {
        let src = r#"
            const global MSG = "AB";
            fn main() { store8(MSG, 99); return 0; }
        "#;
        let r = run(src, &[]);
        assert_eq!(
            r.crash().unwrap().kind,
            vmos::CrashKind::InvalidWrite,
            "writing .rodata must crash"
        );
    }

    #[test]
    fn local_arrays_and_memory_intrinsics() {
        let src = r#"
            fn main() {
                var buf[32];
                store32(buf, 305419896);
                store16(buf + 8, 65535);
                store64(buf + 16, 1 - 2);
                return (load32(buf) == 305419896)
                     + (load16(buf + 8) == 65535)
                     + (load64(buf + 16) == 0 - 1)
                     + (load8(buf) == 120);
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(4));
    }

    #[test]
    fn heap_and_string_literals() {
        let src = r#"
            fn main() {
                var p = malloc(64);
                memset(p, 65, 8);
                store8(p + 8, 0);
                var n = strlen(p);
                free(p);
                return n;
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(8));
    }

    #[test]
    fn file_io_and_exit() {
        let src = r#"
            fn main() {
                var f = fopen("/fuzz/input", 0);
                if (f == 0) { exit(7); }
                var buf[8];
                var n = fread(buf, 1, 8, f);
                fclose(f);
                return n * 100 + load8(buf);
            }
        "#;
        let (r, _) = run_with_input(src, &[], Some(&[9, 8, 7]));
        assert_eq!(r, CallResult::Return(309));
        let (r, _) = run_with_input(src, &[], None);
        assert_eq!(r, CallResult::Exited(7));
    }

    #[test]
    fn char_literals_and_unary_ops() {
        assert_eq!(
            run("fn main() { return 'A' + (!0) * 2 + (~0) + (-3); }", &[]),
            CallResult::Return(63)
        );
    }

    #[test]
    fn address_of_global() {
        let src = r#"
            global slot;
            fn main() {
                store64(&slot, 55);
                return slot;
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(55));
    }

    #[test]
    fn main_params_passed_through() {
        let src = "fn main(argc, argv) { return argc * 2 + argv; }";
        assert_eq!(run(src, &[20, 2]), CallResult::Return(42));
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            fn classify(x) {
                if (x < 0) { return 0 - 1; }
                else if (x == 0) { return 0; }
                else if (x < 10) { return 1; }
                else { return 2; }
            }
            fn main() { return classify(0-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50); }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(-988));
    }

    #[test]
    fn undefined_variable_rejected() {
        assert!(crate::compile("t", "fn main() { return nope; }").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let src = "fn f(a, b) { return a + b; } fn main() { return f(1); }";
        assert!(crate::compile("t", src).is_err());
    }

    #[test]
    fn duplicate_function_rejected() {
        assert!(crate::compile(
            "t",
            "fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }"
        )
        .is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = r#"
            // line comment
            fn main() {
                /* block
                   comment */
                return 5; // trailing
            }
        "#;
        assert_eq!(run(src, &[]), CallResult::Return(5));
    }

    #[test]
    fn hex_literals() {
        assert_eq!(
            run("fn main() { return 0xFF + 0x10; }", &[]),
            CallResult::Return(271)
        );
    }

    #[test]
    fn division_by_zero_surfaces_as_crash() {
        let src = "fn main(x) { return 10 / x; }";
        let r = run(src, &[0]);
        assert_eq!(r.crash().unwrap().kind, vmos::CrashKind::DivisionByZero);
    }
}
