//! Code generation: MinC AST → FIR.

use std::collections::{HashMap, HashSet};

use fir::builder::{FunctionBuilder, ModuleBuilder};
use fir::{BinOp, BlockId, CmpPred, Global, GlobalId, Module, Operand, Reg, Width};

use crate::ast::{BinKind, Expr, FuncDecl, GlobalDecl, Program, Stmt, UnaryKind};
use crate::error::CompileError;

/// Emit a FIR module for a checked program.
///
/// # Errors
/// [`CompileError`] for unresolved identifiers and misused names.
pub fn emit(module_name: &str, program: &Program) -> Result<Module, CompileError> {
    let mut mb = ModuleBuilder::new(module_name);

    // Globals first, so AddrOf ids are stable.
    let mut globals: HashMap<String, GInfo> = HashMap::new();
    for g in &program.globals {
        let gid = mb.global(lower_global(g));
        globals.insert(
            g.name.clone(),
            GInfo {
                gid,
                is_array: g.is_array,
            },
        );
    }

    // Intern every string literal as a .rodata global.
    let mut strings: HashMap<Vec<u8>, GlobalId> = HashMap::new();
    for f in &program.functions {
        collect_strings(&f.body, &mut |s| {
            if !strings.contains_key(s) {
                let mut bytes = s.to_vec();
                bytes.push(0);
                let gid = mb.global(Global::constant(format!("__str_{}", strings.len()), bytes));
                strings.insert(s.to_vec(), gid);
            }
        });
    }

    let funcs: HashSet<String> = program.functions.iter().map(|f| f.name.clone()).collect();

    for f in &program.functions {
        emit_function(&mut mb, f, &globals, &strings, &funcs)?;
    }
    Ok(mb.finish())
}

#[derive(Debug, Clone, Copy)]
struct GInfo {
    gid: GlobalId,
    is_array: bool,
}

fn lower_global(g: &GlobalDecl) -> Global {
    let mut out = if g.is_const {
        Global::constant(&g.name, g.init.clone())
    } else if g.init.is_empty() {
        Global::zeroed(&g.name, g.size)
    } else {
        Global::with_init(&g.name, g.init.clone())
    };
    out.size = g.size;
    out
}

fn collect_strings(stmts: &[Stmt], f: &mut impl FnMut(&[u8])) {
    for s in stmts {
        match s {
            Stmt::VarDecl { init: Some(e), .. } => collect_expr_strings(e, f),
            Stmt::VarDecl { .. } | Stmt::Return(None) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_expr_strings(cond, f);
                collect_strings(then_body, f);
                collect_strings(else_body, f);
            }
            Stmt::While { cond, body } => {
                collect_expr_strings(cond, f);
                collect_strings(body, f);
            }
            Stmt::Return(Some(e)) | Stmt::Expr(e) => collect_expr_strings(e, f),
        }
    }
}

fn collect_expr_strings(e: &Expr, f: &mut impl FnMut(&[u8])) {
    match e {
        Expr::Str(s) => f(s),
        Expr::Unary(_, inner) => collect_expr_strings(inner, f),
        Expr::Bin(_, l, r) => {
            collect_expr_strings(l, f);
            collect_expr_strings(r, f);
        }
        Expr::Assign { value, .. } => collect_expr_strings(value, f),
        Expr::Call { args, .. } => {
            for a in args {
                collect_expr_strings(a, f);
            }
        }
        Expr::Int(_) | Expr::Ident(_, _) | Expr::AddrOf(_, _) => {}
    }
}

#[derive(Debug, Clone, Copy)]
enum LocalSlot {
    /// A scalar local bound to a register.
    Reg(Reg),
    /// A stack array; the register holds its address.
    Arr(Reg),
}

struct FnCx<'a, 'm> {
    fb: FunctionBuilder<'m>,
    scopes: Vec<HashMap<String, LocalSlot>>,
    /// (continue target, break target)
    loops: Vec<(BlockId, BlockId)>,
    globals: &'a HashMap<String, GInfo>,
    strings: &'a HashMap<Vec<u8>, GlobalId>,
    funcs: &'a HashSet<String>,
}

fn emit_function(
    mb: &mut ModuleBuilder,
    f: &FuncDecl,
    globals: &HashMap<String, GInfo>,
    strings: &HashMap<Vec<u8>, GlobalId>,
    funcs: &HashSet<String>,
) -> Result<(), CompileError> {
    let fb = mb.function_with_params(&f.name, f.params.len() as u32);
    let mut cx = FnCx {
        fb,
        scopes: vec![HashMap::new()],
        loops: Vec::new(),
        globals,
        strings,
        funcs,
    };
    for (i, pname) in f.params.iter().enumerate() {
        let r = cx.fb.param(i as u32);
        cx.scopes[0].insert(pname.clone(), LocalSlot::Reg(r));
    }
    cx.gen_stmts(&f.body)?;
    if !cx.fb.is_terminated() {
        cx.fb.ret(Some(Operand::Imm(0)));
    }
    cx.fb.finish();
    Ok(())
}

impl FnCx<'_, '_> {
    fn lookup(&self, name: &str) -> Option<LocalSlot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn gen_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.gen_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// After a `return`/`break`/`continue`, keep generating into a fresh
    /// (unreachable) block so trailing dead statements stay legal.
    fn start_dead_block(&mut self) {
        let dead = self.fb.new_block();
        self.fb.switch_to(dead);
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::VarDecl {
                name,
                array_size,
                init,
                line: _,
            } => {
                let slot = if let Some(sz) = array_size {
                    LocalSlot::Arr(self.fb.alloca(*sz))
                } else {
                    let v = match init {
                        Some(e) => self.gen_expr(e)?,
                        None => Operand::Imm(0),
                    };
                    LocalSlot::Reg(self.fb.mov(v))
                };
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), slot);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.gen_expr(cond)?;
                let then_bb = self.fb.new_block();
                let else_bb = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.cond_br(c, then_bb, else_bb);
                self.fb.switch_to(then_bb);
                self.gen_stmts(then_body)?;
                if !self.fb.is_terminated() {
                    self.fb.br(join);
                }
                self.fb.switch_to(else_bb);
                self.gen_stmts(else_body)?;
                if !self.fb.is_terminated() {
                    self.fb.br(join);
                }
                self.fb.switch_to(join);
            }
            Stmt::While { cond, body } => {
                let header = self.fb.new_block();
                let body_bb = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.br(header);
                self.fb.switch_to(header);
                let c = self.gen_expr(cond)?;
                self.fb.cond_br(c, body_bb, exit);
                self.fb.switch_to(body_bb);
                self.loops.push((header, exit));
                self.gen_stmts(body)?;
                self.loops.pop();
                if !self.fb.is_terminated() {
                    self.fb.br(header);
                }
                self.fb.switch_to(exit);
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.gen_expr(e)?),
                    None => Some(Operand::Imm(0)),
                };
                self.fb.ret(v);
                self.start_dead_block();
            }
            Stmt::Break(line) => {
                let Some(&(_, exit)) = self.loops.last() else {
                    return Err(CompileError::new(*line, "break outside loop"));
                };
                self.fb.br(exit);
                self.start_dead_block();
            }
            Stmt::Continue(line) => {
                let Some(&(header, _)) = self.loops.last() else {
                    return Err(CompileError::new(*line, "continue outside loop"));
                };
                self.fb.br(header);
                self.start_dead_block();
            }
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
            }
        }
        Ok(())
    }

    fn gen_expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match e {
            Expr::Int(v) => Ok(Operand::Imm(*v)),
            Expr::Str(s) => {
                let gid =
                    self.strings.get(s).copied().ok_or_else(|| {
                        CompileError::new(0, "internal: string literal not interned")
                    })?;
                Ok(Operand::Reg(self.fb.addr_of(gid)))
            }
            Expr::Ident(name, line) => {
                if let Some(slot) = self.lookup(name) {
                    return Ok(match slot {
                        LocalSlot::Reg(r) | LocalSlot::Arr(r) => Operand::Reg(r),
                    });
                }
                if let Some(gi) = self.globals.get(name) {
                    let addr = self.fb.addr_of(gi.gid);
                    return Ok(if gi.is_array {
                        Operand::Reg(addr)
                    } else {
                        Operand::Reg(self.fb.load64(Operand::Reg(addr)))
                    });
                }
                Err(CompileError::new(
                    *line,
                    format!("undefined variable '{name}'"),
                ))
            }
            Expr::AddrOf(name, line) => {
                if let Some(slot) = self.lookup(name) {
                    return match slot {
                        LocalSlot::Arr(r) => Ok(Operand::Reg(r)),
                        LocalSlot::Reg(_) => Err(CompileError::new(
                            *line,
                            format!("cannot take address of scalar local '{name}'"),
                        )),
                    };
                }
                if let Some(gi) = self.globals.get(name) {
                    return Ok(Operand::Reg(self.fb.addr_of(gi.gid)));
                }
                Err(CompileError::new(*line, format!("unknown global '{name}'")))
            }
            Expr::Unary(kind, inner) => {
                let v = self.gen_expr(inner)?;
                Ok(Operand::Reg(match kind {
                    UnaryKind::Neg => self.fb.sub(Operand::Imm(0), v),
                    UnaryKind::Not => self.fb.cmp(CmpPred::Eq, v, Operand::Imm(0)),
                    UnaryKind::BitNot => self.fb.bin(BinOp::Xor, v, Operand::Imm(-1)),
                }))
            }
            Expr::Bin(kind, l, r) => self.gen_bin(*kind, l, r),
            Expr::Assign { name, value, line } => {
                let v = self.gen_expr(value)?;
                if let Some(slot) = self.lookup(name) {
                    return match slot {
                        LocalSlot::Reg(dst) => {
                            self.fb.mov_to(dst, v);
                            Ok(Operand::Reg(dst))
                        }
                        LocalSlot::Arr(_) => Err(CompileError::new(
                            *line,
                            format!("cannot assign to array '{name}'"),
                        )),
                    };
                }
                if let Some(gi) = self.globals.get(name).copied() {
                    if gi.is_array {
                        return Err(CompileError::new(
                            *line,
                            format!("cannot assign to global array '{name}'"),
                        ));
                    }
                    let addr = self.fb.addr_of(gi.gid);
                    self.fb.store64(Operand::Reg(addr), v);
                    return Ok(v);
                }
                Err(CompileError::new(
                    *line,
                    format!("undefined variable '{name}'"),
                ))
            }
            Expr::Call { callee, args, line } => self.gen_call(callee, args, *line),
        }
    }

    fn gen_bin(&mut self, kind: BinKind, l: &Expr, r: &Expr) -> Result<Operand, CompileError> {
        // Short-circuit forms need control flow.
        if matches!(kind, BinKind::LogAnd | BinKind::LogOr) {
            let result = self.fb.fresh_reg();
            let lv = self.gen_expr(l)?;
            let lbool = self.fb.cmp(CmpPred::Ne, lv, Operand::Imm(0));
            let rhs_bb = self.fb.new_block();
            let short_bb = self.fb.new_block();
            let join = self.fb.new_block();
            match kind {
                BinKind::LogAnd => self.fb.cond_br(Operand::Reg(lbool), rhs_bb, short_bb),
                _ => self.fb.cond_br(Operand::Reg(lbool), short_bb, rhs_bb),
            }
            self.fb.switch_to(rhs_bb);
            let rv = self.gen_expr(r)?;
            let rbool = self.fb.cmp(CmpPred::Ne, rv, Operand::Imm(0));
            self.fb.mov_to(result, Operand::Reg(rbool));
            self.fb.br(join);
            self.fb.switch_to(short_bb);
            let short_val = if kind == BinKind::LogAnd { 0 } else { 1 };
            self.fb.mov_to(result, Operand::Imm(short_val));
            self.fb.br(join);
            self.fb.switch_to(join);
            return Ok(Operand::Reg(result));
        }

        let lv = self.gen_expr(l)?;
        let rv = self.gen_expr(r)?;
        let reg = match kind {
            BinKind::Add => self.fb.bin(BinOp::Add, lv, rv),
            BinKind::Sub => self.fb.bin(BinOp::Sub, lv, rv),
            BinKind::Mul => self.fb.bin(BinOp::Mul, lv, rv),
            BinKind::Div => self.fb.bin(BinOp::SDiv, lv, rv),
            BinKind::Rem => self.fb.bin(BinOp::SRem, lv, rv),
            BinKind::BitAnd => self.fb.bin(BinOp::And, lv, rv),
            BinKind::BitOr => self.fb.bin(BinOp::Or, lv, rv),
            BinKind::BitXor => self.fb.bin(BinOp::Xor, lv, rv),
            BinKind::Shl => self.fb.bin(BinOp::Shl, lv, rv),
            BinKind::Shr => self.fb.bin(BinOp::AShr, lv, rv),
            BinKind::Eq => self.fb.cmp(CmpPred::Eq, lv, rv),
            BinKind::Ne => self.fb.cmp(CmpPred::Ne, lv, rv),
            BinKind::Lt => self.fb.cmp(CmpPred::SLt, lv, rv),
            BinKind::Le => self.fb.cmp(CmpPred::SLe, lv, rv),
            BinKind::Gt => self.fb.cmp(CmpPred::SGt, lv, rv),
            BinKind::Ge => self.fb.cmp(CmpPred::SGe, lv, rv),
            BinKind::LogAnd | BinKind::LogOr => unreachable!("handled above"),
        };
        Ok(Operand::Reg(reg))
    }

    fn gen_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Operand, CompileError> {
        // Memory intrinsics lower to loads/stores.
        let width = |suffix: &str| match suffix {
            "8" => Width::W8,
            "16" => Width::W16,
            "32" => Width::W32,
            _ => Width::W64,
        };
        if let Some(sfx) = callee.strip_prefix("load") {
            if ["8", "16", "32", "64"].contains(&sfx) {
                let addr = self.gen_expr(&args[0])?;
                return Ok(Operand::Reg(self.fb.load(addr, width(sfx))));
            }
        }
        if let Some(sfx) = callee.strip_prefix("store") {
            if ["8", "16", "32", "64"].contains(&sfx) {
                let addr = self.gen_expr(&args[0])?;
                let val = self.gen_expr(&args[1])?;
                self.fb.store(addr, val, width(sfx));
                return Ok(val);
            }
        }
        // Shadowing check: a local named like a function is probably a bug.
        if self.lookup(callee).is_some() {
            return Err(CompileError::new(
                line,
                format!("'{callee}' is a variable, not callable"),
            ));
        }
        let argv = args
            .iter()
            .map(|a| self.gen_expr(a))
            .collect::<Result<Vec<_>, _>>()?;
        let _ = &self.funcs; // arity was validated in sema for known funcs
        Ok(Operand::Reg(self.fb.call(callee, argv)))
    }
}

#[cfg(test)]
mod tests {
    use crate::lexer::lex;
    use crate::parser::parse;

    fn emit_src(src: &str) -> Result<fir::Module, crate::CompileError> {
        let prog = parse(lex(src).unwrap()).unwrap();
        crate::sema::check(&prog)?;
        super::emit("t", &prog)
    }

    #[test]
    fn string_literals_are_interned_and_deduped() {
        let m = emit_src(r#"fn main() { puts("hello"); puts("hello"); puts("bye"); return 0; }"#)
            .unwrap();
        let strs: Vec<_> = m
            .globals
            .iter()
            .filter(|g| g.name.starts_with("__str_"))
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs.iter().all(|g| g.is_const));
    }

    #[test]
    fn globals_get_sections_by_constness() {
        let m = emit_src("const global A = \"x\"; global b; global c = 3; fn main() { return 0; }")
            .unwrap();
        assert_eq!(m.global("A").unwrap().section, fir::Section::Rodata);
        assert_eq!(m.global("b").unwrap().section, fir::Section::Bss);
        assert_eq!(m.global("c").unwrap().section, fir::Section::Data);
    }

    #[test]
    fn undefined_identifier_reports_line() {
        let e = emit_src("fn main() {\n return missing;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn assign_to_array_rejected() {
        assert!(emit_src("global a[4]; fn main() { a = 3; return 0; }").is_err());
        assert!(emit_src("fn main() { var b[4]; b = 3; return 0; }").is_err());
    }

    #[test]
    fn break_outside_loop_rejected() {
        assert!(emit_src("fn main() { break; }").is_err());
    }

    #[test]
    fn generated_module_verifies() {
        let m = emit_src(
            r#"
            global table[64];
            fn helper(x) { if (x > 2) { return x; } return 0 - x; }
            fn main() {
                var i = 0;
                while (i < 10) {
                    store8(table + i, helper(i) & 255);
                    i = i + 1;
                }
                return load8(table + 5);
            }
        "#,
        )
        .unwrap();
        fir::verify::verify_module(&m).unwrap();
    }
}
