//! `libdwarf` — an ELF/DWARF debug-info walker (Table 4 row 8). Bug-free;
//! exercises an ELF section-header table, ULEB128 decoding, and an abbrev
//! table walk.

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// libdwarf-like reader: mini-ELF sections + .debug_abbrev/.debug_info.
//   magic 0x7F 'E' 'L' 'F', u8 nsec,
//   per section: u8 kind (1=abbrev, 2=info, 3=str), u16 off, u16 size (LE)
global input[8192];
global input_len;
global init_done;
global proto_tables[512];
global abbrev_count;
global attr_count;
global cu_count;
global die_count;
global uleb_overlong;
global last_tag;

// Input-independent startup work (protocol/format tables): re-done for
// every test case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 100) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 100;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

// Decode a ULEB128 at p (bounded by end); result packed as value*8 + len.
fn uleb(p, end) {
    var v = 0;
    var shift = 0;
    var i = 0;
    while (p + i < end && i < 5) {
        var b = load8(p + i);
        v = v | ((b & 0x7F) << shift);
        shift = shift + 7;
        i = i + 1;
        if ((b & 0x80) == 0) { return v * 8 + i; }
    }
    uleb_overlong = uleb_overlong + 1;
    exit(3);
}

fn parse_abbrev(off, size) {
    var p = input + off;
    var end = input + off + size;
    while (p < end) {
        var r = uleb(p, end);
        var code = r / 8;
        p = p + (r % 8);
        if (code == 0) { return abbrev_count; }
        abbrev_count = abbrev_count + 1;
        r = uleb(p, end);
        last_tag = r / 8;
        p = p + (r % 8);
        if (p >= end) { exit(4); }
        var children = load8(p);
        p = p + 1;
        // attribute pairs until (0, 0)
        while (1) {
            if (p >= end) { exit(4); }
            r = uleb(p, end);
            var at = r / 8;
            p = p + (r % 8);
            if (p >= end) { exit(4); }
            r = uleb(p, end);
            var form = r / 8;
            p = p + (r % 8);
            if (at == 0 && form == 0) { break; }
            attr_count = attr_count + 1;
            if (attr_count > 512) { exit(4); }
        }
    }
    return abbrev_count;
}

fn parse_info(off, size) {
    if (size < 11) { exit(5); }
    var p = input + off;
    var unit_len = load32(p);
    var version = load16(p + 4);
    if (version < 2 || version > 5) { exit(5); }
    var addr_size = load8(p + 10);
    if (addr_size != 4 && addr_size != 8) { exit(5); }
    cu_count = cu_count + 1;
    // walk DIE abbrev codes
    var q = p + 11;
    var end = input + off + size;
    while (q < end && die_count < 256) {
        var r = uleb(q, end);
        var code = r / 8;
        q = q + (r % 8);
        if (code == 0) { break; }
        die_count = die_count + 1;
        // each DIE carries one dummy byte payload in this mini format
        if (q < end) { q = q + 1; }
    }
    return die_count;
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    abbrev_count = 0; attr_count = 0; cu_count = 0;
    die_count = 0; uleb_overlong = 0; last_tag = 0;
    var n = read_input();
    if (n < 5) { exit(1); }
    if (load8(input) != 0x7F || load8(input + 1) != 'E') { exit(2); }
    if (load8(input + 2) != 'L' || load8(input + 3) != 'F') { exit(2); }
    var nsec = load8(input + 4);
    if (nsec > 8) { exit(2); }
    if (5 + nsec * 5 > n) { exit(2); }
    var i = 0;
    while (i < nsec) {
        var kind = load8(input + 5 + i * 5);
        var off = load16(input + 5 + i * 5 + 1);
        var size = load16(input + 5 + i * 5 + 3);
        if (off + size > n) { exit(2); }
        if (kind == 1) { parse_abbrev(off, size); }
        if (kind == 2) { parse_info(off, size); }
        i = i + 1;
    }
    return abbrev_count * 100 + cu_count * 10 + die_count;
}
"#;

/// Assemble the mini-ELF from `(kind, payload)` sections.
pub fn elf(sections: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = vec![0x7F, b'E', b'L', b'F', sections.len() as u8];
    let mut off = 5 + sections.len() * 5;
    for (k, payload) in sections {
        out.push(*k);
        out.extend_from_slice(&(off as u16).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        off += payload.len();
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

fn abbrev_section() -> Vec<u8> {
    // code=1, tag=0x11 (compile_unit), children=1, attrs: (0x03,0x08),(0,0)
    // then terminator code=0
    vec![1, 0x11, 1, 0x03, 0x08, 0, 0, 0]
}

fn info_section() -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(&20u32.to_le_bytes()); // unit length
    s.extend_from_slice(&4u16.to_le_bytes()); // version
    s.extend_from_slice(&0u32.to_le_bytes()); // abbrev offset
    s.push(8); // addr size
    s.extend_from_slice(&[1, 0xAA, 1, 0xBB, 0]); // two DIEs then end
    s
}

fn seeds() -> Vec<Vec<u8>> {
    vec![
        elf(&[(1, abbrev_section()), (2, info_section())]),
        elf(&[(1, abbrev_section())]),
        elf(&[]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "libdwarf",
    input_format: "ELF",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
