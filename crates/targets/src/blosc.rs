//! `c-blosc2` — a blosc2 frame reader (Table 4 row 9).
//!
//! Carries **four planted null-pointer dereferences** mirroring the
//! paper's Table 7 c-blosc2 rows (three of which were CVE-backed in the
//! paper). Each crashes in a distinct function for clean deduplication.

use vmos::CrashKind;

use crate::{BugSpec, TargetSpec};

/// MinC source.
pub const SOURCE: &str = r#"
// c-blosc2-like frame reader:
//   magic "b2fr", u16 header_len, u32 frame_len, u16 chunk_count, u8 flags,
//   chunk offset table (u16 each), then chunk payloads:
//   per chunk: u8 cflags, u8 typesize, u16 csize, data.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[740000];
global input_len;
global chunk_count;
global frame_flags;
global decompressed;
global cache_ptr;
global meta_ptr;
global meta_count;
global lazy_count;

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

// BUG blosc-null-getchunk: offset 0 means "absent chunk" but the lookup
// returns a NULL data pointer the caller dereferences.
fn get_chunk(idx) {
    var table = 13;
    var off = load16(input + table + idx * 2);
    if (off == 0) { return 0; }
    if (off + 4 > input_len) { exit(3); }
    return input + off;
}

// BUG blosc-null-lazy: lazy chunks consult an in-memory cache that is only
// populated for eager frames.
fn lazy_chunk(idx) {
    lazy_count = lazy_count + 1;
    return load8(cache_ptr + idx);
}

// BUG blosc-null-decomp: an oversized csize skips allocation but the
// decompress loop runs anyway.
fn decompress_chunk(p, csize, typesize) {
    var dst = 0;
    if (csize <= 4096) { dst = malloc(csize + 16); }
    var end = input + input_len;
    var i = 0;
    while (i < csize) {
        var b = 0;
        if (p + 4 + i < end) { b = load8(p + 4 + i); }
        store8(dst + i, b ^ 0x5A);
        i = i + 1;
    }
    decompressed = decompressed + csize;
    if (dst != 0) { free(dst); }
    return csize;
}

// BUG blosc-null-meta: metalayer count > 0 with no metalayer table.
fn read_metalayer(idx) {
    meta_count = meta_count + 1;
    return load16(meta_ptr + idx * 2);
}

fn process_chunk(idx) {
    var p = get_chunk(idx);
    var cflags = load8(p);
    var typesize = load8(p + 1);
    if (typesize == 0) { exit(4); }
    var csize = load16(p + 2);
    if (cflags & 2) {
        return lazy_chunk(idx);
    }
    return decompress_chunk(p, csize, typesize);
}

fn main() {
    chunk_count = 0; frame_flags = 0; decompressed = 0;
    cache_ptr = 0; meta_ptr = 0; meta_count = 0; lazy_count = 0;
    var n = read_input();
    if (n < 13) { exit(1); }
    if (load8(input) != 'b' || load8(input + 1) != '2') { exit(2); }
    if (load8(input + 2) != 'f' || load8(input + 3) != 'r') { exit(2); }
    var header_len = load16(input + 4);
    var frame_len = load32(input + 6);
    if (frame_len > n) { exit(2); }
    chunk_count = load16(input + 10);
    frame_flags = load8(input + 12);
    if (chunk_count > 32) { exit(2); }
    if (13 + chunk_count * 2 > n) { exit(2); }
    // Eager frames populate the chunk cache lazy reads rely on.
    if (frame_flags & 1) {
        cache_ptr = malloc(chunk_count * 4 + 4);
        memset(cache_ptr, 0, chunk_count * 4 + 4);
    }
    // Metalayers: flag bit 2 says "table present".
    if (frame_flags & 4) {
        meta_ptr = malloc(64);
        memset(meta_ptr, 0, 64);
    }
    if (frame_flags & 8) {
        // frame declares metalayers regardless of the table bit
        read_metalayer(0);
    }
    var i = 0;
    while (i < chunk_count) {
        process_chunk(i);
        i = i + 1;
    }
    if (cache_ptr != 0) { free(cache_ptr); }
    if (meta_ptr != 0) { free(meta_ptr); }
    return decompressed;
}
"#;

/// Planted bugs (Table 7 c-blosc2 rows).
pub static BUGS: [BugSpec; 4] = [
    BugSpec {
        id: "blosc-null-getchunk",
        kind: CrashKind::NullPtrDeref,
        function: "process_chunk",
        description: "absent chunk (offset 0) returns NULL; header read dereferences it",
        cve: Some("CVE-2023-37185"),
    },
    BugSpec {
        id: "blosc-null-lazy",
        kind: CrashKind::NullPtrDeref,
        function: "lazy_chunk",
        description: "lazy chunk reads the eager-only cache pointer",
        cve: Some("CVE-2023-37187"),
    },
    BugSpec {
        id: "blosc-null-decomp",
        kind: CrashKind::NullPtrDeref,
        function: "decompress_chunk",
        description: "oversized csize skips allocation; decompress writes through NULL",
        cve: Some("CVE-2023-37188"),
    },
    BugSpec {
        id: "blosc-null-meta",
        kind: CrashKind::NullPtrDeref,
        function: "read_metalayer",
        description: "declared metalayers without a metalayer table",
        cve: None,
    },
];

/// Build a frame. `chunks` are `(cflags, typesize, payload)`.
pub fn frame(flags: u8, chunks: &[(u8, u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = b"b2fr".to_vec();
    out.extend_from_slice(&13u16.to_le_bytes()); // header_len
    let mut body = Vec::new();
    let table_base = 13 + chunks.len() * 2;
    let mut offsets = Vec::new();
    for (cflags, typesize, payload) in chunks {
        offsets.push((table_base + body.len()) as u16);
        body.push(*cflags);
        body.push(*typesize);
        body.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        body.extend_from_slice(payload);
    }
    let total = (table_base + body.len()) as u32;
    out.extend_from_slice(&total.to_le_bytes()); // frame_len
    out.extend_from_slice(&(chunks.len() as u16).to_le_bytes());
    out.push(flags);
    for o in &offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&body);
    out
}

fn seeds() -> Vec<Vec<u8>> {
    vec![
        frame(1, &[(0, 4, b"compressed-data!".to_vec())]),
        frame(1, &[(0, 1, b"x".to_vec()), (2, 8, b"lazy".to_vec())]),
        frame(5, &[(0, 2, b"meta frame".to_vec())]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    // Absent chunk: hand-roll a frame whose offset table contains 0.
    let mut absent = b"b2fr".to_vec();
    absent.extend_from_slice(&13u16.to_le_bytes());
    absent.extend_from_slice(&15u32.to_le_bytes());
    absent.extend_from_slice(&1u16.to_le_bytes()); // one chunk
    absent.push(0); // no flags
    absent.extend_from_slice(&0u16.to_le_bytes()); // offset 0 → NULL
                                                   // Lazy chunk without the eager flag → cache_ptr stays NULL.
    let lazy = frame(0, &[(2, 4, b"lazy".to_vec())]);
    // Oversized csize: payload declared 5000 but only 8 bytes present —
    // keep frame_len honest by hand-rolling.
    let mut big = b"b2fr".to_vec();
    big.extend_from_slice(&13u16.to_le_bytes());
    big.extend_from_slice(&23u32.to_le_bytes());
    big.extend_from_slice(&1u16.to_le_bytes());
    big.push(0);
    big.extend_from_slice(&15u16.to_le_bytes()); // chunk at 15
    big.push(0); // cflags
    big.push(4); // typesize
    big.extend_from_slice(&5000u16.to_le_bytes()); // csize huge
    big.extend_from_slice(&[0; 4]);
    // Metalayer declared (bit 3) without table (bit 2).
    let meta = frame(8, &[]);
    vec![
        ("blosc-null-getchunk", absent),
        ("blosc-null-lazy", lazy),
        ("blosc-null-decomp", big),
        ("blosc-null-meta", meta),
    ]
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "c-blosc2",
    input_format: "bframe",
    source: SOURCE,
    seeds,
    bugs: &BUGS,
    witnesses,
};
