//! `md4c` — a markdown scanner (Table 4 row 10).
//!
//! Carries **two planted bugs** mirroring the paper's Table 7 md4c rows:
//! a `memcpy` with negative size (link-target extraction with a crossed
//! span) and an out-of-bounds array access (uncapped heading level).

use vmos::CrashKind;

use crate::{BugSpec, TargetSpec};

/// MinC source.
pub const SOURCE: &str = r#"
// md4c-like markdown scanner: headings, emphasis, code spans, links.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[652000];
global input_len;
global heading_hist[50];
global emphasis_count;
global code_span_count;
global link_count;
global line_count;
global max_heading;

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

// BUG md4c-heading-oob: heading levels are tallied into a 6-entry (48
// byte... actually 50-byte) table without capping the level; 7+ hashes
// step past the entry array.
fn record_heading(level) {
    if (level > max_heading) { max_heading = level; }
    // "Sanitize" deep headings — but the clamp is off by one, so level 7
    // still lands half a slot past the histogram.
    if (level > 7) { level = 7; }
    var slot = heading_hist + (level - 1) * 8;
    store64(slot, load64(slot) + 1);
    return level;
}

// BUG md4c-neg-memcpy: extracts the link target between '(' and ')'; a
// crossed span (')' before '(' on the line) makes the length negative.
fn extract_link(open_paren, close_paren) {
    var len = close_paren - open_paren - 1;
    var dst = malloc(256);
    memcpy(dst, input + open_paren + 1, len);
    link_count = link_count + 1;
    free(dst);
    return len;
}

fn scan_line(start, end) {
    line_count = line_count + 1;
    var i = start;
    // headings
    if (i < end && load8(input + i) == '#') {
        var level = 0;
        while (i < end && load8(input + i) == '#') {
            level = level + 1;
            i = i + 1;
        }
        record_heading(level);
        return 1;
    }
    // inline scan
    var bracket_close = 0 - 1;
    while (i < end) {
        var c = load8(input + i);
        if (c == '*') { emphasis_count = emphasis_count + 1; }
        if (c == '`') { code_span_count = code_span_count + 1; }
        if (c == ']') { bracket_close = i; }
        if (c == '(' && bracket_close >= 0) {
            // find ')' anywhere on the line (the bug: it may be BEFORE i)
            var j = start;
            var close = 0 - 1;
            while (j < end) {
                if (load8(input + j) == ')') { close = j; }
                j = j + 1;
            }
            if (close >= 0) {
                extract_link(i, close);
                bracket_close = 0 - 1;
            }
        }
        i = i + 1;
    }
    return 0;
}

fn main() {
    emphasis_count = 0; code_span_count = 0; link_count = 0;
    line_count = 0; max_heading = 0;
    memset(heading_hist, 0, 50);
    var n = read_input();
    if (n == 0) { exit(1); }
    var start = 0;
    var i = 0;
    while (i <= n) {
        var at_end = i == n;
        var is_nl = 0;
        if (at_end == 0) { is_nl = load8(input + i) == 10; }
        if (at_end || is_nl) {
            if (i > start) { scan_line(start, i); }
            start = i + 1;
        }
        i = i + 1;
        if (line_count > 400) { exit(2); }
    }
    return line_count * 100 + link_count;
}
"#;

/// Planted bugs (Table 7 md4c rows).
pub static BUGS: [BugSpec; 2] = [
    BugSpec {
        id: "md4c-neg-memcpy",
        kind: CrashKind::NegativeSizeMemcpy,
        function: "extract_link",
        description: "crossed link span makes the memcpy length negative",
        cve: None,
    },
    BugSpec {
        id: "md4c-heading-oob",
        kind: CrashKind::OutOfBoundsAccess,
        function: "record_heading",
        description: "heading level 7 indexes past the 6-entry histogram",
        cve: None,
    },
];

fn seeds() -> Vec<Vec<u8>> {
    vec![
        b"# Title\n\nSome *emphasis* and `code`.\n".to_vec(),
        b"## Sub\n[link](http://x)\n### Deep\n".to_vec(),
        b"plain text\nwith two lines\n".to_vec(),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        // ')' precedes '(' on the line with a ']' in between: close < open.
        ("md4c-neg-memcpy", b") then ] and ( end\n".to_vec()),
        // seven hashes: level 7 → slot offset 48, store64 spans 48..56 > 50.
        ("md4c-heading-oob", b"####### seven\n".to_vec()),
    ]
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "md4c",
    input_format: "markdown",
    source: SOURCE,
    seeds,
    bugs: &BUGS,
    witnesses,
};
