//! `libpcap` — a pcap capture-file dissector (Table 4 row 2). Bug-free;
//! exercises magic/endianness handling, per-packet headers, and a small
//! ethernet/IPv4/TCP protocol ladder.

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// pcap savefile dissector: global header, packet records, L2/L3/L4 tallies.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[2400000];
global input_len;
global init_done;
global proto_tables[512];
global swapped;
global snaplen;
global packet_count;
global ipv4_count;
global tcp_count;
global udp_count;
global port_histogram[128];
global truncated;

// Input-independent startup work (protocol/format tables): re-done for
// every test case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 400) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 400;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

fn get_u32(p) {
    if (swapped) {
        return (load8(p) << 24) | (load8(p + 1) << 16) | (load8(p + 2) << 8) | load8(p + 3);
    }
    return load32(p);
}

fn get_u16(p) {
    if (swapped) {
        return (load8(p) << 8) | load8(p + 1);
    }
    return load16(p);
}

fn dissect_l4(p, len, proto) {
    if (len < 4) { return 0; }
    var sport = (load8(p) << 8) | load8(p + 1);
    if (proto == 6) {
        tcp_count = tcp_count + 1;
        store8(port_histogram + (sport % 128), load8(port_histogram + (sport % 128)) + 1);
        return 6;
    }
    if (proto == 17) {
        udp_count = udp_count + 1;
        return 17;
    }
    return 0;
}

fn dissect_ip(p, len) {
    if (len < 20) { return 0; }
    var vhl = load8(p);
    if ((vhl >> 4) != 4) { return 0; }
    var ihl = (vhl & 15) * 4;
    if (ihl < 20 || ihl > len) { exit(3); }
    ipv4_count = ipv4_count + 1;
    var proto = load8(p + 9);
    return dissect_l4(p + ihl, len - ihl, proto);
}

fn dissect_packet(p, caplen) {
    packet_count = packet_count + 1;
    if (caplen < 14) { truncated = truncated + 1; return 0; }
    var ethertype = (load8(p + 12) << 8) | load8(p + 13);
    if (ethertype == 0x0800) {
        return dissect_ip(p + 14, caplen - 14);
    }
    return 0;
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    swapped = 0; snaplen = 0; packet_count = 0;
    ipv4_count = 0; tcp_count = 0; udp_count = 0; truncated = 0;
    memset(port_histogram, 0, 128);
    var n = read_input();
    if (n < 24) { exit(1); }
    var magic = load32(input);
    if (magic == 0xa1b2c3d4) { swapped = 0; }
    else if (magic == 0xd4c3b2a1) { swapped = 1; }
    else { exit(2); }
    var version_major = get_u16(input + 4);
    if (version_major != 2) { exit(2); }
    snaplen = get_u32(input + 16);
    if (snaplen > 65535) { exit(2); }
    var off = 24;
    while (off + 16 <= n) {
        var caplen = get_u32(input + off + 8);
        var origlen = get_u32(input + off + 12);
        if (caplen > snaplen) { exit(4); }
        if (caplen > origlen) { truncated = truncated + 1; }
        if (off + 16 + caplen > n) { break; }
        dissect_packet(input + off + 16, caplen);
        off = off + 16 + caplen;
        if (packet_count > 500) { exit(5); }
    }
    return packet_count * 100 + tcp_count;
}
"#;

/// Build a little-endian pcap file around the given packet payloads.
pub fn pcap_file(packets: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&0xa1b2c3d4u32.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // major
    out.extend_from_slice(&4u16.to_le_bytes()); // minor
    out.extend_from_slice(&0u32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&4096u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&1u32.to_le_bytes()); // linktype
    for p in packets {
        out.extend_from_slice(&1u32.to_le_bytes()); // ts sec
        out.extend_from_slice(&2u32.to_le_bytes()); // ts usec
        out.extend_from_slice(&(p.len() as u32).to_le_bytes()); // caplen
        out.extend_from_slice(&(p.len() as u32).to_le_bytes()); // origlen
        out.extend_from_slice(p);
    }
    out
}

/// A minimal ethernet+IPv4+TCP frame.
pub fn tcp_packet() -> Vec<u8> {
    let mut pkt = vec![0u8; 14]; // ethernet
    pkt[12] = 0x08;
    pkt[13] = 0x00;
    let mut ip = vec![0u8; 20];
    ip[0] = 0x45;
    ip[9] = 6; // TCP
    pkt.extend_from_slice(&ip);
    pkt.extend_from_slice(&[0x01, 0xbb, 0x12, 0x34]); // ports
    pkt
}

fn seeds() -> Vec<Vec<u8>> {
    let tcp = tcp_packet();
    vec![
        pcap_file(&[&tcp]),
        pcap_file(&[&tcp, &tcp, b"short"]),
        pcap_file(&[]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "libpcap",
    input_format: "pcap",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
