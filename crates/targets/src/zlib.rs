//! `zlib` — a zlib-container checker with a toy inflate (Table 4 row 7).
//! Bug-free; exercises checksum math, stored-block handling, and a
//! Huffman-ish symbol loop over heap output.

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// zlib stream checker: CMF/FLG header, deflate blocks, adler32 trailer.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[260000];
global input_len;
global init_done;
global proto_tables[512];
global out_bytes;
global stored_blocks;
global fixed_blocks;
global window_bits;
global has_dict;
global adler_mismatches;

// Input-independent startup work (protocol/format tables): re-done for
// every test case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 80) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 80;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

fn adler32(p, len) {
    var a = 1;
    var b = 0;
    var i = 0;
    while (i < len) {
        a = (a + load8(p + i)) % 65521;
        b = (b + a) % 65521;
        i = i + 1;
    }
    return (b << 16) | a;
}

// Stored (uncompressed) block: LEN, NLEN, raw bytes.
fn stored_block(off, out, out_cap, out_len) {
    if (off + 4 > input_len) { exit(3); }
    var len = load16(input + off);
    var nlen = load16(input + off + 2);
    if ((len ^ nlen) != 0xFFFF) { exit(3); }
    if (off + 4 + len > input_len) { exit(3); }
    if (out_len + len > out_cap) { exit(3); }
    memcpy(out + out_len, input + off + 4, len);
    stored_blocks = stored_blocks + 1;
    return len;
}

// Toy "fixed huffman" block: literal bytes until a 0xFF end marker.
fn fixed_block(off, out, out_cap, out_len) {
    var produced = 0;
    while (off + produced < input_len) {
        var sym = load8(input + off + produced);
        if (sym == 0xFF) { fixed_blocks = fixed_blocks + 1; return produced; }
        if (out_len + produced >= out_cap) { exit(4); }
        store8(out + out_len + produced, sym ^ 0x20);
        produced = produced + 1;
    }
    exit(4);
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    out_bytes = 0; stored_blocks = 0; fixed_blocks = 0;
    window_bits = 0; has_dict = 0; adler_mismatches = 0;
    var n = read_input();
    if (n < 6) { exit(1); }
    var cmf = load8(input);
    var flg = load8(input + 1);
    if ((cmf & 15) != 8) { exit(2); }
    if ((cmf * 256 + flg) % 31 != 0) { exit(2); }
    window_bits = (cmf >> 4) + 8;
    if (window_bits > 15) { exit(2); }
    has_dict = (flg >> 5) & 1;
    var off = 2;
    if (has_dict) { off = off + 4; }
    var out_cap = 4096;
    var out = malloc(out_cap);
    var out_len = 0;
    var final = 0;
    while (final == 0) {
        if (off >= n) { free(out); exit(3); }
        var hdr = load8(input + off);
        final = hdr & 1;
        var btype = (hdr >> 1) & 3;
        off = off + 1;
        if (btype == 0) {
            var len = stored_block(off, out, out_cap, out_len);
            out_len = out_len + len;
            off = off + 4 + len;
        } else if (btype == 1) {
            var produced = fixed_block(off, out, out_cap, out_len);
            out_len = out_len + produced;
            off = off + produced + 1;
        } else {
            free(out);
            exit(5);
        }
    }
    out_bytes = out_len;
    // adler32 trailer (big-endian)
    if (off + 4 <= n) {
        var want = (load8(input + off) << 24) | (load8(input + off + 1) << 16)
                 | (load8(input + off + 2) << 8) | load8(input + off + 3);
        var got = adler32(out, out_len);
        if (want != got) {
            adler_mismatches = adler_mismatches + 1;
            free(out);
            exit(6);
        }
    }
    free(out);
    return out_len;
}
"#;

/// Adler-32 (matching the target's implementation).
pub fn adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &x in data {
        a = (a + u32::from(x)) % 65521;
        b = (b + a) % 65521;
    }
    (b << 16) | a
}

/// Build a zlib container holding `payload` as one stored block.
pub fn zlib_stored(payload: &[u8]) -> Vec<u8> {
    let cmf = 0x78u8;
    let flg = (31 - (u32::from(cmf) * 256) % 31) as u8; // make it divisible
    let mut out = vec![cmf, flg];
    out.push(1); // final, btype 0
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&adler32(payload).to_be_bytes());
    out
}

fn seeds() -> Vec<Vec<u8>> {
    let mut fixed = vec![0x78u8, 0x01];
    fixed.push(0x03); // final, btype 1
    fixed.extend_from_slice(b"hi");
    fixed.push(0xFF);
    let decoded: Vec<u8> = b"hi".iter().map(|b| b ^ 0x20).collect();
    fixed.extend_from_slice(&adler32(&decoded).to_be_bytes());
    vec![zlib_stored(b"hello zlib"), zlib_stored(b""), fixed]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "zlib",
    input_format: "zlib archive",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
