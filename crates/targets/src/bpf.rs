//! `libbpf` — a BPF-object (mini-ELF) loader (Table 4 row 4).
//!
//! Carries **three planted null-pointer dereferences** mirroring the
//! paper's Table 7 libbpf rows, including the headline bug: parsing the
//! relocation section of a malformed ELF object dereferences a NULL symbol
//! table (the paper's CVE-backed find). Each bug crashes in a distinct
//! function so crash-site deduplication keeps them apart.

use vmos::CrashKind;

use crate::{BugSpec, TargetSpec};

/// Symbol table section tag.
pub const SEC_SYMTAB: u8 = 1;
/// String table section tag.
pub const SEC_STRTAB: u8 = 2;
/// Program (code) section tag.
pub const SEC_PROG: u8 = 3;
/// Relocation section tag.
pub const SEC_RELOC: u8 = 4;

/// MinC source.
pub const SOURCE: &str = r#"
// libbpf-like BPF object loader over a miniature ELF container:
//   magic 0x7F 'B' 'P' 'F', u8 section count,
//   per section: u8 type, u16 offset, u16 size (big-endian),
//   section payloads follow.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[1900000];
global input_len;
global init_done;
global proto_tables[512];
global sym_buf;
global sym_count;
global str_buf;
global str_len;
global prog_count;
global reloc_count;
global insn_count;
global map_count;

// Input-independent startup work (format tables): re-done for every test
// case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 150) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 150;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

fn sec_u16(p) { return (load8(p) << 8) | load8(p + 1); }

fn parse_symtab(off, size) {
    // 8-byte symbol records: u16 name offset, u16 value, u32 flags.
    if (size % 8 != 0) { exit(3); }
    sym_count = size / 8;
    // BUG libbpf-null-reloc feeder: the cap path forgets to reset
    // sym_count, leaving sym_buf NULL with a huge declared count.
    if (sym_count > 64) { return 0; }
    sym_buf = malloc(size + 1);
    memcpy(sym_buf, input + off, size);
    return sym_count;
}

// BUG libbpf-null-strtab: name offsets past the string table leave the
// pointer NULL, and strlen walks it.
fn section_name_len(name_off) {
    var p = 0;
    if (name_off < str_len) { p = str_buf + name_off; }
    return strlen(p);
}

fn parse_prog(off, size) {
    prog_count = prog_count + 1;
    var insns = size / 8;
    insn_count = insn_count + insns;
    var i = 0;
    while (i < insns && i < 128) {
        var opcode = load8(input + off + i * 8);
        if (opcode == 0x85) { map_count = map_count + 1; }
        if (opcode == 0x18) {
            // BUG libbpf-null-prog-name: map-by-name loads consult the
            // string table without checking it was ever loaded.
            map_count = map_count + load8(str_buf);
        }
        i = i + 1;
    }
    return insns;
}

// BUG libbpf-null-reloc (the paper's headline libbpf find): relocations
// index the symbol table without checking it was actually allocated.
fn parse_reloc(off, size) {
    var relocs = size / 4;
    var i = 0;
    while (i < relocs && i < 64) {
        var sym_idx = sec_u16(input + off + i * 4);
        reloc_count = reloc_count + 1;
        if (sym_idx < sym_count) {
            var rec = sym_buf + sym_idx * 8;
            var name_off = (load8(rec) << 8) | load8(rec + 1);
            var len = section_name_len(name_off);
            if (len > 32) { exit(4); }
        }
        i = i + 1;
    }
    return relocs;
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    sym_buf = 0; sym_count = 0; str_buf = 0; str_len = 0;
    prog_count = 0; reloc_count = 0; insn_count = 0; map_count = 0;
    var n = read_input();
    if (n < 5) { exit(1); }
    if (load8(input) != 0x7F || load8(input + 1) != 'B') { exit(2); }
    if (load8(input + 2) != 'P' || load8(input + 3) != 'F') { exit(2); }
    var nsec = load8(input + 4);
    if (nsec > 16) { exit(2); }
    var table = 5;
    if (table + nsec * 5 > n) { exit(2); }
    // First pass: locate symtab and strtab.
    var i = 0;
    while (i < nsec) {
        var t = load8(input + table + i * 5);
        var off = sec_u16(input + table + i * 5 + 1);
        var size = sec_u16(input + table + i * 5 + 3);
        if (off + size > n) { exit(3); }
        if (t == 1) { parse_symtab(off, size); }
        if (t == 2) {
            str_buf = malloc(size + 1);
            memcpy(str_buf, input + off, size);
            store8(str_buf + size, 0);
            str_len = size;
        }
        i = i + 1;
    }
    // Second pass: programs and relocations.
    i = 0;
    while (i < nsec) {
        var t = load8(input + table + i * 5);
        var off = sec_u16(input + table + i * 5 + 1);
        var size = sec_u16(input + table + i * 5 + 3);
        if (t == 3) { parse_prog(off, size); }
        if (t == 4) { parse_reloc(off, size); }
        i = i + 1;
    }
    if (sym_buf != 0) { free(sym_buf); }
    if (str_buf != 0) { free(str_buf); }
    return prog_count * 10 + reloc_count;
}
"#;

/// Planted bugs (Table 7 libbpf rows).
pub static BUGS: [BugSpec; 3] = [
    BugSpec {
        id: "libbpf-null-reloc",
        kind: CrashKind::NullPtrDeref,
        function: "parse_reloc",
        description: "relocation parsing dereferences a NULL symbol table (capped symtab path)",
        cve: Some("CVE-2023-37186"),
    },
    BugSpec {
        id: "libbpf-null-prog-name",
        kind: CrashKind::NullPtrDeref,
        function: "parse_prog",
        description: "map-by-name instruction consults a NULL string table",
        cve: None,
    },
    BugSpec {
        id: "libbpf-null-strtab",
        kind: CrashKind::NullPtrDeref,
        function: "section_name_len",
        description: "out-of-range name offset leaves a NULL pointer for strlen",
        cve: None,
    },
];

/// Assemble a mini-ELF BPF object from `(type, payload)` sections.
pub fn bpf_object(sections: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = vec![0x7F, b'B', b'P', b'F', sections.len() as u8];
    let table_len = sections.len() * 5;
    let mut off = 5 + table_len;
    for (t, payload) in sections {
        out.push(*t);
        out.extend_from_slice(&(off as u16).to_be_bytes());
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        off += payload.len();
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

/// An 8-byte symbol record.
fn sym(name_off: u16, value: u16) -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(&name_off.to_be_bytes());
    s.extend_from_slice(&value.to_be_bytes());
    s.extend_from_slice(&[0; 4]);
    s
}

fn seeds() -> Vec<Vec<u8>> {
    let strtab = b"main\0license\0".to_vec();
    let symtab = [sym(0, 1), sym(5, 2)].concat();
    let prog = vec![0xb7, 0, 0, 0, 1, 0, 0, 0, 0x95, 0, 0, 0, 0, 0, 0, 0];
    let reloc = vec![0u8, 1, 0, 0];
    vec![
        bpf_object(&[
            (SEC_STRTAB, strtab.clone()),
            (SEC_SYMTAB, symtab.clone()),
            (SEC_PROG, prog.clone()),
            (SEC_RELOC, reloc),
        ]),
        bpf_object(&[(SEC_STRTAB, strtab), (SEC_PROG, prog)]),
        bpf_object(&[]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    // 66-symbol symtab takes the cap path (sym_buf NULL, sym_count 66);
    // any in-range reloc then dereferences NULL in parse_reloc.
    let big_symtab = vec![0u8; 66 * 8];
    let w_reloc = bpf_object(&[(SEC_SYMTAB, big_symtab), (SEC_RELOC, vec![0, 1, 0, 2])]);
    // A 0x18 (map-by-name) instruction with no strtab section.
    let prog_with_name = vec![0x18, 0, 0, 0, 0, 0, 0, 0];
    let w_prog = bpf_object(&[(SEC_PROG, prog_with_name)]);
    // Valid symtab whose single symbol has a name offset beyond a tiny
    // strtab: section_name_len strlens NULL.
    let w_strtab = bpf_object(&[
        (SEC_STRTAB, b"x\0".to_vec()),
        (SEC_SYMTAB, sym(500, 0)),
        (SEC_RELOC, vec![0, 0, 0, 0]),
    ]);
    vec![
        ("libbpf-null-reloc", w_reloc),
        ("libbpf-null-prog-name", w_prog),
        ("libbpf-null-strtab", w_strtab),
    ]
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "libbpf",
    input_format: "bpf object",
    source: SOURCE,
    seeds,
    bugs: &BUGS,
    witnesses,
};
