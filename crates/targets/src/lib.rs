//! # targets — the benchmark suite
//!
//! The ten open-source fuzzing targets of the paper's Table 4, re-created
//! as MinC programs over the same input formats, with the same *shape*:
//! byte-level format parsers with magic checks, header validation,
//! `exit()` bail-outs on malformed input, mutable global state, heap
//! churn, and file I/O — i.e. everything the ClosureX passes must track
//! and restore.
//!
//! Four targets carry **planted bugs** mirroring the classes, counts, and
//! hosts of the paper's Table 7 0-days: `c-blosc2` (4× null-pointer
//! dereference), `gpmf-parser` (2× division by zero, 2× unaddressable
//! access, invalid read/write), `libbpf` (3× null-pointer dereference),
//! and `md4c` (negative-size memcpy, out-of-bounds array access). Every
//! bug has a *witness input* proving reachability; fuzzers have to find
//! them from benign seeds.

use fir::Module;
use vmos::{Crash, CrashKind};

pub mod blosc;
pub mod bpf;
pub mod dwarf;
pub mod freetype;
pub mod gif;
pub mod gpmf;
pub mod md4c;
pub mod pcap;
pub mod tar;
pub mod zlib;

/// A planted bug: identity, class, and crash site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSpec {
    /// Stable identifier, e.g. `"gpmf-div0-scale"`.
    pub id: &'static str,
    /// The crash class the detector reports (Table 7's "Bug Type").
    pub kind: CrashKind,
    /// MinC function the crash fires in (the dedup site).
    pub function: &'static str,
    /// What the bug is.
    pub description: &'static str,
    /// CVE-style tag for the four bugs mirroring the paper's CVEs.
    pub cve: Option<&'static str>,
}

/// One benchmark target.
pub struct TargetSpec {
    /// Benchmark name (Table 4 row).
    pub name: &'static str,
    /// Input format (Table 4 column).
    pub input_format: &'static str,
    /// MinC source.
    pub source: &'static str,
    /// Benign seed corpus.
    pub seeds: fn() -> Vec<Vec<u8>>,
    /// Planted bugs (empty for the six bug-free targets).
    pub bugs: &'static [BugSpec],
    /// Witness inputs proving each bug reachable: `(bug id, input)`.
    pub witnesses: fn() -> Vec<(&'static str, Vec<u8>)>,
}

impl std::fmt::Debug for TargetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSpec")
            .field("name", &self.name)
            .field("input_format", &self.input_format)
            .field("bugs", &self.bugs.len())
            .finish()
    }
}

impl TargetSpec {
    /// Compile the target to FIR.
    ///
    /// # Panics
    /// Panics if the bundled source fails to compile (a bug in this crate,
    /// covered by tests).
    pub fn module(&self) -> Module {
        minic::compile(self.name, self.source)
            .unwrap_or_else(|e| panic!("target {} failed to compile: {e}", self.name))
    }

    /// Estimated executable size (Table 4's "Executable Size" analog).
    pub fn image_size(&self) -> u64 {
        fir::image::image_size(&self.module())
    }

    /// Match a crash against this target's planted bugs.
    pub fn identify(&self, crash: &Crash) -> Option<&'static BugSpec> {
        self.bugs
            .iter()
            .find(|b| b.kind == crash.kind && b.function == crash.function)
    }
}

/// All ten benchmarks, in Table 4 order.
pub fn all() -> Vec<&'static TargetSpec> {
    vec![
        &tar::SPEC,
        &pcap::SPEC,
        &gpmf::SPEC,
        &bpf::SPEC,
        &freetype::SPEC,
        &gif::SPEC,
        &zlib::SPEC,
        &dwarf::SPEC,
        &blosc::SPEC,
        &md4c::SPEC,
    ]
}

/// Look a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static TargetSpec> {
    all().into_iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use closurex::executor::{ExecStatus, Executor};
    use closurex::fresh::FreshProcessExecutor;

    #[test]
    fn ten_targets_registered() {
        let names: Vec<_> = all().iter().map(|t| t.name).collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"bsdtar"));
        assert!(names.contains(&"c-blosc2"));
        assert!(by_name("md4c").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_targets_compile_and_verify() {
        for t in all() {
            let m = t.module();
            fir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} does not verify: {e}", t.name));
            assert!(m.function("main").is_some(), "{} needs main", t.name);
            assert!(
                !m.globals.is_empty(),
                "{} needs global state for restoration to matter",
                t.name
            );
        }
    }

    #[test]
    fn seeds_execute_cleanly() {
        for t in all() {
            let m = t.module();
            let mut ex = FreshProcessExecutor::new(&m).unwrap();
            for (i, seed) in (t.seeds)().iter().enumerate() {
                let out = ex.run(seed);
                assert!(
                    matches!(out.status, ExecStatus::Exit(_)),
                    "{} seed {i} must not crash/hang: {:?}",
                    t.name,
                    out.status
                );
            }
        }
    }

    #[test]
    fn every_bug_has_a_working_witness() {
        for t in all() {
            let m = t.module();
            let mut ex = FreshProcessExecutor::new(&m).unwrap();
            let witnesses = (t.witnesses)();
            assert_eq!(
                witnesses.len(),
                t.bugs.len(),
                "{}: every bug needs one witness",
                t.name
            );
            for (bug_id, input) in witnesses {
                let out = ex.run(&input);
                let crash = out
                    .status
                    .crash()
                    .unwrap_or_else(|| panic!("{}: witness for {bug_id} did not crash", t.name));
                let bug = t.identify(crash).unwrap_or_else(|| {
                    panic!(
                        "{}: witness for {bug_id} crashed unidentified: {crash}",
                        t.name
                    )
                });
                assert_eq!(bug.id, bug_id, "{}: witness hit the wrong bug", t.name);
            }
        }
    }

    #[test]
    fn bug_census_matches_table7() {
        use vmos::CrashKind::*;
        let count = |name: &str, kind: CrashKind| {
            by_name(name)
                .unwrap()
                .bugs
                .iter()
                .filter(|b| b.kind == kind)
                .count()
        };
        assert_eq!(count("c-blosc2", NullPtrDeref), 4);
        assert_eq!(count("gpmf-parser", DivisionByZero), 2);
        assert_eq!(count("libbpf", NullPtrDeref), 3);
        assert_eq!(count("md4c", NegativeSizeMemcpy), 1);
        assert_eq!(count("md4c", OutOfBoundsAccess), 1);
        let total: usize = all().iter().map(|t| t.bugs.len()).sum();
        assert_eq!(total, 15, "the paper reports 15 0-days");
        let cves: usize = all()
            .iter()
            .flat_map(|t| t.bugs.iter())
            .filter(|b| b.cve.is_some())
            .count();
        assert_eq!(cves, 4, "the paper reports 4 CVEs");
    }

    #[test]
    fn image_sizes_are_plausible_and_distinct() {
        let sizes: Vec<u64> = all().iter().map(|t| t.image_size()).collect();
        for (t, s) in all().iter().zip(&sizes) {
            assert!(*s > 1024, "{} image suspiciously small: {s}", t.name);
        }
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() >= 8, "sizes should differ across targets");
    }
}
