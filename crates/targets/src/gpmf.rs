//! `gpmf-parser` — a GoPro-metadata (KLV) parser (Table 4 row 3).
//!
//! Carries **six planted bugs** mirroring the paper's Table 7 gpmf-parser
//! rows: two divisions by zero, two unaddressable accesses, one invalid
//! write, one invalid read.

use vmos::CrashKind;

use crate::{BugSpec, TargetSpec};

/// MinC source.
pub const SOURCE: &str = r#"
// GPMF KLV stream parser: 4CC key, type, sample size, repeat count.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[720000];
global input_len;
global init_done;
global proto_tables[512];
global klv_count;
global accl_sum;
global scale_cache;
global device_name[64];
global temp_table[100];
global cached_buf;
global cached_freed;
global nest_depth;

// Input-independent startup work (format tables): re-done for every test
// case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 300) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 300;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

// BUG gpmf-div0-avg: sample average divides by a repeat count taken from
// the stream without a zero check.
fn average_samples(p, count, ssize) {
    var sum = 0;
    var i = 0;
    while (i < count && i < 64) {
        sum = sum + load8(p + i);
        i = i + 1;
    }
    return sum / count;
}

// BUG gpmf-div0-scale: scaling divides by an input-controlled divisor.
fn scale_value(v) {
    return v / scale_cache;
}

// BUG gpmf-unaddr-far: a "fast seek" helper trusts a 16-bit offset and
// lands far outside any allocation.
fn far_read(base, offset) {
    return load8(base + offset * 4096);
}

// BUG gpmf-unaddr-uaf: the buffer cache frees on 'R' but a second 'R'
// reads the stale pointer.
fn reuse_cached() {
    if (cached_freed) {
        return load8(cached_buf);
    }
    free(cached_buf);
    cached_freed = 1;
    return 0;
}

// BUG gpmf-invalid-write: temperature table is 100 bytes (padded to 112);
// indices 100..111 silently land in the allocator gap between globals.
fn record_temp(idx, v) {
    store8(temp_table + idx, v);
    return idx;
}

// BUG gpmf-invalid-read: same table, unchecked read.
fn lookup_temp(idx) {
    return load8(temp_table + idx);
}

fn parse_klv(off, depth) {
    if (depth > 6) { exit(3); }
    nest_depth = depth;
    while (off + 8 <= input_len) {
        var key0 = load8(input + off);
        if (key0 == 0) { return off; }
        var typ = load8(input + off + 4);
        var ssize = load8(input + off + 5);
        var repeat = (load8(input + off + 6) << 8) | load8(input + off + 7);
        var payload = ssize * repeat;
        var padded = (payload + 3) & (0 - 4);
        if (off + 8 + padded > input_len) { exit(4); }
        klv_count = klv_count + 1;
        var p = input + off + 8;
        if (typ == 0) {
            // nested container
            parse_klv(off + 8, depth + 1);
        }
        if (typ == 'A') {
            accl_sum = accl_sum + average_samples(p, repeat, ssize);
        }
        if (typ == 'S') {
            if (payload >= 1) { scale_cache = load8(p); }
            accl_sum = scale_value(accl_sum + 1000);
        }
        if (typ == 'F') {
            if (payload >= 2) {
                var o = (load8(p) << 8) | load8(p + 1);
                if (o > 4) { accl_sum = accl_sum + far_read(cached_buf, o); }
            }
        }
        if (typ == 'R') {
            accl_sum = accl_sum + reuse_cached();
        }
        if (typ == 'T') {
            if (payload >= 2) {
                var idx = load8(p);
                var v = load8(p + 1);
                if (idx >= 100) {
                    if (v > 200) { record_temp(idx % 112, v); }
                    else { accl_sum = accl_sum + lookup_temp(idx % 112); }
                } else {
                    record_temp(idx, v);
                }
            }
        }
        if (typ == 'N') {
            var i = 0;
            while (i < payload && i < 63) {
                store8(device_name + i, load8(p + i));
                i = i + 1;
            }
            store8(device_name + i, 0);
        }
        off = off + 8 + padded;
    }
    return off;
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    klv_count = 0; accl_sum = 0; scale_cache = 1;
    cached_freed = 0; nest_depth = 0;
    memset(device_name, 0, 64);
    memset(temp_table, 0, 100);
    var n = read_input();
    if (n < 8) { exit(1); }
    // stream magic: "GPMF"
    if (load8(input) != 'G' || load8(input + 1) != 'P') { exit(2); }
    if (load8(input + 2) != 'M' || load8(input + 3) != 'F') { exit(2); }
    cached_buf = malloc(262144);
    memset(cached_buf, 7, 256);
    cached_freed = 0;
    parse_klv(4, 0);
    // NOTE: cached_buf (256 KiB) is never freed — the leak the OS forgives
    // in fresh processes and naive persistent mode cannot.
    return klv_count;
}
"#;

/// Planted bugs (Table 7 gpmf-parser rows).
pub static BUGS: [BugSpec; 6] = [
    BugSpec {
        id: "gpmf-div0-avg",
        kind: CrashKind::DivisionByZero,
        function: "average_samples",
        description: "sample average divides by input-controlled repeat count",
        cve: None,
    },
    BugSpec {
        id: "gpmf-div0-scale",
        kind: CrashKind::DivisionByZero,
        function: "scale_value",
        description: "scaling divides by an input-controlled cached divisor",
        cve: None,
    },
    BugSpec {
        id: "gpmf-unaddr-far",
        kind: CrashKind::UnaddressableAccess,
        function: "far_read",
        description: "16-bit seek offset multiplied past every allocation",
        cve: None,
    },
    BugSpec {
        id: "gpmf-unaddr-uaf",
        kind: CrashKind::UnaddressableAccess,
        function: "reuse_cached",
        description: "use-after-free of the sample buffer cache",
        cve: None,
    },
    BugSpec {
        id: "gpmf-invalid-write",
        kind: CrashKind::InvalidWrite,
        function: "record_temp",
        description: "temperature index 100..111 writes into the global gap",
        cve: None,
    },
    BugSpec {
        id: "gpmf-invalid-read",
        kind: CrashKind::InvalidRead,
        function: "lookup_temp",
        description: "temperature index 100..111 reads from the global gap",
        cve: None,
    },
];

/// Encode one KLV item.
fn klv(key: &[u8; 4], typ: u8, ssize: u8, repeat: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(key);
    out.push(typ);
    out.push(ssize);
    out.extend_from_slice(&repeat.to_be_bytes());
    out.extend_from_slice(payload);
    while out.len() % 4 != 0 {
        out.push(0);
    }
    out
}

fn stream(items: &[Vec<u8>]) -> Vec<u8> {
    let mut out = b"GPMF".to_vec();
    for i in items {
        out.extend_from_slice(i);
    }
    out
}

fn seeds() -> Vec<Vec<u8>> {
    vec![
        stream(&[
            klv(b"ACCL", b'A', 1, 4, &[1, 2, 3, 4]),
            klv(b"DVNM", b'N', 1, 6, b"GoPro9"),
        ]),
        stream(&[
            klv(b"SCAL", b'S', 1, 1, &[2]),
            klv(b"TMPC", b'T', 1, 2, &[5, 30]),
        ]),
        stream(&[klv(b"STRM", 0, 0, 0, &[])]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        // repeat = 0 → sum/0
        ("gpmf-div0-avg", stream(&[klv(b"ACCL", b'A', 1, 0, &[])])),
        // scale byte 0 → accl/0
        ("gpmf-div0-scale", stream(&[klv(b"SCAL", b'S', 1, 1, &[0])])),
        // far offset
        (
            "gpmf-unaddr-far",
            stream(&[klv(b"FAST", b'F', 1, 2, &[0xFF, 0xFF])]),
        ),
        // two 'R' items: free then use
        (
            "gpmf-unaddr-uaf",
            stream(&[klv(b"RBUF", b'R', 0, 0, &[]), klv(b"RBUF", b'R', 0, 0, &[])]),
        ),
        // idx ≥ 100 with v > 200 → gap write
        (
            "gpmf-invalid-write",
            stream(&[klv(b"TMPC", b'T', 1, 2, &[105, 250])]),
        ),
        // idx ≥ 100 with v ≤ 200 → gap read
        (
            "gpmf-invalid-read",
            stream(&[klv(b"TMPC", b'T', 1, 2, &[105, 10])]),
        ),
    ]
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "gpmf-parser",
    input_format: "mp4 (GoPro)",
    source: SOURCE,
    seeds,
    bugs: &BUGS,
    witnesses,
};
