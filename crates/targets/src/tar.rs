//! `bsdtar` — a tar-archive lister (Table 4 row 1). Bug-free; exercises
//! 512-byte block parsing, octal number fields, checksum verification,
//! type dispatch, and pax extension records.

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// bsdtar-like archive lister over USTAR blocks.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[4700000];
global input_len;
global file_count;
global dir_count;
global link_count;
global pax_count;
global total_bytes;
global bad_checksums;
global longname_seen;

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

// Parse a NUL/space-terminated octal field of up to w bytes.
fn parse_octal(p, w) {
    var v = 0;
    var i = 0;
    while (i < w) {
        var c = load8(p + i);
        if (c == 0 || c == ' ') { break; }
        if (c < '0' || c > '7') { return -1; }
        v = v * 8 + (c - '0');
        i = i + 1;
    }
    return v;
}

// Header checksum: 64-bit words over the whole block, skipping the two
// words (offsets 144 and 152) that overlap the checksum field itself.
fn header_checksum(hdr) {
    var sum = 0;
    var i = 0;
    while (i < 512) {
        if (i != 144 && i != 152) { sum = sum + load64(hdr + i); }
        i = i + 8;
    }
    return sum & 0xFFFFFF;
}

fn handle_pax(hdr, size) {
    // pax records: "len key=value\n" — count '=' occurrences in payload.
    pax_count = pax_count + 1;
    var p = hdr + 512;
    var end = input + input_len;
    var i = 0;
    var records = 0;
    while (i < size && i < 1024 && (p + i) < end) {
        if (load8(p + i) == '=') { records = records + 1; }
        i = i + 1;
    }
    return records;
}

fn handle_entry(hdr, size, typeflag) {
    if (typeflag == '0' || typeflag == 0) {
        file_count = file_count + 1;
        total_bytes = total_bytes + size;
        // Copy the name out, as tar -t would.
        var name = malloc(100);
        memcpy(name, hdr, 100);
        var len = 0;
        while (len < 100 && load8(name + len) != 0) { len = len + 1; }
        free(name);
        return len;
    }
    if (typeflag == '5') { dir_count = dir_count + 1; return 0; }
    if (typeflag == '1' || typeflag == '2') { link_count = link_count + 1; return 0; }
    if (typeflag == 'L') { longname_seen = 1; return 0; }
    if (typeflag == 'x' || typeflag == 'g') { return handle_pax(hdr, size); }
    return 0;
}

fn main() {
    file_count = 0; dir_count = 0; link_count = 0;
    pax_count = 0; total_bytes = 0; bad_checksums = 0; longname_seen = 0;
    var n = read_input();
    var off = 0;
    while (off + 512 <= n) {
        var hdr = input + off;
        if (load8(hdr) == 0) { break; }
        // magic "ustar" at offset 257
        if (load8(hdr + 257) != 'u') { exit(2); }
        if (load8(hdr + 258) != 's') { exit(2); }
        if (load8(hdr + 259) != 't') { exit(2); }
        var size = parse_octal(hdr + 124, 12);
        if (size < 0) { exit(3); }
        var stored = parse_octal(hdr + 148, 8);
        if (stored != header_checksum(hdr)) {
            bad_checksums = bad_checksums + 1;
            if (bad_checksums > 2) { exit(4); }
        }
        handle_entry(hdr, size, load8(hdr + 156));
        var blocks = (size + 511) / 512;
        off = off + 512 + blocks * 512;
    }
    if (file_count > 100) { exit(5); }
    return file_count + dir_count;
}
"#;

/// Build a single ustar header block with a correct checksum.
pub fn ustar_entry(name: &str, size: u64, typeflag: u8) -> Vec<u8> {
    let mut hdr = vec![0u8; 512];
    hdr[..name.len().min(100)].copy_from_slice(&name.as_bytes()[..name.len().min(100)]);
    let size_field = format!("{size:011o}\0");
    hdr[124..124 + 12].copy_from_slice(size_field.as_bytes());
    hdr[156] = typeflag;
    hdr[257..262].copy_from_slice(b"ustar");
    // word checksum matching the target: skip words at offsets 144 and 152
    let sum: u64 = (0..512)
        .step_by(8)
        .filter(|&i| i != 144 && i != 152)
        .map(|i| u64::from_le_bytes(hdr[i..i + 8].try_into().expect("8 bytes")))
        .fold(0u64, |a, w| a.wrapping_add(w))
        & 0xFF_FFFF;
    let chk = format!("{sum:08o}");
    hdr[148..148 + 8].copy_from_slice(&chk.as_bytes()[..8]);
    let mut out = hdr;
    let padded = size.div_ceil(512) * 512;
    out.extend(std::iter::repeat_n(b'A', size as usize));
    out.extend(std::iter::repeat_n(0u8, (padded - size) as usize));
    out
}

fn seeds() -> Vec<Vec<u8>> {
    let mut archive = ustar_entry("hello.txt", 13, b'0');
    archive.extend(ustar_entry("dir/", 0, b'5'));
    archive.extend(vec![0u8; 1024]); // end-of-archive blocks
    let mut pax = ustar_entry("pax", 20, b'x');
    pax.extend(vec![0u8; 512]);
    vec![archive, pax, vec![0u8; 1024]]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "bsdtar",
    input_format: "tar",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
