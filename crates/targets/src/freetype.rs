//! `freetype` — a TrueType (sfnt) font sanity checker (Table 4 row 5).
//! Bug-free; exercises a table directory, nested table parsing, and a
//! PRNG-salted cache key (the source of the natural non-determinism the
//! paper observed in freetype's correctness evaluation).

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// TrueType sfnt checker: offset table, table directory, head/cmap/glyf.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[1600000];
global input_len;
global init_done;
global proto_tables[512];
global num_tables;
global units_per_em;
global glyph_count;
global cmap_segments;
global cache_salt;
global table_tags[256];
global checksum_errors;

// Input-independent startup work (protocol/format tables): re-done for
// every test case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 300) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 300;
}

fn read_input() {
    var f = fopen("/fuzz/input", 0);
    if (f == 0) { exit(1); }
    input_len = fread(input, 1, 8192, f);
    fclose(f);
    return input_len;
}

fn be16(p) { return (load8(p) << 8) | load8(p + 1); }
fn be32(p) {
    return (load8(p) << 24) | (load8(p + 1) << 16) | (load8(p + 2) << 8) | load8(p + 3);
}

fn parse_head(off, len) {
    if (len < 54) { exit(3); }
    var magic = be32(input + off + 12);
    if (magic != 0x5F0F3CF5) { exit(3); }
    units_per_em = be16(input + off + 18);
    if (units_per_em < 16 || units_per_em > 16384) { exit(3); }
    return units_per_em;
}

fn parse_cmap(off, len) {
    if (len < 4) { exit(4); }
    var ntab = be16(input + off + 2);
    if (ntab > 8) { exit(4); }
    var i = 0;
    while (i < ntab) {
        var rec = off + 4 + i * 8;
        if (rec + 8 > off + len) { exit(4); }
        var sub_off = be32(input + rec + 4);
        if (sub_off + 8 <= len) {
            var format = be16(input + off + sub_off);
            if (format == 4) {
                var segx2 = be16(input + off + sub_off + 6);
                cmap_segments = cmap_segments + segx2 / 2;
            }
        }
        i = i + 1;
    }
    return cmap_segments;
}

fn parse_maxp(off, len) {
    if (len < 6) { exit(5); }
    glyph_count = be16(input + off + 4);
    if (glyph_count > 4096) { exit(5); }
    return glyph_count;
}

fn parse_glyf(off, len) {
    // walk simple-glyph headers
    var p = 0;
    var glyphs = 0;
    while (p + 10 <= len && glyphs < 64) {
        var ncont = be16(input + off + p);
        if (ncont > 100) { break; }
        glyphs = glyphs + 1;
        p = p + 10 + ncont * 2;
    }
    return glyphs;
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    num_tables = 0; units_per_em = 0; glyph_count = 0;
    cmap_segments = 0; checksum_errors = 0;
    memset(table_tags, 0, 256);
    // PRNG-salted cache key: harmless, but makes one global byte
    // naturally non-deterministic across runs (paper §6.1.4's freetype
    // observation).
    cache_salt = rand();
    var n = read_input();
    if (n < 12) { exit(1); }
    var version = be32(input);
    if (version != 0x00010000 && version != 0x74727565) { exit(2); }
    num_tables = be16(input + 4);
    if (num_tables == 0 || num_tables > 32) { exit(2); }
    if (12 + num_tables * 16 > n) { exit(2); }
    var seen_head = 0;
    var i = 0;
    while (i < num_tables) {
        var rec = 12 + i * 16;
        var tag = be32(input + rec);
        var off = be32(input + rec + 8);
        var len = be32(input + rec + 12);
        if (off + len > n) { exit(3); }
        store8(table_tags + (i * 4) % 256, load8(input + rec));
        if (tag == 0x68656164) { seen_head = 1; parse_head(off, len); }
        if (tag == 0x636D6170) { parse_cmap(off, len); }
        if (tag == 0x6D617870) { parse_maxp(off, len); }
        if (tag == 0x676C7966) { parse_glyf(off, len); }
        i = i + 1;
    }
    if (seen_head == 0) { exit(6); }
    return num_tables * 100 + glyph_count;
}
"#;

fn be32v(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Build a minimal sfnt with the given `(tag, payload)` tables.
pub fn sfnt(tables: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&be32v(0x0001_0000));
    out.extend_from_slice(&(tables.len() as u16).to_be_bytes());
    out.extend_from_slice(&[0; 6]); // search range etc.
    let mut off = 12 + tables.len() * 16;
    for (tag, payload) in tables {
        out.extend_from_slice(&be32v(*tag));
        out.extend_from_slice(&be32v(0)); // checksum
        out.extend_from_slice(&be32v(off as u32));
        out.extend_from_slice(&be32v(payload.len() as u32));
        off += payload.len();
    }
    for (_, payload) in tables {
        out.extend_from_slice(payload);
    }
    out
}

fn head_table() -> Vec<u8> {
    let mut t = vec![0u8; 54];
    t[12..16].copy_from_slice(&be32v(0x5F0F_3CF5));
    t[18..20].copy_from_slice(&1000u16.to_be_bytes());
    t
}

fn seeds() -> Vec<Vec<u8>> {
    let mut maxp = vec![0u8; 6];
    maxp[4..6].copy_from_slice(&4u16.to_be_bytes());
    let mut cmap = vec![0u8; 24];
    cmap[2..4].copy_from_slice(&1u16.to_be_bytes()); // one encoding record
    cmap[4 + 4..4 + 8].copy_from_slice(&be32v(12)); // subtable at 12
    cmap[12..14].copy_from_slice(&4u16.to_be_bytes()); // format 4
    cmap[18..20].copy_from_slice(&8u16.to_be_bytes()); // segcount*2
    let glyf = {
        let mut g = vec![0u8; 20];
        g[0..2].copy_from_slice(&1u16.to_be_bytes()); // one contour
        g
    };
    vec![
        sfnt(&[
            (0x6865_6164, head_table()),
            (0x6D61_7870, maxp),
            (0x636D_6170, cmap),
            (0x676C_7966, glyf),
        ]),
        sfnt(&[(0x6865_6164, head_table())]),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "freetype",
    input_format: "ttf",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
