//! `giftext` — a GIF structure dumper (Table 4 row 6). Bug-free;
//! exercises header/LSD parsing, color tables, sub-block chains, and
//! extension dispatch.

use crate::TargetSpec;

/// MinC source.
pub const SOURCE: &str = r#"
// giftext-like GIF walker: header, logical screen, images, extensions.
global input[8192];
// Stand-in for the real binary's code + read-only data footprint
// (Table 4 executable size): resident pages the forkserver must
// duplicate per test case, and ClosureX never touches.
const global __text_and_rodata[232000];
global input_len;
global init_done;
global proto_tables[512];
global width;
global height;
global gct_size;
global image_count;
global ext_count;
global comment_bytes;
global subblock_count;
global palette[768];

// Input-independent startup work (protocol/format tables): re-done for
// every test case unless the harness defers initialization.
fn init_tables() {
    var i = 0;
    while (i < 60) {
        store8(proto_tables + (i % 512), (i * 7) & 255);
        i = i + 1;
    }
    return 60;
}

// NOTE the classic leak: the handle is never fclosed on any path, and
// fopen's result is never checked. Harmless in a fresh process (the OS
// reclaims descriptors at exit); fatal after enough persistent iterations.
global in_file;

fn open_input() {
    in_file = fopen("/fuzz/input", 0);
    input_len = fread(input, 1, 8192, in_file);
    return input_len;
}

// Skip a sub-block chain starting at off; returns the offset after the
// terminator, or -1 on truncation.
fn skip_subblocks(off) {
    while (1) {
        if (off >= input_len) { return 0 - 1; }
        var len = load8(input + off);
        if (len == 0) { return off + 1; }
        subblock_count = subblock_count + 1;
        off = off + 1 + len;
    }
    return 0 - 1;
}

fn handle_extension(off) {
    if (off >= input_len) { exit(3); }
    var label = load8(input + off);
    ext_count = ext_count + 1;
    if (label == 0xFE) {
        // comment: tally bytes
        var p = off + 1;
        while (p < input_len) {
            var len = load8(input + p);
            if (len == 0) { return p + 1; }
            comment_bytes = comment_bytes + len;
            p = p + 1 + len;
        }
        exit(3);
    }
    return skip_subblocks(off + 1);
}

fn handle_image(off) {
    if (off + 9 > input_len) { exit(4); }
    image_count = image_count + 1;
    var flags = load8(input + off + 8);
    var next = off + 9;
    if (flags & 0x80) {
        var lct_entries = 1 << ((flags & 7) + 1);
        var lct_bytes = lct_entries * 3;
        if (next + lct_bytes > input_len) { exit(4); }
        var i = 0;
        while (i < lct_bytes && i < 768) {
            store8(palette + i, load8(input + next + i));
            i = i + 1;
        }
        next = next + lct_bytes;
    }
    // LZW minimum code size byte, then data sub-blocks.
    if (next >= input_len) { exit(4); }
    var mincode = load8(input + next);
    if (mincode > 11) { exit(4); }
    return skip_subblocks(next + 1);
}

fn main() {
    if (init_done == 0) { init_tables(); init_done = 1; }
    width = 0; height = 0; gct_size = 0;
    image_count = 0; ext_count = 0; comment_bytes = 0; subblock_count = 0;
    var n = open_input();
    if (n < 13) { exit(1); }
    if (load8(input) != 'G' || load8(input + 1) != 'I' || load8(input + 2) != 'F') { exit(2); }
    if (load8(input + 3) != '8') { exit(2); }
    var minor = load8(input + 4);
    if (minor != '7' && minor != '9') { exit(2); }
    if (load8(input + 5) != 'a') { exit(2); }
    width = load16(input + 6);
    height = load16(input + 8);
    var flags = load8(input + 10);
    var off = 13;
    if (flags & 0x80) {
        gct_size = (1 << ((flags & 7) + 1)) * 3;
        if (off + gct_size > n) { exit(2); }
        var i = 0;
        while (i < gct_size && i < 768) {
            store8(palette + i, load8(input + off + i));
            i = i + 1;
        }
        off = off + gct_size;
    }
    while (off < n) {
        var block = load8(input + off);
        if (block == 0x3B) { return image_count * 10 + ext_count; }
        if (block == 0x2C) {
            off = handle_image(off + 1);
        } else if (block == 0x21) {
            off = handle_extension(off + 1);
        } else {
            exit(5);
        }
        if (off < 0) { exit(6); }
        if (image_count > 64) { exit(7); }
    }
    return image_count * 10 + ext_count;
}
"#;

/// Build a GIF with `images` minimal images and an optional comment.
pub fn gif(images: usize, comment: Option<&[u8]>) -> Vec<u8> {
    let mut out = b"GIF89a".to_vec();
    out.extend_from_slice(&4u16.to_le_bytes()); // width
    out.extend_from_slice(&4u16.to_le_bytes()); // height
    out.push(0x80); // GCT present, 2 entries
    out.push(0); // bg color
    out.push(0); // aspect
    out.extend_from_slice(&[0, 0, 0, 255, 255, 255]); // GCT (2×3)
    if let Some(c) = comment {
        out.push(0x21);
        out.push(0xFE);
        out.push(c.len() as u8);
        out.extend_from_slice(c);
        out.push(0);
    }
    for _ in 0..images {
        out.push(0x2C);
        out.extend_from_slice(&0u16.to_le_bytes()); // left
        out.extend_from_slice(&0u16.to_le_bytes()); // top
        out.extend_from_slice(&4u16.to_le_bytes()); // width
        out.extend_from_slice(&4u16.to_le_bytes()); // height
        out.push(0); // no LCT
        out.push(2); // LZW min code size
        out.extend_from_slice(&[2, 0x4C, 0x01]); // one data sub-block
        out.push(0); // terminator
    }
    out.push(0x3B);
    out
}

fn seeds() -> Vec<Vec<u8>> {
    vec![
        gif(1, None),
        gif(2, Some(b"hello gif")),
        gif(0, Some(b"comment only")),
    ]
}

fn witnesses() -> Vec<(&'static str, Vec<u8>)> {
    Vec::new()
}

/// The benchmark spec.
pub static SPEC: TargetSpec = TargetSpec {
    name: "giftext",
    input_format: "gif",
    source: SOURCE,
    seeds,
    bugs: &[],
    witnesses,
};
