//! Crash-consistency gauntlet for the storage fault plane (ALICE-style):
//! a deterministic disk fault is injected at every early I/O operation
//! boundary of a checkpointed campaign — on the coordinator stream and on
//! every per-lane journal stream — and each cell must end in one of the
//! sanctioned states:
//!
//! * the fault is retried (or degraded with a typed report) and the
//!   campaign finishes with the exact unfaulted result, or
//! * the machine "dies" at the boundary, and a fault-free restart resumes
//!   to the exact unfaulted result (falling back to a fresh start only
//!   when the crash predates the first durable commit).
//!
//! Never a panic, never a raw `io::Error`, never silent data loss.

use aflrs::{Campaign, CampaignConfig, CampaignOutcome, CampaignResult, CheckpointConfig};
use closurex::executor::{Executor, ExecutorFactory};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::resilience::HarnessError;
use vmos::{DiskFaultKind, DiskFaultPlan};

const TARGET: &str = r#"
    fn main() {
        var f = fopen("/fuzz/input", 0);
        if (f == 0) { exit(1); }
        var buf[16];
        var n = fread(buf, 1, 16, f);
        fclose(f);
        if (n > 2) {
            if (load8(buf) == 'C') {
                if (load8(buf + 1) == 'X') {
                    return load64(0);
                }
                return 2;
            }
            return 1;
        }
        return 0;
    }
"#;

struct CxFactory<'m> {
    module: &'m fir::Module,
}

impl ExecutorFactory for CxFactory<'_> {
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError> {
        ClosureXExecutor::new(self.module, ClosureXConfig::default())
            .map(|ex| Box::new(ex) as Box<dyn Executor + Send>)
            .map_err(|e| HarnessError::BootFailed(e.to_string()))
    }
}

struct Lab {
    module: fir::Module,
    cfg: CampaignConfig,
    seeds: Vec<Vec<u8>>,
    sharded: bool,
}

impl Lab {
    fn new(sharded: bool) -> Self {
        Lab {
            module: minic::compile("t", TARGET).expect("target compiles"),
            cfg: CampaignConfig {
                budget_cycles: 2_000_000,
                seed: 7,
                ..CampaignConfig::default()
            },
            seeds: vec![b"go".to_vec(), b"CX!".to_vec()],
            sharded,
        }
    }

    fn leg(
        &self,
        plan: Option<DiskFaultPlan>,
        ck: Option<&CheckpointConfig>,
        resume: bool,
    ) -> Result<CampaignOutcome, aflrs::CampaignError> {
        let factory = CxFactory {
            module: &self.module,
        };
        let mut ex = None;
        let mut c = Campaign::new(&self.seeds, &self.cfg);
        if self.sharded {
            c = c.factory(&factory).shards(2).lanes(2).sync_epochs(2);
        } else {
            let slot = ex.insert(
                ClosureXExecutor::new(&self.module, ClosureXConfig::default()).expect("boots"),
            );
            c = c.executor(slot);
        }
        if let Some(p) = plan {
            c = c.storage_faults(p);
        }
        if let Some(k) = ck {
            c = c.checkpoint(k.clone());
        }
        if resume {
            c.resume().map(|(out, _)| out)
        } else {
            c.run()
        }
    }

    fn reference(&self) -> CampaignResult {
        self.leg(None, None, false)
            .expect("plain run")
            .finished()
            .expect("no kill configured")
    }

    fn dir(&self, tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "closurex-durability-{}-{}-{}",
            std::process::id(),
            u8::from(self.sharded),
            tag
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Run one grid cell: fault at `(stream, op)`, recover by the ALICE
    /// rules, and return the final result plus whether the faulted leg was
    /// killed at the boundary.
    fn cell(&self, ck: &CheckpointConfig, plan: DiskFaultPlan) -> (CampaignResult, bool) {
        let first = self
            .leg(Some(plan), Some(ck), false)
            .expect("a disk fault never surfaces as a raw error");
        match first {
            CampaignOutcome::Killed { .. } => {
                let out = match self.leg(None, Some(ck), true) {
                    Ok(out) => out,
                    // Crash before the first durable commit: a fresh
                    // start is the only recovery, and it must be exact.
                    Err(_) => self
                        .leg(None, Some(ck), false)
                        .expect("fresh restart over crash debris"),
                };
                (out.finished().expect("recovery leg finishes"), true)
            }
            finished => (finished.finished().expect("finished leg"), false),
        }
    }
}

fn fingerprint(r: &CampaignResult) -> String {
    serde_json::to_string(&r.sans_storage().sans_resume()).expect("result serializes")
}

/// Crash kinds at every early I/O boundary of every stream, in-process
/// sharded mode: each cell must recover to the exact unfaulted result.
#[test]
fn sharded_crash_at_every_boundary_resumes_exactly() {
    let lab = Lab::new(true);
    let want = fingerprint(&lab.reference());
    let mut kills = 0u32;
    for kind in [DiskFaultKind::CrashAtBoundary, DiskFaultKind::RenameLost] {
        for stream in 0..3u64 {
            for op in 0..6u64 {
                let ck = CheckpointConfig::new(lab.dir(&format!(
                    "crash-{}-{stream}-{op}",
                    kind.name()
                )));
                let (result, killed) = lab.cell(&ck, DiskFaultPlan::at(stream, op, kind));
                kills += u32::from(killed);
                assert_eq!(
                    fingerprint(&result),
                    want,
                    "{} at (stream {stream}, op {op}) diverged",
                    kind.name()
                );
                let _ = std::fs::remove_dir_all(&ck.dir);
            }
        }
    }
    assert!(kills > 0, "the grid must actually exercise crash recovery");
}

/// The same crash grid over the single-driver engine (everything on
/// stream 0: snapshots, rotation, and the journal interleave there).
#[test]
fn single_driver_crash_grid_resumes_exactly() {
    let lab = Lab::new(false);
    let want = fingerprint(&lab.reference());
    let mut kills = 0u32;
    for kind in [DiskFaultKind::CrashAtBoundary, DiskFaultKind::RenameLost] {
        for op in 0..10u64 {
            let mut ck =
                CheckpointConfig::new(lab.dir(&format!("sd-{}-{op}", kind.name())));
            ck.snapshot_every_execs = 30;
            let (result, killed) = lab.cell(&ck, DiskFaultPlan::at(0, op, kind));
            kills += u32::from(killed);
            assert_eq!(
                fingerprint(&result),
                want,
                "{} at op {op} diverged",
                kind.name()
            );
            let _ = std::fs::remove_dir_all(&ck.dir);
        }
    }
    assert!(kills > 0, "the grid must actually exercise crash recovery");
}

/// Transient kinds either retry to success (within the budget) or take
/// the typed degradation exit (past it) — the campaign always finishes
/// with the exact result, and a degraded stream is reported, not fatal.
#[test]
fn transient_faults_retry_or_degrade_typed() {
    let lab = Lab::new(true);
    let want = fingerprint(&lab.reference());
    let mut degraded_cells = 0u32;
    let mut retried_cells = 0u32;
    for kind in [
        DiskFaultKind::NoSpace,
        DiskFaultKind::Io,
        DiskFaultKind::ShortWrite,
    ] {
        for stream in 0..3u64 {
            for (op, fires) in [(0u64, 1u32), (2, 1), (1, 5), (3, 5)] {
                let ck = CheckpointConfig::new(lab.dir(&format!(
                    "tr-{}-{stream}-{op}-{fires}",
                    kind.name()
                )));
                let mut plan = DiskFaultPlan::at(stream, op, kind);
                plan.targeted[0].fires = fires;
                let (result, killed) = lab.cell(&ck, plan);
                assert!(!killed, "a transient fault must never kill the campaign");
                assert_eq!(
                    fingerprint(&result),
                    want,
                    "{} x{fires} at (stream {stream}, op {op}) diverged",
                    kind.name()
                );
                let st = &result.resilience.storage;
                if st.transient_faults > 0 {
                    if fires > 3 {
                        // Past the default retry budget: the stream must
                        // have dropped to in-memory checkpointing with a
                        // typed report, not errored out.
                        assert!(
                            !st.degradations.is_empty(),
                            "{} x{fires} at (stream {stream}, op {op}) exhausted \
                             retries without a typed degradation",
                            kind.name()
                        );
                        degraded_cells += 1;
                    } else {
                        assert!(st.retries > 0, "a single fire must be retried");
                        assert!(st.backoff_cycles > 0, "retries charge seeded backoff");
                        retried_cells += 1;
                    }
                }
                let _ = std::fs::remove_dir_all(&ck.dir);
            }
        }
    }
    assert!(retried_cells > 0, "the grid must exercise the retry path");
    assert!(degraded_cells > 0, "the grid must exercise the degradation ladder");
}

/// Bitrot lands silently; a kill and fault-free resume must scrub it out:
/// rotted snapshots are skipped and repaired, rotted journal bytes are
/// dropped and counted, and the resumed result is exact either way.
#[test]
fn bitrot_is_scrubbed_on_resume() {
    let lab = Lab::new(false);
    let reference = lab.reference();
    let want = fingerprint(&reference);
    // Kill just past the second snapshot: ops 0..52 then cover *every*
    // boundary the run reaches — both kept generations, the rotation, and
    // the live journal tail — so the sweep provably hits bytes the resume
    // actually reads.
    let kill_at = 40;
    assert!(reference.execs > kill_at, "target must outlive the kill switch");
    let mut observed = 0u64;
    for op in 0..52u64 {
        let mut ck = CheckpointConfig::new(lab.dir(&format!("rot-{op}")));
        ck.snapshot_every_execs = 30;
        ck.kill_after_execs = Some(kill_at);
        let first = lab
            .leg(Some(DiskFaultPlan::at(0, op, DiskFaultKind::Bitrot)), Some(&ck), false)
            .expect("bitrot never surfaces as a raw error");
        assert!(
            matches!(first, CampaignOutcome::Killed { .. }),
            "the kill switch fires regardless of the rot"
        );
        ck.kill_after_execs = None;
        let out = lab.leg(None, Some(&ck), true).expect("resume over rotted bytes");
        let result = out.finished().expect("no kill on the second leg");
        let st = &result.resilience.storage;
        observed += st.corrupt_snapshots + st.snapshots_repaired + st.torn_records_dropped;
        assert_eq!(fingerprint(&result), want, "bitrot at op {op} leaked into the result");
        let _ = std::fs::remove_dir_all(&ck.dir);
    }
    assert!(
        observed > 0,
        "the op sweep must hit committed bytes the scrub then catches"
    );
}

/// Faults on cleanup operations (orphan sweep, rotation unlinks) are
/// warnings, not fatal: the campaign finishes exactly, with the warning
/// counted.
#[test]
fn cleanup_failures_warn_and_continue() {
    let lab = Lab::new(true);
    let want = fingerprint(&lab.reference());
    let mut warned = 0u64;
    // Sweep the early coordinator ops: whichever of them are cleanup ops
    // take the warn path (single attempt, counted); the rest retry.
    for op in 0..8u64 {
        let ck = CheckpointConfig::new(lab.dir(&format!("warn-{op}")));
        let (result, killed) = lab.cell(&ck, DiskFaultPlan::at(0, op, DiskFaultKind::Io));
        assert!(!killed, "an EIO must never kill the campaign");
        assert_eq!(fingerprint(&result), want, "EIO at op {op} diverged");
        warned += result.resilience.storage.sweep_warnings;
        let _ = std::fs::remove_dir_all(&ck.dir);
    }
    assert!(warned > 0, "the op sweep must hit at least one cleanup operation");
}
