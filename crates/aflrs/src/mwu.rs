//! Mann-Whitney U test — the significance test the paper reports ρ-values
//! with (Tables 5 and 6).
//!
//! For the paper's 5-vs-5 trial design the *exact* two-sided p-value is
//! computed by enumerating the U distribution (a classic DP). When all five
//! ClosureX trials beat all five AFL++ trials, U = 0 and
//! p = 2/252 ≈ **0.0079** — exactly the value printed throughout the
//! paper's Table 5.

/// Exact two-sided Mann-Whitney U p-value for small samples.
///
/// Falls back to a normal approximation when `n1 + n2 > 24` or ties are
/// present.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> f64 {
    let n1 = a.len();
    let n2 = b.len();
    assert!(n1 > 0 && n2 > 0, "both samples must be non-empty");
    let u = u_statistic(a, b);
    // Cross-sample ties contribute 0.5 to U; only they invalidate the exact
    // distribution (within-sample ties never change U).
    let has_cross_ties = a
        .iter()
        .any(|x| b.iter().any(|y| (x - y).abs() < f64::EPSILON));
    if n1 + n2 <= 24 && !has_cross_ties {
        exact_p(u, n1, n2)
    } else {
        normal_approx_p(u, n1, n2)
    }
}

/// The U statistic of sample `a` relative to `b` (smaller of the two Us).
pub fn u_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut u1 = 0.0;
    for &x in a {
        for &y in b {
            if x > y {
                u1 += 1.0;
            } else if (x - y).abs() < f64::EPSILON {
                u1 += 0.5;
            }
        }
    }
    let u2 = (a.len() * b.len()) as f64 - u1;
    u1.min(u2)
}

/// Exact two-sided p: 2·P(U ≤ u) under the null, via the standard counting
/// recurrence.
fn exact_p(u: f64, n1: usize, n2: usize) -> f64 {
    // count[n1][n2][u] = number of arrangements with statistic exactly u.
    // Recurrence: f(n1, n2, u) = f(n1-1, n2, u-n2) + f(n1, n2-1, u).
    let max_u = n1 * n2;
    let mut table = vec![vec![vec![0u64; max_u + 1]; n2 + 1]; n1 + 1];
    for m in 0..=n1 {
        for n in 0..=n2 {
            for uu in 0..=max_u {
                table[m][n][uu] = if m == 0 || n == 0 {
                    u64::from(uu == 0)
                } else {
                    let a = if uu >= n { table[m - 1][n][uu - n] } else { 0 };
                    let b = table[m][n - 1][uu];
                    a + b
                };
            }
        }
    }
    let total: u64 = table[n1][n2].iter().sum();
    let u_floor = u.floor() as usize;
    let cum: u64 = table[n1][n2][..=u_floor.min(max_u)].iter().sum();
    let p = 2.0 * cum as f64 / total as f64;
    p.min(1.0)
}

/// Normal approximation with continuity correction.
fn normal_approx_p(u: f64, n1: usize, n2: usize) -> f64 {
    let n1 = n1 as f64;
    let n2 = n2 as f64;
    let mu = n1 * n2 / 2.0;
    let sigma = (n1 * n2 * (n1 + n2 + 1.0) / 12.0).sqrt();
    if sigma == 0.0 {
        return 1.0;
    }
    let z = ((u - mu).abs() - 0.5).max(0.0) / sigma;
    (2.0 * (1.0 - phi(z))).min(1.0)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn phi(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let d = 0.3989423 * (-z * z / 2.0).exp();
    let p =
        d * t * (0.3193815 + t * (-0.3565638 + t * (1.781478 + t * (-1.821256 + t * 1.330274))));
    if z >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value_for_clean_sweep() {
        // 5 trials each; every ClosureX trial beats every AFL++ trial.
        let cx = [400.0, 410.0, 420.0, 430.0, 440.0];
        let afl = [100.0, 110.0, 120.0, 130.0, 140.0];
        let p = mann_whitney_u(&cx, &afl);
        assert!(
            (p - 0.007_936_5).abs() < 1e-4,
            "clean 5v5 sweep must give the paper's 0.0079, got {p}"
        );
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 3.5, 4.5, 5.5];
        let p = mann_whitney_u(&a, &b);
        assert!(p > 0.5, "interleaved samples are not significant: {p}");
    }

    #[test]
    fn u_statistic_symmetry() {
        let a = [5.0, 6.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(u_statistic(&a, &b), u_statistic(&b, &a));
        assert_eq!(u_statistic(&a, &b), 0.0);
    }

    #[test]
    fn p_is_monotone_in_separation() {
        let base = [10.0, 11.0, 12.0, 13.0, 14.0];
        let close = [9.0, 10.5, 11.5, 12.5, 13.5];
        let far = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(mann_whitney_u(&base, &far) < mann_whitney_u(&base, &close));
    }

    #[test]
    fn normal_approx_reasonable_for_large_n() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + f64::from(i)).collect();
        let b: Vec<f64> = (0..30).map(|i| 10.0 + f64::from(i)).collect();
        let p = mann_whitney_u(&a, &b);
        assert!(p < 0.001);
    }

    #[test]
    fn phi_sanity() {
        assert!((phi(0.0) - 0.5).abs() < 1e-6);
        assert!(phi(3.0) > 0.998);
        assert!(phi(-3.0) < 0.002);
    }
}
