//! Multi-worker campaign sharding with a deterministic merge protocol.
//!
//! A sharded campaign partitions the work of one logical campaign across
//! **lanes** — independent mini-campaigns, each with its own executor
//! instance (built from a [`closurex::executor::ExecutorFactory`]), its own
//! lane-seeded RNG streams, a round-robin slice of the seed corpus, and an
//! equal slice of the cycle budget. Lanes run concurrently on a pool of
//! **worker** threads and synchronize at a fixed number of **sync epochs**:
//! barriers where the coordinator merges every lane's discoveries into one
//! global campaign state and hands the merged state back to every lane.
//!
//! # Why lanes ≠ workers
//!
//! The unit of determinism is the *lane*, not the thread. A campaign's
//! behavior is a pure function of `(config, seeds, lanes, sync_epochs)`;
//! the worker count only decides how many lanes run at once. That is what
//! makes `shards=4` reproduce `shards=1` **bit-for-bit** — same coverage
//! hash, same queue inputs, same crash records — on the same budget split:
//! both execute the identical lane decomposition, and the merge below is
//! insensitive to lane completion order.
//!
//! # The merge protocol
//!
//! At each barrier, lanes are folded in canonical lane order:
//!
//! * **Coverage** — the global virgin map is the commutative OR-union of
//!   the lanes' maps ([`VirginMap::union_tracked`]); union order cannot
//!   change the result.
//! * **Queue** — each lane's entries discovered this epoch are collected,
//!   sorted favored-first (brand-new edge beats new-bucket) with ties
//!   broken by `(lane, discovery order)`, deduplicated by exact input
//!   bytes, and appended to the global queue. Existing entries' `det_done`
//!   flags are OR-ed across lanes.
//! * **Crashes** — deduplicated by site; the canonical first-discovery
//!   record is the earliest in `(epoch, lane)` order, and per-site hit
//!   counts are summed across lanes.
//! * **Cycle accounting** — execs, clock, hangs, and management/execution
//!   cycles are summed per lane at the end ([`CampaignResult`] assembly).
//!
//! After the merge every lane receives the merged queue/coverage/crash
//! state; a lane mid-`Det`/`Havoc` batch is bounced back to `Pick` (its
//! entry index is stale against the merged queue — deterministically so,
//! because barriers land at the same per-lane clock regardless of worker
//! count).
//!
//! # Sharded checkpointing
//!
//! With a [`CheckpointConfig`], barriers double as checkpoints:
//! `shard-ckpt-{epoch:06}.bin` holds every lane's post-merge snapshot
//! (including exported executor state) sealed under the same
//! fingerprint-carrying header as single-driver snapshots, and each lane
//! journals its epoch executions to `shard-journal-{epoch:06}-{lane:03}.bin`.
//! `CheckpointConfig::snapshot_every_execs` is ignored in sharded mode —
//! the epoch barrier is the snapshot cadence. Resume loads the newest
//! valid shard snapshot, rebuilds the lanes from the factory, replays each
//! lane's journal for the interrupted epoch (truncating torn tails), and
//! continues — reproducing the uninterrupted campaign exactly.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use closurex::executor::{Executor, ExecutorFactory};
use vmos::cov::VirginMap;
use vmos::wire::fnv1a;
use vmos::{OrchFaultKind, OrchFaultPlan, Reader, WireError, Writer};

use crate::builder::CampaignError;
use crate::campaign::{CampaignConfig, Driver, Stage, StepOutcome};
use crate::checkpoint::{
    check_target, open_sealed, read_journal, seal_snapshot, storage_for, sweep_orphan_tmp,
    write_sealed, CampaignOutcome, CheckpointConfig, CheckpointError, DeltaRecord, Journal,
    ResumeReport, Scalars, SnapshotState,
};
use crate::queue::QueueEntry;
use crate::storage::{fsync_dir, OpOutcome, Storage, StorageCounters};
use crate::supervise::{
    self, LaneDegradation, LaneFault, Supervisor, SupervisorConfig, INJECTED_PANIC_MARKER,
};
use crate::stats::{CampaignResult, CrashRecord, ResilienceCounters};

/// Default lane count: the campaign decomposes into this many independent
/// mini-campaigns unless [`crate::Campaign::lanes`] overrides it.
pub const DEFAULT_LANES: usize = 4;

/// Default number of merge barriers per campaign.
pub const DEFAULT_SYNC_EPOCHS: u64 = 8;

/// How a sharded campaign decomposes and runs.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// Logical lanes (determinism unit).
    pub(crate) lanes: usize,
    /// Worker threads (throughput knob; never affects results).
    pub(crate) workers: usize,
    /// Merge barriers across the budget.
    pub(crate) sync_epochs: u64,
}

/// Mix a lane index into the campaign seed (splitmix64 finalizer), so each
/// lane draws an independent mutation schedule while staying a pure
/// function of `(seed, lane)`.
fn lane_seed(seed: u64, lane: usize) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A lane's campaign config: an equal slice of the budget (the first
/// `budget % lanes` lanes carry the remainder cycle each), a lane-mixed
/// seed, and early-stop disabled — `stop_after_crashes` is a *global*
/// predicate, checked against the merged crash list at barriers.
pub(crate) fn lane_config(cfg: &CampaignConfig, lane: usize, lanes: usize) -> CampaignConfig {
    let mut c = cfg.clone();
    let n = lanes as u64;
    c.budget_cycles = cfg.budget_cycles / n + u64::from((lane as u64) < cfg.budget_cycles % n);
    c.seed = lane_seed(cfg.seed, lane);
    c.stop_after_crashes = 0;
    c
}

/// The lane clock at which epoch `epoch` (of `epochs`) ends. The final
/// epoch runs to the exact lane budget.
fn epoch_limit(budget: u64, epoch: u64, epochs: u64) -> u64 {
    if epoch + 1 >= epochs {
        budget
    } else {
        ((u128::from(budget) * u128::from(epoch + 1)) / u128::from(epochs)) as u64
    }
}

/// One lane: an owned executor pair plus the campaign state carried across
/// epochs. `state.exec_state` is always `None` here — the live executor
/// *is* the executor state between barriers; it is only exported when a
/// shard snapshot is written.
pub(crate) struct Lane {
    pub(crate) executor: Box<dyn Executor + Send>,
    pub(crate) revalidator: Option<Box<dyn Executor + Send>>,
    pub(crate) cfg: CampaignConfig,
    pub(crate) seeds: Vec<Vec<u8>>,
    pub(crate) state: SnapshotState,
    pub(crate) journal: Option<Journal>,
}

/// Snapshot a driver for the inter-epoch handoff (no executor export).
pub(crate) fn barrier_state(d: &Driver<'_>) -> SnapshotState {
    SnapshotState {
        scalars: Scalars::capture(d),
        entries: d.queue.iter().cloned().collect(),
        virgin: d.virgin.clone(),
        crashes: d.crashes.clone(),
        exec_state: None,
    }
}

/// The shared kill switch for the simulated-SIGKILL torture hook: a global
/// exec counter across all lanes, tripping a stop flag every lane polls.
pub(crate) struct KillSwitch {
    limit: u64,
    execs: AtomicU64,
    stop: AtomicBool,
}

impl KillSwitch {
    pub(crate) fn new(limit: u64, already_executed: u64) -> Self {
        KillSwitch {
            limit,
            execs: AtomicU64::new(already_executed),
            stop: AtomicBool::new(false),
        }
    }

    /// Count one journaled execution; returns `true` once the campaign
    /// must stop (the kill may overshoot `limit` by in-flight lanes —
    /// resume is kill-point agnostic, so that is harmless).
    pub(crate) fn record_exec(&self) -> bool {
        if self.execs.fetch_add(1, Ordering::SeqCst) + 1 >= self.limit {
            self.stop.store(true, Ordering::SeqCst);
        }
        self.stopped()
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    pub(crate) fn execs(&self) -> u64 {
        self.execs.load(Ordering::SeqCst)
    }
}

/// Supervision context for one lane-epoch attempt: which lane this is,
/// which retry attempt, and how the supervisor watches it.
pub(crate) struct LaneAttempt<'p> {
    pub(crate) lane: u64,
    pub(crate) attempt: u32,
    pub(crate) faults: &'p OrchFaultPlan,
    pub(crate) hang_deadline: u64,
}

/// Run one lane from its carried state to the epoch's clock limit,
/// journaling each execution when checkpointing is on.
///
/// Supervised: the orchestration fault plan may decide this attempt fails
/// (an injected panic unwinds out of here and is contained by the caller;
/// an injected wedge stops stepping so the real hang detector trips), and
/// the deterministic heartbeat declares a [`LaneFault::Hang`] after
/// `hang_deadline` consecutive steps without simulated-clock progress.
/// Detection charges **zero simulated cycles** — like checkpoint I/O, the
/// supervisor lives outside the simulated clock, which is what keeps a
/// recovered campaign bit-identical to an unfaulted one.
pub(crate) fn run_lane_epoch(
    lane: &mut Lane,
    epoch: u64,
    epochs: u64,
    track: bool,
    kill: Option<&KillSwitch>,
    watch: &LaneAttempt<'_>,
) -> Result<Option<LaneFault>, CheckpointError> {
    let limit = epoch_limit(lane.cfg.budget_cycles, epoch, epochs);
    let injected = watch.faults.decide(watch.lane, epoch, watch.attempt);
    // Where in the epoch an injected panic/wedge lands (deterministic in
    // the plan and the position; short epochs fire at the barrier below).
    let trip_after = watch.faults.aux_bits(watch.lane, epoch, watch.attempt) % 16;
    let revalidator = lane
        .revalidator
        .as_deref_mut()
        .map(|r| r as &mut dyn Executor);
    let mut d = Driver::new(lane.executor.as_mut(), revalidator, &lane.seeds, &lane.cfg, track);
    lane.state.clone().apply(&mut d)?;
    let mut steps: u64 = 0;
    let mut stalled: u64 = 0;
    let mut killed = false;
    while d.clock < limit {
        if kill.is_some_and(|k| k.stopped()) {
            killed = true;
            break;
        }
        if injected == Some(OrchFaultKind::WorkerPanic) && steps >= trip_after {
            panic!(
                "{INJECTED_PANIC_MARKER} injected worker panic (lane {}, epoch {epoch}, \
                 attempt {})",
                watch.lane, watch.attempt
            );
        }
        let wedged = injected == Some(OrchFaultKind::LaneHang) && steps >= trip_after;
        let progressed = if wedged {
            // The injected hang stops the lane's simulated clock; the
            // *real* deadline logic below is what declares the fault.
            false
        } else {
            let before = d.clock;
            if d.step() == StepOutcome::Finished {
                break;
            }
            steps += 1;
            if track {
                if let Some(j) = lane.journal.as_mut() {
                    if j.append(&DeltaRecord::take(&mut d)).crashed() {
                        // An injected crash boundary in this lane's journal
                        // stream: the machine is dead. Stop stepping; the
                        // coordinator sees the plane-wide crash flag after
                        // the epoch and kills the campaign.
                        killed = true;
                        break;
                    }
                }
            }
            if kill.is_some_and(|k| k.record_exec()) {
                killed = true;
                break;
            }
            d.clock > before
        };
        if progressed {
            stalled = 0;
        } else {
            stalled += 1;
            if stalled >= watch.hang_deadline {
                return Ok(Some(LaneFault::Hang));
            }
        }
    }
    lane.state = barrier_state(&d);
    if killed {
        // Simulated SIGKILL: the campaign is stopping wholesale; the
        // supervisor has nothing left to recover this run.
        return Ok(None);
    }
    // An epoch shorter than the in-loop trigger point still fails: the
    // fault fires at the barrier handoff instead.
    match injected {
        Some(OrchFaultKind::WorkerPanic) => panic!(
            "{INJECTED_PANIC_MARKER} injected worker panic at the barrier (lane {}, \
             epoch {epoch}, attempt {})",
            watch.lane, watch.attempt
        ),
        Some(OrchFaultKind::LaneHang) => Ok(Some(LaneFault::Hang)),
        Some(OrchFaultKind::BarrierTimeout) => Ok(Some(LaneFault::BarrierTimeout)),
        None => Ok(None),
    }
}

/// Run one epoch across all lanes on the worker pool. Lane-to-worker
/// assignment is a throughput detail: every lane runs its own
/// deterministic schedule and the coordinator merges in lane order, so
/// results cannot depend on it.
///
/// Every lane body runs contained: a panic (injected or organic) comes
/// back as `Some(LaneFault::Panic)` in lane order, never as a worker-pool
/// abort. Retired (degraded) lanes are skipped and keep their barrier
/// state. Returns one fault slot per lane.
fn run_epoch_parallel(
    lanes: &mut [Lane],
    epoch: u64,
    epochs: u64,
    workers: usize,
    track: bool,
    kill: Option<&KillSwitch>,
    sup: &Supervisor,
) -> Result<Vec<Option<LaneFault>>, CampaignError> {
    supervise::install_quiet_panic_hook();
    let reference = vmos::reference_engine();
    let decode_opt = vmos::decode_opt();
    let workers = workers.clamp(1, lanes.len().max(1));
    let chunk = lanes.len().div_ceil(workers).max(1);
    let faults = &sup.cfg.faults;
    let hang_deadline = sup.cfg.hang_deadline_ticks;
    let dead = &sup.dead;
    let mut collected: Vec<Result<Option<LaneFault>, CheckpointError>> =
        Vec::with_capacity(lanes.len());
    let mut worker_lost = false;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for (ci, lane_chunk) in lanes.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            handles.push(s.spawn(move || {
                // Worker threads inherit the coordinator's engine choice.
                vmos::set_reference_engine(reference);
                vmos::set_decode_opt(decode_opt);
                lane_chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(off, l)| {
                        let idx = start + off;
                        if dead.get(idx).copied().unwrap_or(false) {
                            return Ok(None);
                        }
                        let watch = LaneAttempt {
                            lane: idx as u64,
                            attempt: 0,
                            faults,
                            hang_deadline,
                        };
                        match supervise::contain(|| {
                            run_lane_epoch(l, epoch, epochs, track, kill, &watch)
                        }) {
                            Ok(r) => r,
                            Err(payload) => Ok(Some(LaneFault::Panic(payload))),
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            match h.join() {
                Ok(rs) => collected.extend(rs),
                Err(_) => worker_lost = true,
            }
        }
    });
    if worker_lost {
        // Containment failed in a way `catch_unwind` could not see (e.g.
        // a non-unwinding abort in the pool plumbing itself): typed, not
        // an `expect` abort.
        return Err(CampaignError::WorkerLost(
            "a lane worker thread died outside supervised execution",
        ));
    }
    collected
        .into_iter()
        .map(|r| r.map_err(CampaignError::Checkpoint))
        .collect()
}

/// A lane's epoch-barrier recovery snapshot, minus the executor export
/// (which the recovered executor was just restored from).
pub(crate) fn stripped(snap: &SnapshotState) -> SnapshotState {
    let mut st = snap.clone();
    st.exec_state = None;
    st
}

/// Rebuild a faulted lane from its epoch-barrier snapshot and re-run the
/// epoch, retrying up to the supervisor's budget; past it, retire the lane
/// and fold its unspent cycles into the live siblings (the degradation
/// ladder — typed and reported, never a silent drop).
///
/// Recovery runs on the coordinator thread: re-runs are rare, lane order
/// keeps them deterministic, and the rebuilt executor reuses the exact
/// `export_state`/`restore_state` contract checkpoint resume is built on —
/// so a recovered epoch replays the faulted one bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn recover_lane(
    lanes: &mut [Lane],
    idx: usize,
    epoch: u64,
    epochs: u64,
    snap: &SnapshotState,
    first_fault: LaneFault,
    factory: &dyn ExecutorFactory,
    ck: Option<&CheckpointConfig>,
    storage: Option<&Storage>,
    kill: Option<&KillSwitch>,
    sup: &mut Supervisor,
) -> Result<(), CampaignError> {
    let track = ck.is_some();
    let restore_err =
        |e| CampaignError::Checkpoint(CheckpointError::Executor(e));
    let mut fault = first_fault;
    let mut attempt: u32 = 1;
    loop {
        sup.counters.record(&fault);
        if attempt > sup.cfg.max_lane_retries {
            // Degradation: retire the lane at its barrier state. Rebuild
            // its executor one last time so the final resilience report
            // reads from a sane instance, then hand the unspent budget to
            // the live siblings (even split, remainder on the first).
            let reclaimed = lanes[idx]
                .cfg
                .budget_cycles
                .saturating_sub(snap.scalars.clock);
            let mut executor = factory.build().map_err(CampaignError::Build)?;
            if let Some(es) = &snap.exec_state {
                executor.restore_state(es).map_err(restore_err)?;
            }
            lanes[idx].executor = executor;
            lanes[idx].revalidator =
                factory.build_revalidator().map_err(CampaignError::Build)?;
            lanes[idx].state = stripped(snap);
            lanes[idx].journal = None;
            sup.dead[idx] = true;
            if sup.live() == 0 {
                return Err(CampaignError::AllLanesLost { epoch });
            }
            let heirs: Vec<usize> = (0..lanes.len())
                .filter(|&j| j != idx && !sup.dead[j])
                .collect();
            let share = reclaimed / heirs.len() as u64;
            let rem = reclaimed % heirs.len() as u64;
            for (k, &j) in heirs.iter().enumerate() {
                lanes[j].cfg.budget_cycles += share + u64::from((k as u64) < rem);
            }
            sup.counters.degradations.push(LaneDegradation {
                lane: idx as u64,
                epoch,
                attempts: u64::from(attempt),
                reclaimed_cycles: reclaimed,
                last_fault: fault.name().to_string(),
            });
            return Ok(());
        }
        // Quarantine + rebuild: fresh executor pair from the factory,
        // restored to the barrier's exported state, lane state reset to
        // the barrier copy, journal recreated (truncating the faulted
        // attempt's partial records).
        let mut executor = factory.build().map_err(CampaignError::Build)?;
        if let Some(es) = &snap.exec_state {
            executor.restore_state(es).map_err(restore_err)?;
        }
        lanes[idx].executor = executor;
        lanes[idx].revalidator = factory.build_revalidator().map_err(CampaignError::Build)?;
        lanes[idx].state = stripped(snap);
        if let (Some(ck), Some(st)) = (ck, storage) {
            let (j, o) = Journal::create_at(
                &st.stream(1 + idx as u64),
                &shard_journal_path(&ck.dir, epoch, idx),
                snap.scalars.execs,
                ck.fsync,
            );
            lanes[idx].journal = Some(j);
            if o.crashed() {
                // The recreate hit an injected crash boundary: the machine
                // is dead. Leave the lane at its barrier state; the epoch
                // loop sees the plane-wide flag and kills the campaign.
                return Ok(());
            }
        }
        sup.counters.lane_rebuilds += 1;
        let outcome = {
            let watch = LaneAttempt {
                lane: idx as u64,
                attempt,
                faults: &sup.cfg.faults,
                hang_deadline: sup.cfg.hang_deadline_ticks,
            };
            let lane = &mut lanes[idx];
            supervise::contain(|| run_lane_epoch(lane, epoch, epochs, track, kill, &watch))
        };
        match outcome {
            Ok(Ok(None)) => {
                sup.counters.recovered += 1;
                return Ok(());
            }
            Ok(Ok(Some(f))) => {
                fault = f;
                attempt += 1;
            }
            Ok(Err(e)) => return Err(CampaignError::Checkpoint(e)),
            Err(payload) => {
                fault = LaneFault::Panic(payload);
                attempt += 1;
            }
        }
    }
}

/// The merged campaign state the coordinator owns between barriers.
pub(crate) struct Global {
    pub(crate) entries: Vec<QueueEntry>,
    pub(crate) virgin: VirginMap,
    pub(crate) crashes: Vec<CrashRecord>,
    /// Exact-input dedup for the queue merge.
    input_index: HashMap<Vec<u8>, usize>,
    /// Site dedup for the crash merge. Lookup only — never iterated.
    site_index: HashMap<(vmos::CrashKind, String, u32), usize>,
}

impl Global {
    pub(crate) fn new() -> Self {
        Global {
            entries: Vec::new(),
            virgin: VirginMap::new(),
            crashes: Vec::new(),
            input_index: HashMap::new(),
            site_index: HashMap::new(),
        }
    }

    /// Rebuild the global state from a barrier snapshot (every lane's
    /// post-merge collections are identical; lane 0's copy is canonical).
    pub(crate) fn from_state(st: &SnapshotState) -> Self {
        let mut g = Global {
            entries: st.entries.clone(),
            virgin: st.virgin.clone(),
            crashes: st.crashes.clone(),
            input_index: HashMap::new(),
            site_index: HashMap::new(),
        };
        for (i, e) in g.entries.iter().enumerate() {
            g.input_index.entry(e.data.clone()).or_insert(i);
        }
        for (i, c) in g.crashes.iter().enumerate() {
            g.site_index.entry(c.crash.site_key()).or_insert(i);
        }
        g
    }

    /// Fold every lane's epoch discoveries into the global state, then
    /// hand the merged state back to each lane. See the module docs for
    /// the protocol; each step is either commutative or applied in
    /// canonical lane order, so the result is invariant under lane
    /// completion (and worker) scheduling.
    fn merge_epoch(&mut self, lanes: &mut [Lane]) {
        let mut states: Vec<&mut SnapshotState> =
            lanes.iter_mut().map(|l| &mut l.state).collect();
        self.merge_epoch_states(&mut states);
    }

    /// The merge protocol itself, on bare barrier states — the substrate
    /// shared by in-process lanes (above) and lane-per-process campaigns,
    /// whose barrier states arrive over a pipe instead of a `Lane`.
    pub(crate) fn merge_epoch_states(&mut self, states: &mut [&mut SnapshotState]) {
        let entry_prefix = self.entries.len();
        let crash_prefix = self.crashes.len();

        // Coverage: commutative OR-union.
        let mut scratch = Vec::new();
        for st in states.iter() {
            scratch.clear();
            self.virgin.union_tracked(&st.virgin, &mut scratch);
        }

        // det_done on the shared prefix: OR across lanes (a duplicate
        // deterministic pass adds nothing, so "done anywhere" is "done").
        for st in states.iter() {
            for (g, l) in self.entries[..entry_prefix].iter_mut().zip(&st.entries) {
                if l.det_done {
                    g.det_done = true;
                }
            }
        }

        // Queue: favored-first, ties in (lane, discovery) order, exact-
        // input dedup. The sort is stable, so equal keys keep lane order.
        let mut candidates: Vec<&QueueEntry> = Vec::new();
        for st in states.iter() {
            let from = entry_prefix.min(st.entries.len());
            candidates.extend(&st.entries[from..]);
        }
        candidates.sort_by_key(|e| !e.favored);
        for e in candidates {
            match self.input_index.get(&e.data) {
                Some(&j) => {
                    if e.det_done {
                        self.entries[j].det_done = true;
                    }
                }
                None => {
                    self.input_index.insert(e.data.clone(), self.entries.len());
                    self.entries.push(e.clone());
                }
            }
        }

        // Crashes: existing sites get the per-lane hit deltas summed (a
        // lane's record started the epoch at the global count); new sites
        // are appended at their earliest (lane-order) discovery, summing
        // hits from lanes that found the same site independently.
        let base: Vec<u64> = self.crashes[..crash_prefix].iter().map(|c| c.hits).collect();
        let mut merged_hits = base.clone();
        for st in states.iter() {
            for (j, b) in base.iter().enumerate() {
                let lane_hits = st.crashes.get(j).map_or(*b, |c| c.hits);
                merged_hits[j] += lane_hits.saturating_sub(*b);
            }
            let from = crash_prefix.min(st.crashes.len());
            for c in &st.crashes[from..] {
                match self.site_index.get(&c.crash.site_key()) {
                    Some(&j) => self.crashes[j].hits += c.hits,
                    None => {
                        self.site_index.insert(c.crash.site_key(), self.crashes.len());
                        self.crashes.push(c.clone());
                    }
                }
            }
        }
        for (j, h) in merged_hits.into_iter().enumerate() {
            self.crashes[j].hits = h;
        }

        // Hand the merged state back; bounce stale mid-batch stages to
        // Pick (their entry index predates the merge).
        for st in states.iter_mut() {
            st.entries = self.entries.clone();
            st.virgin = self.virgin.clone();
            st.crashes = self.crashes.clone();
            if matches!(st.scalars.stage, Stage::Det { .. } | Stage::Havoc { .. }) {
                st.scalars.stage = Stage::Pick;
            }
        }
    }
}

/// Assemble the final result: per-lane accounting summed, merged
/// collections taken from the global state. Retired lanes still count —
/// their barrier-state scalars record the work done before retirement.
fn assemble(
    lanes: &mut [Lane],
    global: &Global,
    sup: &Supervisor,
    storage: Option<&Storage>,
) -> CampaignResult {
    let states: Vec<&SnapshotState> = lanes.iter().map(|l| &l.state).collect();
    let reports: Vec<_> = lanes.iter().map(|l| l.executor.resilience()).collect();
    let name = lanes.first().map_or("sharded", |l| l.executor.name());
    let st = storage.map(Storage::counters).unwrap_or_default();
    assemble_parts(&states, &reports, name, global, sup, st)
}

/// [`assemble`] on bare parts: barrier states plus each lane's lifetime
/// resilience report. Lane-per-process campaigns collect both over the
/// wire, so the result assembly cannot require live executors.
pub(crate) fn assemble_parts(
    states: &[&SnapshotState],
    reports: &[closurex::resilience::ResilienceReport],
    executor_name: &str,
    global: &Global,
    sup: &Supervisor,
    storage: StorageCounters,
) -> CampaignResult {
    let mut execs = 0;
    let mut clock = 0;
    let mut hangs = 0;
    let mut mgmt_cycles = 0;
    let mut exec_cycles = 0;
    let mut resilience = ResilienceCounters::default();
    for (st, report) in states.iter().zip(reports) {
        let s = &st.scalars;
        execs += s.execs;
        clock += s.clock;
        hangs += s.hangs;
        mgmt_cycles += s.mgmt_cycles;
        exec_cycles += s.exec_cycles;
        resilience.absorb(&ResilienceCounters {
            executor: report.clone(),
            harness_faults: s.harness_faults,
            retries: s.retries,
            dropped_inputs: s.dropped_inputs,
            watchdog_trips: s.watchdog_trips,
            supervision: Default::default(),
            storage: Default::default(),
        });
    }
    resilience.supervision = sup.counters.clone();
    resilience.storage = storage;
    CampaignResult {
        executor: executor_name.to_string(),
        execs,
        clock_cycles: clock,
        edges_found: global.virgin.edges_found(),
        coverage_hash: fnv1a(global.virgin.as_bytes()),
        crashes: global.crashes.clone(),
        queue_len: global.entries.len(),
        hangs,
        mgmt_cycles,
        exec_cycles,
        queue_inputs: global.entries.iter().map(|e| e.data.clone()).collect(),
        resilience,
        resume: None,
    }
}

// ---------------------------------------------------------------------------
// Sharded checkpoint files.
// ---------------------------------------------------------------------------

pub(crate) fn shard_snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("shard-ckpt-{epoch:06}.bin"))
}

pub(crate) fn shard_journal_path(dir: &Path, epoch: u64, lane: usize) -> PathBuf {
    dir.join(format!("shard-journal-{epoch:06}-{lane:03}.bin"))
}

fn parse_shard_snapshot(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("shard-ckpt-")?.strip_suffix(".bin")?;
    (rest.len() == 6 && rest.bytes().all(|b| b.is_ascii_digit()))
        .then(|| rest.parse().ok())
        .flatten()
}

fn parse_shard_journal(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("shard-journal-")?.strip_suffix(".bin")?;
    let (e, l) = rest.split_once('-')?;
    let digits = |s: &str, n| s.len() == n && s.bytes().all(|b| b.is_ascii_digit());
    (digits(e, 6) && digits(l, 3))
        .then(|| Some((e.parse().ok()?, l.parse().ok()?)))
        .flatten()
}

/// All `shard-ckpt-N.bin` files, sorted ascending by epoch.
pub(crate) fn list_shard_snapshots(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(n) = entry.file_name().to_str().and_then(parse_shard_snapshot) {
            out.push((n, entry.path()));
        }
    }
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

/// Write the barrier snapshot for `epoch`: every lane's state with its
/// executor exported, sealed under the target fingerprint.
fn write_shard_snapshot(
    storage: &Storage,
    ck: &CheckpointConfig,
    epoch: u64,
    lanes: &mut [Lane],
) -> OpOutcome {
    let states: Vec<SnapshotState> = lanes
        .iter_mut()
        .map(|lane| {
            let mut st = lane.state.clone();
            st.exec_state = lane.executor.export_state();
            st
        })
        .collect();
    let fp = lanes
        .first()
        .and_then(|l| l.executor.module_fingerprint())
        .unwrap_or(0);
    write_shard_snapshot_states(storage, ck, epoch, &states, fp)
}

/// [`write_shard_snapshot`] on pre-exported states — lane-per-process
/// campaigns receive each lane's state (executor export included) over the
/// wire and persist it from the supervisor side.
pub(crate) fn write_shard_snapshot_states(
    storage: &Storage,
    ck: &CheckpointConfig,
    epoch: u64,
    states: &[SnapshotState],
    fp: u64,
) -> OpOutcome {
    let mut w = Writer::new();
    w.put_u64(epoch);
    w.put_usize(states.len());
    for st in states {
        w.put_bytes(&st.encode());
    }
    let bytes = seal_snapshot(&w.into_bytes(), fp);
    write_sealed(storage, &shard_snapshot_path(&ck.dir, epoch), &bytes, ck.fsync)
}

/// Load and validate one shard snapshot: `(epoch, per-lane states, target
/// fingerprint)`.
#[allow(clippy::type_complexity)]
pub(crate) fn load_shard_snapshot(
    path: &Path,
) -> Result<(u64, Vec<SnapshotState>, u64), WireError> {
    let bytes = fs::read(path).map_err(|_| WireError::Truncated)?;
    let (fp, payload) = open_sealed(&bytes)?;
    let mut r = Reader::new(payload);
    let epoch = r.get_u64()?;
    let n = r.get_count()?;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        let buf = r.get_bytes()?;
        states.push(SnapshotState::decode(&buf)?);
    }
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing shard snapshot bytes"));
    }
    Ok((epoch, states, fp))
}

/// Archival rotation for a terminal tenant: keep only the single newest
/// shard snapshot (the sealed archive) plus the journals at or past its
/// epoch — exactly what [`EpochSession::resume`] needs to revive a killed
/// campaign — and delete every older generation. `spec.bin` and the
/// decoded-image sidecar are untouched (the sweep only looks at
/// `shard-ckpt-*` / `shard-journal-*` names). Returns `(files removed,
/// warnings)`; failures are never fatal — callers surface the warning
/// count and the extra files simply linger.
pub(crate) fn archive_shard_dir(dir: &Path) -> (u64, u64) {
    let mut removed = 0u64;
    let mut warnings = 0u64;
    let snaps = match list_shard_snapshots(dir) {
        Ok(s) => s,
        Err(_) => return (0, 1),
    };
    let Some(&(cutoff, _)) = snaps.last() else {
        return (0, 0); // never snapshotted — nothing to seal
    };
    for (_, path) in &snaps[..snaps.len() - 1] {
        match fs::remove_file(path) {
            Ok(()) => removed += 1,
            Err(_) => warnings += 1,
        }
    }
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return (removed, warnings + 1),
    };
    for entry in entries {
        let Ok(entry) = entry else {
            warnings += 1;
            continue;
        };
        if let Some((e, _)) = entry.file_name().to_str().and_then(parse_shard_journal) {
            if e < cutoff {
                match fs::remove_file(entry.path()) {
                    Ok(()) => removed += 1,
                    Err(_) => warnings += 1,
                }
            }
        }
    }
    (removed, warnings)
}

/// Keep the newest `keep` shard snapshots; drop older ones and the
/// journals of epochs nothing can resume from anymore. Unlink failures
/// are counted warnings; successful unlinks are made durable with a
/// directory fsync (mirroring the single-driver rotation).
pub(crate) fn rotate_shards(storage: &Storage, ck: &CheckpointConfig) -> OpOutcome {
    let dir = &ck.dir;
    let o = sweep_orphan_tmp(storage, dir);
    if o.crashed() {
        return o;
    }
    let mut failed = 0u64;
    let mut removed = false;
    let o = storage.cleanup_op(|_| {
        let snaps = list_shard_snapshots(dir)?;
        let keep = ck.keep_snapshots.max(1);
        if snaps.len() <= keep {
            return Ok(());
        }
        let cutoff = snaps[snaps.len() - keep].0;
        for (_, path) in &snaps[..snaps.len() - keep] {
            match fs::remove_file(path) {
                Ok(()) => removed = true,
                Err(_) => failed += 1,
            }
        }
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some((e, _)) = entry.file_name().to_str().and_then(parse_shard_journal) {
                if e < cutoff {
                    match fs::remove_file(entry.path()) {
                        Ok(()) => removed = true,
                        Err(_) => failed += 1,
                    }
                }
            }
        }
        Ok(())
    });
    if failed > 0 {
        storage.note_sweep_warnings(failed);
    }
    if o.crashed() {
        return o;
    }
    if removed && ck.fsync != crate::checkpoint::FsyncPolicy::Never {
        // Op: unlinks are directory mutations too — make them durable.
        return storage.op(false, |_| fsync_dir(dir));
    }
    o
}

/// Open each lane's journal for `epoch`, based at the lane's current exec
/// count. Each lane gets its own storage stream (`1 + lane`), so one
/// lane's fault history or degradation never perturbs a sibling's.
/// Returns `true` when an injected crash boundary fired mid-create.
fn open_journals(
    storage: &Storage,
    ck: &CheckpointConfig,
    epoch: u64,
    lanes: &mut [Lane],
) -> bool {
    for (i, lane) in lanes.iter_mut().enumerate() {
        let (j, o) = Journal::create_at(
            &storage.stream(1 + i as u64),
            &shard_journal_path(&ck.dir, epoch, i),
            lane.state.scalars.execs,
            ck.fsync,
        );
        lane.journal = Some(j);
        if o.crashed() {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// The sharded campaign loop.
// ---------------------------------------------------------------------------

fn build_lanes(
    factory: &dyn ExecutorFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    lanes_n: usize,
    track: bool,
) -> Result<Vec<Lane>, CampaignError> {
    let mut lanes = Vec::with_capacity(lanes_n);
    for i in 0..lanes_n {
        let mut executor = factory.build().map_err(CampaignError::Build)?;
        let revalidator = factory.build_revalidator().map_err(CampaignError::Build)?;
        let lane_cfg = lane_config(cfg, i, lanes_n);
        let lane_seeds: Vec<Vec<u8>> = seeds
            .iter()
            .enumerate()
            .filter(|(j, _)| j % lanes_n == i)
            .map(|(_, s)| s.clone())
            .collect();
        let state = barrier_state(&Driver::new(
            executor.as_mut(),
            None,
            &lane_seeds,
            &lane_cfg,
            track,
        ));
        lanes.push(Lane {
            executor,
            revalidator,
            cfg: lane_cfg,
            seeds: lane_seeds,
            state,
            journal: None,
        });
    }
    Ok(lanes)
}

/// How one [`EpochSession::step_epoch`] call left the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EpochStatus {
    /// The epoch ran and merged at its barrier; more epochs remain.
    Running,
    /// Simulated SIGKILL or storage crash boundary: the campaign is dead
    /// but resumable from what reached the disk.
    Killed {
        /// Executions completed (and journaled) before the kill.
        execs: u64,
    },
    /// No epochs remain (budget spent or early-stop fired): call
    /// [`EpochSession::finish`] for the result.
    Finished,
}

/// Coarse progress observables at the last barrier, for live status
/// reporting (the campaign service's per-tenant health stream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SessionProgress {
    /// Barriers completed / total.
    pub(crate) epoch: u64,
    pub(crate) epochs: u64,
    /// Executions across all lanes.
    pub(crate) execs: u64,
    /// Simulated cycles consumed across all lanes.
    pub(crate) clock_cycles: u64,
    /// Edges found in the merged virgin map.
    pub(crate) edges_found: u64,
    /// Merged queue length.
    pub(crate) queue_len: usize,
    /// Merged unique crash sites.
    pub(crate) crashes: usize,
}

/// A sharded campaign in flight, drivable one epoch at a time.
///
/// This is the old closed `run_epochs` loop turned inside out: the owner
/// calls [`EpochSession::step_epoch`] once per merge barrier and decides
/// between steps whether to keep going. The barrier is the natural
/// preemption point — lane state is merged and (when checkpointing)
/// durable on disk, so pausing a session between steps costs nothing and
/// changes nothing. A caller multiplexing many campaigns (the
/// `aflrs::service` fair-share scheduler) interleaves sessions at exactly
/// this granularity; [`run_sharded`]/[`resume_sharded`] below are the
/// drive-to-completion wrappers the single-campaign API uses.
///
/// Each epoch runs under supervision: before the lanes start, the
/// coordinator captures a per-lane recovery snapshot (barrier state +
/// exported executor state — the same pair a shard checkpoint persists);
/// lanes that come back faulted are rebuilt and re-run from it before the
/// merge, so the barrier only ever sees lane states a clean run would have
/// produced. Snapshot capture and recovery charge no simulated cycles.
pub(crate) struct EpochSession {
    lanes: Vec<Lane>,
    global: Global,
    /// Next epoch to run.
    epoch: u64,
    epochs: u64,
    cfg: CampaignConfig,
    plan: ShardPlan,
    ck: Option<CheckpointConfig>,
    storage: Option<Storage>,
    kill: Option<KillSwitch>,
    sup: Supervisor,
}

/// What starting (or resuming) a session produced: a live session, or a
/// campaign already dead on disk because an injected storage crash
/// boundary fired while laying down the initial snapshot/journals (or
/// during resume replay).
pub(crate) enum SessionStart {
    Live(Box<EpochSession>),
    Dead {
        /// Executions journaled before the crash boundary.
        execs: u64,
    },
}

impl EpochSession {
    /// Build the lanes and, when checkpointing, lay down the initial
    /// snapshot, journals, and decoded-image sidecar.
    pub(crate) fn start(
        factory: &dyn ExecutorFactory,
        seeds: &[Vec<u8>],
        cfg: &CampaignConfig,
        plan: &ShardPlan,
        ck: Option<&CheckpointConfig>,
        sup_cfg: &SupervisorConfig,
    ) -> Result<SessionStart, CampaignError> {
        let lanes_n = plan.lanes.max(1);
        let epochs = plan.sync_epochs.max(1);
        let track = ck.is_some();
        let mut lanes = build_lanes(factory, seeds, cfg, lanes_n, track)?;
        let sup = Supervisor::new(sup_cfg.clone(), lanes_n);
        let kill = ck
            .and_then(|c| c.kill_after_execs)
            .map(|k| KillSwitch::new(k, 0));
        let storage = ck.map(storage_for);
        if let (Some(ck), Some(st)) = (ck, storage.as_ref()) {
            if st.op(false, |_| fs::create_dir_all(&ck.dir)).crashed()
                || sweep_orphan_tmp(st, &ck.dir).crashed()
                || write_shard_snapshot(st, ck, 0, &mut lanes).crashed()
                || open_journals(st, ck, 0, &mut lanes)
            {
                return Ok(SessionStart::Dead { execs: 0 });
            }
            // Best-effort decoded-image sidecar next to the snapshots, so
            // resume — possibly in another process — skips the re-lower.
            // Outside the storage fault plane: a cache, not campaign state.
            if let Some(lane) = lanes.first() {
                lane.executor.save_decoded_sidecar(&ck.dir);
            }
        }
        Ok(SessionStart::Live(Box::new(EpochSession {
            lanes,
            global: Global::new(),
            epoch: 0,
            epochs,
            cfg: cfg.clone(),
            plan: plan.clone(),
            ck: ck.cloned(),
            storage,
            kill,
            sup,
        })))
    }

    /// Resume a killed sharded campaign: newest valid shard snapshot,
    /// lanes rebuilt from the factory (fingerprint-checked), per-lane
    /// journal replay with torn tails truncated. The returned session
    /// continues from the interrupted epoch.
    pub(crate) fn resume(
        factory: &dyn ExecutorFactory,
        seeds: &[Vec<u8>],
        cfg: &CampaignConfig,
        plan: &ShardPlan,
        ck: &CheckpointConfig,
        sup_cfg: &SupervisorConfig,
    ) -> Result<(SessionStart, ResumeReport), CampaignError> {
        let lanes_n = plan.lanes.max(1);
        let epochs = plan.sync_epochs.max(1);
        let mut info = ResumeReport::default();
        let storage = storage_for(ck);
        if sweep_orphan_tmp(&storage, &ck.dir).crashed() {
            return Ok((SessionStart::Dead { execs: 0 }, info));
        }
        let snaps = list_shard_snapshots(&ck.dir).map_err(CheckpointError::Io)?;
        let mut chosen = None;
        for (epoch, path) in snaps.iter().rev() {
            match load_shard_snapshot(path) {
                Ok((e, states, fp)) if e == *epoch => {
                    chosen = Some((e, states, fp));
                    break;
                }
                _ => {
                    info.corrupt_snapshots_skipped += 1;
                    storage.note_corrupt_snapshot();
                }
            }
        }
        let Some((epoch, states, fp)) = chosen else {
            return Err(CampaignError::Checkpoint(CheckpointError::NoUsableSnapshot));
        };
        if states.len() != lanes_n {
            return Err(CampaignError::Config(
                "shard snapshot lane count disagrees with the configured lanes",
            ));
        }
        info.snapshot_execs = states.iter().map(|s| s.scalars.execs).sum();

        let global = Global::from_state(&states[0]);
        // Warm the process-wide decoded-image cache through the sidecar
        // *before* any lane executor is built — construction lowers
        // eagerly on a cold cache, which would waste the sidecar. Falls
        // back to warming through lane 0 for factories without a
        // factory-level warm.
        let mut warm = factory.warm_decoded_image(Some(&ck.dir));
        let mut lanes = Vec::with_capacity(lanes_n);
        let mut total_execs = 0;
        for (i, st) in states.into_iter().enumerate() {
            let mut executor = factory.build().map_err(CampaignError::Build)?;
            if i == 0 {
                // All lanes share the module: checking one copy suffices.
                check_target(fp, &*executor).map_err(CampaignError::Checkpoint)?;
                if warm.is_none() {
                    warm = executor.warm_decoded_image(Some(&ck.dir));
                }
                info.note_decoded_image(warm);
            }
            let mut revalidator = factory.build_revalidator().map_err(CampaignError::Build)?;
            let lane_cfg = lane_config(cfg, i, lanes_n);
            let lane_seeds: Vec<Vec<u8>> = seeds
                .iter()
                .enumerate()
                .filter(|(j, _)| j % lanes_n == i)
                .map(|(_, s)| s.clone())
                .collect();
            let jpath = shard_journal_path(&ck.dir, epoch, i);
            let base = st.scalars.execs;
            let mut last_exec_state = st.exec_state.clone();
            let rv = revalidator.as_deref_mut().map(|r| r as &mut dyn Executor);
            let mut d = Driver::new(executor.as_mut(), rv, &lane_seeds, &lane_cfg, true);
            st.apply(&mut d).map_err(CampaignError::Checkpoint)?;
            let journal = if epoch < epochs {
                let lane_storage = storage.stream(1 + i as u64);
                let (j, o) = match read_journal(&jpath, base) {
                    Some((records, valid_len, dropped)) => {
                        for rec in &records {
                            rec.apply(&mut d);
                            if rec.exec_state.is_some() {
                                last_exec_state.clone_from(&rec.exec_state);
                            }
                            info.records_applied += 1;
                        }
                        if dropped > 0 {
                            info.torn_records += dropped;
                            storage.note_torn_records(dropped);
                        }
                        Journal::reopen(&lane_storage, &jpath, valid_len, ck.fsync)
                    }
                    // Killed before this lane's journal reached the disk:
                    // start it fresh from the snapshot base.
                    None => Journal::create_at(&lane_storage, &jpath, base, ck.fsync),
                };
                if o.crashed() {
                    let execs = total_execs + d.execs;
                    return Ok((SessionStart::Dead { execs }, info));
                }
                Some(j)
            } else {
                None
            };
            if let Some(es) = &last_exec_state {
                d.executor
                    .restore_state(es)
                    .map_err(|e| CampaignError::Checkpoint(CheckpointError::Executor(e)))?;
            }
            total_execs += d.execs;
            let state = barrier_state(&d);
            drop(d);
            lanes.push(Lane {
                executor,
                revalidator,
                cfg: lane_cfg,
                seeds: lane_seeds,
                state,
                journal,
            });
        }
        info.sweep_warnings = storage.counters().sweep_warnings;

        let kill = ck
            .kill_after_execs
            .map(|k| KillSwitch::new(k, total_execs));
        // Supervision state is in-memory only: a resume starts every lane
        // live with fresh counters (retirement and fault tallies are part
        // of the recovery *report*, not the persisted campaign state).
        let sup = Supervisor::new(sup_cfg.clone(), lanes_n);
        Ok((
            SessionStart::Live(Box::new(EpochSession {
                lanes,
                global,
                epoch,
                epochs,
                cfg: cfg.clone(),
                plan: plan.clone(),
                ck: Some(ck.clone()),
                storage: Some(storage),
                kill,
                sup,
            })),
            info,
        ))
    }

    /// Sum of the lanes' journaled exec counters — what the harness
    /// reports as "killed at N execs" when a storage crash boundary fires.
    fn lanes_execs(&self) -> u64 {
        self.lanes.iter().map(|l| l.state.scalars.execs).sum()
    }

    /// Run exactly one epoch to its merge barrier (including checkpoint
    /// rotation when armed). Returns what to do next; a `Killed` session
    /// must not be stepped again.
    pub(crate) fn step_epoch(
        &mut self,
        factory: &dyn ExecutorFactory,
    ) -> Result<EpochStatus, CampaignError> {
        if self.epoch >= self.epochs {
            return Ok(EpochStatus::Finished);
        }
        let epoch = self.epoch;
        let track = self.ck.is_some();
        // Recovery snapshots for this epoch: barrier state + executor
        // export, per live lane. Dead lanes have nothing to recover.
        let recovery: Vec<Option<SnapshotState>> = self
            .lanes
            .iter_mut()
            .enumerate()
            .map(|(i, l)| {
                (!self.sup.dead[i]).then(|| {
                    let mut st = l.state.clone();
                    st.exec_state = l.executor.export_state();
                    st
                })
            })
            .collect();
        let faults = run_epoch_parallel(
            &mut self.lanes,
            epoch,
            self.epochs,
            self.plan.workers,
            track,
            self.kill.as_ref(),
            &self.sup,
        )?;
        if let Some(k) = &self.kill {
            if k.stopped() {
                // Simulated SIGKILL: stop right here — no barrier, no
                // snapshot, no recovery (resume replays the journals
                // whatever state the faulted lane left them in).
                return Ok(EpochStatus::Killed { execs: k.execs() });
            }
        }
        if self.storage.as_ref().is_some_and(Storage::crashed) {
            // A lane's journal stream hit an injected crash boundary: the
            // machine died mid-epoch. No recovery, no barrier — resume
            // replays whatever prefix reached the disk.
            return Ok(EpochStatus::Killed { execs: self.lanes_execs() });
        }
        for (idx, fault) in faults.into_iter().enumerate() {
            let Some(fault) = fault else { continue };
            let Some(snap) = &recovery[idx] else { continue };
            recover_lane(
                &mut self.lanes,
                idx,
                epoch,
                self.epochs,
                snap,
                fault,
                factory,
                self.ck.as_ref(),
                self.storage.as_ref(),
                self.kill.as_ref(),
                &mut self.sup,
            )?;
            if self.storage.as_ref().is_some_and(Storage::crashed) {
                return Ok(EpochStatus::Killed { execs: self.lanes_execs() });
            }
        }
        self.global.merge_epoch(&mut self.lanes);
        if let (Some(ck), Some(st)) = (self.ck.as_ref(), self.storage.as_ref()) {
            for lane in self.lanes.iter_mut() {
                lane.journal = None; // close the finished epoch's journals
            }
            if write_shard_snapshot(st, ck, epoch + 1, &mut self.lanes).crashed()
                || rotate_shards(st, ck).crashed()
                || (epoch + 1 < self.epochs && open_journals(st, ck, epoch + 1, &mut self.lanes))
            {
                return Ok(EpochStatus::Killed { execs: self.lanes_execs() });
            }
        }
        self.epoch += 1;
        // The global early-stop predicate, evaluated on merged crashes.
        if self.cfg.stop_after_crashes > 0
            && self.global.crashes.len() >= self.cfg.stop_after_crashes
        {
            self.epoch = self.epochs;
        }
        Ok(if self.epoch >= self.epochs {
            EpochStatus::Finished
        } else {
            EpochStatus::Running
        })
    }

    /// Assemble the final [`CampaignResult`] (call once `step_epoch`
    /// reports `Finished`).
    pub(crate) fn finish(&mut self) -> CampaignResult {
        assemble(
            &mut self.lanes,
            &self.global,
            &self.sup,
            self.storage.as_ref(),
        )
    }

    /// Progress observables at the last completed barrier.
    pub(crate) fn progress(&self) -> SessionProgress {
        SessionProgress {
            epoch: self.epoch,
            epochs: self.epochs,
            execs: self.lanes_execs(),
            clock_cycles: self.lanes.iter().map(|l| l.state.scalars.clock).sum(),
            edges_found: self.global.virgin.edges_found() as u64,
            queue_len: self.global.entries.len(),
            crashes: self.global.crashes.len(),
        }
    }

    /// Drive the session to its end — the single-campaign code path.
    pub(crate) fn run_to_completion(
        &mut self,
        factory: &dyn ExecutorFactory,
    ) -> Result<CampaignOutcome, CampaignError> {
        loop {
            match self.step_epoch(factory)? {
                EpochStatus::Running => {}
                EpochStatus::Killed { execs } => {
                    return Ok(CampaignOutcome::Killed { execs })
                }
                EpochStatus::Finished => {
                    return Ok(CampaignOutcome::Finished(self.finish()))
                }
            }
        }
    }
}

/// Run a sharded campaign (see module docs). `ck` arms barrier
/// checkpointing and the simulated-kill hook; `sup_cfg` configures lane
/// supervision (always on — the defaults add no observable behavior to a
/// fault-free run).
pub(crate) fn run_sharded(
    factory: &dyn ExecutorFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    plan: &ShardPlan,
    ck: Option<&CheckpointConfig>,
    sup_cfg: &SupervisorConfig,
) -> Result<CampaignOutcome, CampaignError> {
    match EpochSession::start(factory, seeds, cfg, plan, ck, sup_cfg)? {
        SessionStart::Dead { execs } => Ok(CampaignOutcome::Killed { execs }),
        SessionStart::Live(mut s) => s.run_to_completion(factory),
    }
}

/// Resume a killed sharded campaign to completion (see
/// [`EpochSession::resume`]).
pub(crate) fn resume_sharded(
    factory: &dyn ExecutorFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    plan: &ShardPlan,
    ck: &CheckpointConfig,
    sup_cfg: &SupervisorConfig,
) -> Result<(CampaignOutcome, ResumeReport), CampaignError> {
    let (start, info) = EpochSession::resume(factory, seeds, cfg, plan, ck, sup_cfg)?;
    match start {
        SessionStart::Dead { execs } => Ok((CampaignOutcome::Killed { execs }, info)),
        SessionStart::Live(mut s) => Ok((s.run_to_completion(factory)?, info)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_budgets_sum_to_total() {
        let cfg = CampaignConfig {
            budget_cycles: 1_000_003,
            ..CampaignConfig::default()
        };
        let total: u64 = (0..3).map(|i| lane_config(&cfg, i, 3).budget_cycles).sum();
        assert_eq!(total, 1_000_003);
        assert_eq!(lane_config(&cfg, 0, 3).budget_cycles, 333_335);
    }

    #[test]
    fn lane_seeds_distinct_and_stable() {
        let a = lane_seed(42, 0);
        let b = lane_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, lane_seed(42, 0), "pure function of (seed, lane)");
    }

    #[test]
    fn epoch_limits_are_monotone_and_exact() {
        let budget = 1_000_000;
        let mut prev = 0;
        for e in 0..8 {
            let lim = epoch_limit(budget, e, 8);
            assert!(lim >= prev);
            prev = lim;
        }
        assert_eq!(epoch_limit(budget, 7, 8), budget, "final epoch is exact");
    }

    #[test]
    fn archive_keeps_newest_snapshot_and_its_journals() {
        let dir = std::env::temp_dir()
            .join(format!("cx-archive-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tempdir");
        for epoch in [1u64, 3, 7] {
            fs::write(shard_snapshot_path(&dir, epoch), b"snap").expect("write");
        }
        for epoch in 0..9u64 {
            fs::write(shard_journal_path(&dir, epoch, 0), b"jrnl").expect("write");
        }
        fs::write(dir.join("spec.bin"), b"spec").expect("write");
        fs::write(dir.join("decoded-image.bin"), b"sidecar").expect("write");

        let (removed, warnings) = archive_shard_dir(&dir);
        assert_eq!(warnings, 0);
        // 2 older snapshots + journals for epochs 0..=6.
        assert_eq!(removed, 2 + 7);
        let mut left: Vec<String> = fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(
            left,
            vec![
                "decoded-image.bin".to_string(),
                "shard-ckpt-000007.bin".to_string(),
                "shard-journal-000007-000.bin".to_string(),
                "shard-journal-000008-000.bin".to_string(),
                "spec.bin".to_string(),
            ],
            "only the sealed snapshot, its resume journals, and non-shard files survive"
        );
        // Idempotent: a second sweep finds nothing to remove.
        assert_eq!(archive_shard_dir(&dir), (0, 0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn archive_without_snapshots_is_a_no_op() {
        let dir = std::env::temp_dir()
            .join(format!("cx-archive-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tempdir");
        fs::write(shard_journal_path(&dir, 0, 0), b"jrnl").expect("write");
        assert_eq!(
            archive_shard_dir(&dir),
            (0, 0),
            "no sealed snapshot yet: journals must survive untouched"
        );
        assert!(shard_journal_path(&dir, 0, 0).is_file());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn shard_file_names_round_trip() {
        assert_eq!(parse_shard_snapshot("shard-ckpt-000007.bin"), Some(7));
        assert_eq!(parse_shard_snapshot("shard-ckpt-7.bin"), None);
        assert_eq!(
            parse_shard_journal("shard-journal-000003-002.bin"),
            Some((3, 2))
        );
        assert_eq!(parse_shard_journal("shard-journal-3-2.bin"), None);
        assert_eq!(parse_shard_journal("ckpt-000000000001.bin"), None);
    }
}
