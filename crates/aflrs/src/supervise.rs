//! Lane supervision: fault containment, hang deadlines, and deterministic
//! recovery for the sharded campaign.
//!
//! PR 1 taught a *single executor* to notice and survive state corruption;
//! the sharded orchestrator reintroduced an all-or-nothing failure mode one
//! level up — a panicking or wedged lane worker used to abort the whole
//! campaign. This module is the missing supervision layer:
//!
//! * **Containment** — every lane body runs under `catch_unwind`, so a
//!   panic is a typed [`LaneFault`], not a process abort. A lane that
//!   stops making *simulated-clock* progress for
//!   [`SupervisorConfig::hang_deadline_ticks`] consecutive steps is
//!   declared hung — the deadline is counted on the deterministic clock,
//!   not wall time, so detection replays identically.
//! * **Recovery** — the faulted lane's executor is rebuilt from the
//!   campaign's [`ExecutorFactory`](closurex::executor::ExecutorFactory),
//!   restored from the last epoch-barrier snapshot (the same
//!   `export_state`/`restore_state` machinery checkpoint resume uses), and
//!   the epoch is re-executed. Because a lane's schedule is a pure
//!   function of its barrier state, the recovered campaign's
//!   [`CampaignResult`](crate::CampaignResult) is bit-identical to an
//!   unfaulted run — modulo the [`SupervisionCounters`] that report the
//!   recovery itself.
//! * **Degradation** — a lane that keeps failing past
//!   [`SupervisorConfig::max_lane_retries`] rebuilds is retired: its
//!   remaining cycle budget is folded into its live siblings at the
//!   barrier and a typed [`LaneDegradation`] is reported. Never a silent
//!   drop — this mirrors the executor-level persistent→fork-per-exec
//!   ladder one level up.
//!
//! Fault injection for all three paths lives in
//! [`vmos::fault::OrchFaultPlan`]: seeded worker panics, lane hangs, and
//! barrier-timeout faults, keyed by `(lane, epoch, attempt)` position so
//! injection cannot depend on worker-thread scheduling.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use serde::{Deserialize, Serialize};
use vmos::{OrchFaultPlan, ProcFaultPlan};

/// Marker embedded in injected panic payloads (diagnostics only — the
/// supervisor treats injected and organic panics identically).
pub(crate) const INJECTED_PANIC_MARKER: &str = "[injected-lane-fault]";

/// How the supervisor watches and recovers lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Rebuild-and-retry attempts per `(lane, epoch)` after the initial
    /// failure before the lane is degraded out.
    pub max_lane_retries: u32,
    /// Consecutive zero-progress lane steps (simulated clock unchanged)
    /// before the lane is declared hung. Counted deterministically, so a
    /// hang is detected at the same point in every replay.
    pub hang_deadline_ticks: u64,
    /// Orchestration-layer fault injection plan (default: none).
    pub faults: OrchFaultPlan,
    /// Process-layer fault injection plan, honored only by
    /// `Isolation::Process` campaigns (default: none). In-process
    /// campaigns ignore it — there is no process to kill.
    pub proc_faults: ProcFaultPlan,
    /// Wall-clock milliseconds the supervisor waits for a worker frame
    /// before declaring the worker stalled, killing, and respawning it.
    /// Unlike [`SupervisorConfig::hang_deadline_ticks`] this is real time:
    /// a wedged *process* makes no simulated-clock progress the parent
    /// could observe. Recovery stays deterministic because the re-run is,
    /// whatever the wall-clock moment the deadline fired.
    pub read_deadline_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_lane_retries: 2,
            hang_deadline_ticks: 2048,
            faults: OrchFaultPlan::none(),
            proc_faults: ProcFaultPlan::none(),
            read_deadline_ms: 10_000,
        }
    }
}

/// What went wrong with one lane-epoch attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneFault {
    /// The lane body panicked; the payload is carried for the report.
    Panic(String),
    /// The lane stopped making simulated-clock progress past the deadline.
    Hang,
    /// The lane finished its epoch but the barrier handoff was lost.
    BarrierTimeout,
    /// The lane's worker process died to a signal (SIGKILL, SIGABRT, …).
    Signal(i32),
    /// The lane's worker process exited with a nonzero status mid-epoch
    /// (e.g. the conventional OOM-kill status 137).
    Exit(i32),
    /// The worker's pipe closed without a status — the process vanished.
    PipeEof,
    /// The worker sent a frame that failed checksum/framing validation;
    /// its state is untrusted and the process is replaced.
    FrameCorrupt,
    /// The worker missed the supervisor's wall-clock read deadline and
    /// was killed.
    Deadline,
}

impl LaneFault {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LaneFault::Panic(_) => "panic",
            LaneFault::Hang => "hang",
            LaneFault::BarrierTimeout => "barrier_timeout",
            LaneFault::Signal(_) => "signal",
            LaneFault::Exit(_) => "exit",
            LaneFault::PipeEof => "pipe_eof",
            LaneFault::FrameCorrupt => "frame_corrupt",
            LaneFault::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for LaneFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneFault::Panic(msg) => write!(f, "panic: {msg}"),
            LaneFault::Hang => write!(f, "hang past the heartbeat deadline"),
            LaneFault::BarrierTimeout => write!(f, "barrier handoff timed out"),
            LaneFault::Signal(sig) => write!(f, "worker killed by signal {sig}"),
            LaneFault::Exit(code) => write!(f, "worker exited with status {code}"),
            LaneFault::PipeEof => write!(f, "worker pipe closed unexpectedly"),
            LaneFault::FrameCorrupt => write!(f, "worker sent a corrupt frame"),
            LaneFault::Deadline => write!(f, "worker missed the read deadline"),
        }
    }
}

/// A lane retired after exhausting its retry budget. Typed and reported —
/// the campaign result carries every degradation, never a silent drop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneDegradation {
    /// Which lane was retired.
    pub lane: u64,
    /// The epoch whose repeated failures exhausted the retry budget.
    pub epoch: u64,
    /// Total failed attempts (initial + rebuilds) before retirement.
    pub attempts: u64,
    /// Unspent lane budget folded into the live siblings at the barrier.
    pub reclaimed_cycles: u64,
    /// Short name of the last fault observed (`panic`, `hang`,
    /// `barrier_timeout`).
    pub last_fault: String,
}

/// Supervision accounting surfaced through
/// [`ResilienceCounters`](crate::ResilienceCounters). These describe the
/// *recovery process*, not the campaign's fuzzing outcome: a recovered run
/// matches its unfaulted twin everywhere except this block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionCounters {
    /// Lane-epoch attempts that ended in a contained panic.
    pub lane_panics: u64,
    /// Lane-epoch attempts caught by the hang deadline.
    pub lane_hangs: u64,
    /// Lane-epoch attempts whose barrier handoff was lost.
    pub barrier_timeouts: u64,
    /// Executors rebuilt from the factory during recovery.
    pub lane_rebuilds: u64,
    /// Lane-epochs successfully re-executed from their barrier snapshot.
    pub recovered: u64,
    /// Worker processes that died to a signal (process isolation only).
    pub worker_signals: u64,
    /// Worker processes that exited nonzero mid-epoch.
    pub worker_exits: u64,
    /// Worker pipes that closed without a status.
    pub pipe_eofs: u64,
    /// Corrupt frames received from workers.
    pub frame_corruptions: u64,
    /// Workers killed for missing the wall-clock read deadline.
    pub deadline_kills: u64,
    /// Per-lane worker respawn counts (`lane_respawns[i]` = times lane
    /// `i`'s process was replaced). Empty for in-process campaigns.
    pub lane_respawns: Vec<u64>,
    /// Lanes retired after exhausting their retry budget.
    pub degradations: Vec<LaneDegradation>,
}

impl SupervisionCounters {
    /// Tally one observed fault.
    pub(crate) fn record(&mut self, fault: &LaneFault) {
        match fault {
            LaneFault::Panic(_) => self.lane_panics += 1,
            LaneFault::Hang => self.lane_hangs += 1,
            LaneFault::BarrierTimeout => self.barrier_timeouts += 1,
            LaneFault::Signal(_) => self.worker_signals += 1,
            LaneFault::Exit(_) => self.worker_exits += 1,
            LaneFault::PipeEof => self.pipe_eofs += 1,
            LaneFault::FrameCorrupt => self.frame_corruptions += 1,
            LaneFault::Deadline => self.deadline_kills += 1,
        }
    }

    /// Tally one worker-process respawn for `lane`.
    pub(crate) fn record_respawn(&mut self, lane: usize) {
        if self.lane_respawns.len() <= lane {
            self.lane_respawns.resize(lane + 1, 0);
        }
        self.lane_respawns[lane] += 1;
    }

    /// Total faults contained (each was an abort before supervision).
    pub fn faults_contained(&self) -> u64 {
        self.lane_panics
            + self.lane_hangs
            + self.barrier_timeouts
            + self.worker_signals
            + self.worker_exits
            + self.pipe_eofs
            + self.frame_corruptions
            + self.deadline_kills
    }

    /// Did the supervisor do anything at all?
    pub fn is_quiet(&self) -> bool {
        self.faults_contained() == 0
            && self.lane_rebuilds == 0
            && self.lane_respawns.iter().all(|&n| n == 0)
            && self.degradations.is_empty()
    }

    /// Fold another campaign's (or lane set's) counters into this one.
    pub fn absorb(&mut self, other: &SupervisionCounters) {
        self.lane_panics += other.lane_panics;
        self.lane_hangs += other.lane_hangs;
        self.barrier_timeouts += other.barrier_timeouts;
        self.lane_rebuilds += other.lane_rebuilds;
        self.recovered += other.recovered;
        self.worker_signals += other.worker_signals;
        self.worker_exits += other.worker_exits;
        self.pipe_eofs += other.pipe_eofs;
        self.frame_corruptions += other.frame_corruptions;
        self.deadline_kills += other.deadline_kills;
        if self.lane_respawns.len() < other.lane_respawns.len() {
            self.lane_respawns.resize(other.lane_respawns.len(), 0);
        }
        for (mine, theirs) in self.lane_respawns.iter_mut().zip(&other.lane_respawns) {
            *mine += theirs;
        }
        self.degradations.extend(other.degradations.iter().cloned());
    }
}

/// The supervisor the sharded epoch loop threads through a campaign:
/// configuration, accumulated counters, and which lanes have been retired.
pub(crate) struct Supervisor {
    pub(crate) cfg: SupervisorConfig,
    pub(crate) counters: SupervisionCounters,
    /// `dead[i]` — lane `i` was degraded out and no longer runs epochs.
    pub(crate) dead: Vec<bool>,
}

impl Supervisor {
    pub(crate) fn new(cfg: SupervisorConfig, lanes: usize) -> Self {
        Supervisor {
            cfg,
            counters: SupervisionCounters::default(),
            dead: vec![false; lanes],
        }
    }

    /// Lanes still running epochs.
    pub(crate) fn live(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }
}

thread_local! {
    /// Set while this thread is inside a supervised lane body, so the
    /// panic hook stays quiet about panics the supervisor will contain.
    static IN_SUPERVISED_LANE: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// backtrace noise for panics raised inside supervised lane bodies — they
/// are caught, typed, and reported through [`SupervisionCounters`], so the
/// stderr dump would only be noise. Panics anywhere else chain to the
/// previously installed hook unchanged.
pub(crate) fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED_LANE.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run a lane body with panic containment: a panic becomes
/// `Err(payload-as-string)` instead of unwinding into the worker pool.
pub(crate) fn contain<T>(body: impl FnOnce() -> T) -> Result<T, String> {
    IN_SUPERVISED_LANE.with(|flag| flag.set(true));
    let out = catch_unwind(AssertUnwindSafe(body));
    IN_SUPERVISED_LANE.with(|flag| flag.set(false));
    out.map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contain_returns_value_or_payload() {
        install_quiet_panic_hook();
        assert_eq!(contain(|| 41 + 1), Ok(42));
        let err = contain(|| -> u32 { panic!("{INJECTED_PANIC_MARKER} boom") }).unwrap_err();
        assert!(err.contains("boom"));
        // The thread-local flag is cleared again: a later panic would be
        // loud (we can only assert the flag here, not stderr).
        assert!(!IN_SUPERVISED_LANE.with(Cell::get));
    }

    #[test]
    fn counters_record_and_absorb() {
        let mut a = SupervisionCounters::default();
        assert!(a.is_quiet());
        a.record(&LaneFault::Panic("x".into()));
        a.record(&LaneFault::Hang);
        a.record(&LaneFault::BarrierTimeout);
        a.lane_rebuilds = 2;
        a.recovered = 1;
        let mut b = SupervisionCounters::default();
        b.degradations.push(LaneDegradation {
            lane: 3,
            epoch: 1,
            attempts: 4,
            reclaimed_cycles: 1000,
            last_fault: "hang".into(),
        });
        b.absorb(&a);
        assert_eq!(b.faults_contained(), 3);
        assert_eq!(b.lane_rebuilds, 2);
        assert_eq!(b.recovered, 1);
        assert_eq!(b.degradations.len(), 1);
        assert!(!b.is_quiet());
    }

    #[test]
    fn fault_names_are_stable() {
        assert_eq!(LaneFault::Panic(String::new()).name(), "panic");
        assert_eq!(LaneFault::Hang.name(), "hang");
        assert_eq!(LaneFault::BarrierTimeout.name(), "barrier_timeout");
        assert_eq!(LaneFault::Signal(9).name(), "signal");
        assert_eq!(LaneFault::Exit(137).name(), "exit");
        assert_eq!(LaneFault::PipeEof.name(), "pipe_eof");
        assert_eq!(LaneFault::FrameCorrupt.name(), "frame_corrupt");
        assert_eq!(LaneFault::Deadline.name(), "deadline");
        assert_eq!(format!("{}", LaneFault::Hang), "hang past the heartbeat deadline");
        assert_eq!(format!("{}", LaneFault::Signal(9)), "worker killed by signal 9");
    }

    #[test]
    fn process_faults_count_and_respawns_tally() {
        let mut c = SupervisionCounters::default();
        for f in [
            LaneFault::Signal(9),
            LaneFault::Exit(137),
            LaneFault::PipeEof,
            LaneFault::FrameCorrupt,
            LaneFault::Deadline,
        ] {
            c.record(&f);
        }
        assert_eq!(c.faults_contained(), 5);
        assert!(!c.is_quiet());
        c.record_respawn(2);
        c.record_respawn(2);
        c.record_respawn(0);
        assert_eq!(c.lane_respawns, vec![1, 0, 2]);
        let mut sum = SupervisionCounters::default();
        sum.absorb(&c);
        sum.absorb(&c);
        assert_eq!(sum.lane_respawns, vec![2, 0, 4]);
        assert_eq!(sum.deadline_kills, 2);
        let quiet = SupervisionCounters {
            lane_respawns: vec![0, 0],
            ..SupervisionCounters::default()
        };
        assert!(quiet.is_quiet(), "zero respawn entries stay quiet");
    }

    #[test]
    fn supervisor_tracks_live_lanes() {
        let mut s = Supervisor::new(SupervisorConfig::default(), 4);
        assert_eq!(s.live(), 4);
        s.dead[1] = true;
        s.dead[3] = true;
        assert_eq!(s.live(), 2);
    }
}
