//! Campaign results: throughput, coverage, and deduplicated crash records.

use serde::{Deserialize, Serialize};
use vmos::Crash;

use crate::storage::StorageCounters;
use crate::supervise::SupervisionCounters;
use crate::CYCLES_PER_SECOND;

/// First discovery of a deduplicated crash site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The crash (kind + site).
    pub crash: Crash,
    /// Campaign clock (cycles) at first discovery.
    pub found_at_cycles: u64,
    /// The triggering input.
    pub input: Vec<u8>,
    /// How many times this site was hit during the campaign.
    pub hits: u64,
    /// Set when crash revalidation replayed this input in a fresh process
    /// and the crash did **not** reproduce at the same site — the record is
    /// kept (it may be a real stateful bug) but flagged as untrustworthy.
    pub flaky: bool,
}

impl CrashRecord {
    /// Discovery time in simulated seconds (the paper's Table 7 unit).
    pub fn found_at_seconds(&self) -> u64 {
        self.found_at_cycles / CYCLES_PER_SECOND
    }
}

/// Resilience counters a campaign aggregates: the executor's own lifetime
/// report, embedded verbatim (one struct, one source of truth), plus the
/// campaign-level recovery counters layered on top of it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// The executor's lifetime [`ResilienceReport`](closurex::ResilienceReport)
    /// — respawns, divergences, integrity checks, quarantine accounting,
    /// executor-observed harness faults, and the typed
    /// [`DegradationLevel`](closurex::DegradationLevel).
    pub executor: closurex::ResilienceReport,
    /// Harness faults the *campaign* observed as `ExecStatus::Fault` (can
    /// exceed `executor.harness_faults` when retries fault repeatedly on a
    /// revalidator).
    pub harness_faults: u64,
    /// Inputs re-executed after a harness fault (bounded by
    /// `CampaignConfig::max_retries` each).
    pub retries: u64,
    /// Inputs abandoned because every retry faulted too.
    pub dropped_inputs: u64,
    /// Times the consecutive-hang watchdog tripped and abandoned a
    /// mutation batch.
    pub watchdog_trips: u64,
    /// Lane-supervision accounting (sharded campaigns): contained panics
    /// and hangs, executor rebuilds, recoveries, and lane degradations.
    /// Describes the *recovery process*, not the fuzzing outcome — a
    /// recovered campaign matches its unfaulted twin everywhere except
    /// this block (see [`CampaignResult::sans_supervision`]).
    pub supervision: SupervisionCounters,
    /// Storage-plane accounting: transient-error retries, crash boundaries
    /// hit, scrub-and-repair work, and typed degradations to in-memory
    /// checkpointing. Like `supervision`, this describes recovery, not the
    /// fuzzing outcome (see [`CampaignResult::sans_storage`]).
    pub storage: StorageCounters,
}

impl ResilienceCounters {
    /// The executor's final degradation level, as a typed enum.
    pub fn degradation(&self) -> closurex::DegradationLevel {
        self.executor.degradation
    }

    /// Sum two lanes' counters (sharded campaigns aggregate per-lane
    /// reports). The merged degradation is the worst across lanes:
    /// `ForkPerExec` if any lane degraded.
    pub fn absorb(&mut self, other: &ResilienceCounters) {
        self.executor.respawns += other.executor.respawns;
        self.executor.divergences += other.executor.divergences;
        self.executor.integrity_checks += other.executor.integrity_checks;
        self.executor.quarantined += other.executor.quarantined;
        self.executor.quarantine_dropped += other.executor.quarantine_dropped;
        self.executor.harness_faults += other.executor.harness_faults;
        if other.executor.degradation == closurex::DegradationLevel::ForkPerExec {
            self.executor.degradation = closurex::DegradationLevel::ForkPerExec;
        }
        self.harness_faults += other.harness_faults;
        self.retries += other.retries;
        self.dropped_inputs += other.dropped_inputs;
        self.watchdog_trips += other.watchdog_trips;
        self.supervision.absorb(&other.supervision);
        self.storage.absorb(&other.storage);
    }
}

/// Everything a finished campaign reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Executor name ("closurex", "afl-forkserver", …).
    pub executor: String,
    /// Test cases executed.
    pub execs: u64,
    /// Final campaign clock in cycles.
    pub clock_cycles: u64,
    /// Distinct bucketed edges discovered.
    pub edges_found: usize,
    /// FNV-1a digest of the final accumulated (virgin) coverage map — a
    /// compact fingerprint two campaigns can be compared with byte-for-byte
    /// (the checkpoint/resume determinism check relies on it).
    pub coverage_hash: u64,
    /// Deduplicated crashes, in discovery order.
    pub crashes: Vec<CrashRecord>,
    /// Final queue size.
    pub queue_len: usize,
    /// Hangs observed.
    pub hangs: u64,
    /// Cycles spent in process management / restoration.
    pub mgmt_cycles: u64,
    /// Cycles spent executing target code.
    pub exec_cycles: u64,
    /// The final queue inputs (fed to the correctness evaluation).
    pub queue_inputs: Vec<Vec<u8>>,
    /// Recovery/fault accounting for this trial.
    pub resilience: ResilienceCounters,
    /// Resume accounting, present only on results produced by
    /// [`crate::Campaign::resume`] (or a service-managed resume): which
    /// snapshot the campaign restarted from, how much journal tail was
    /// replayed, what corruption was repaired, and whether the decoded
    /// image was warm. `None` on a campaign that ran start-to-finish.
    /// Describes the *resume process*, not the fuzzing outcome — the
    /// bit-identity comparison key is [`CampaignResult::sans_resume`].
    pub resume: Option<crate::checkpoint::ResumeReport>,
}

impl CampaignResult {
    /// Executions per simulated second.
    pub fn execs_per_second(&self) -> f64 {
        if self.clock_cycles == 0 {
            return 0.0;
        }
        self.execs as f64 * CYCLES_PER_SECOND as f64 / self.clock_cycles as f64
    }

    /// Fraction of the budget spent on management overhead.
    pub fn mgmt_fraction(&self) -> f64 {
        let total = self.mgmt_cycles + self.exec_cycles;
        if total == 0 {
            return 0.0;
        }
        self.mgmt_cycles as f64 / total as f64
    }

    /// This result with the supervision block zeroed — the comparison key
    /// for recovery equivalence. A supervised campaign that recovered from
    /// injected faults necessarily *reports* those recoveries, so "bit-
    /// identical to the unfaulted run" means: identical everywhere except
    /// `resilience.supervision`, which is exactly what this projection
    /// compares.
    pub fn sans_supervision(&self) -> CampaignResult {
        let mut r = self.clone();
        r.resilience.supervision = SupervisionCounters::default();
        r
    }

    /// This result with the storage block zeroed — the comparison key for
    /// storage-fault equivalence, mirroring [`Self::sans_supervision`]: a
    /// campaign that retried, repaired, or degraded necessarily *reports*
    /// that work, and is otherwise identical to an unfaulted twin.
    pub fn sans_storage(&self) -> CampaignResult {
        let mut r = self.clone();
        r.resilience.storage = StorageCounters::default();
        r
    }

    /// This result with the resume report stripped — the comparison key
    /// for kill/resume bit-identity, mirroring [`Self::sans_supervision`]:
    /// a resumed campaign necessarily *reports* how it resumed, and is
    /// otherwise identical to a twin that never died.
    pub fn sans_resume(&self) -> CampaignResult {
        let mut r = self.clone();
        r.resume = None;
        r
    }

    /// Crashes that are resource-exhaustion false positives.
    pub fn false_crashes(&self) -> usize {
        self.crashes
            .iter()
            .filter(|c| c.crash.kind.is_resource_exhaustion())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmos::CrashKind;

    #[test]
    fn rates_and_fractions() {
        let r = CampaignResult {
            executor: "x".into(),
            execs: 1000,
            clock_cycles: CYCLES_PER_SECOND * 10,
            edges_found: 5,
            coverage_hash: 0,
            crashes: vec![],
            queue_len: 3,
            hangs: 0,
            mgmt_cycles: 25,
            exec_cycles: 75,
            queue_inputs: vec![],
            resilience: ResilienceCounters::default(),
            resume: None,
        };
        assert!((r.execs_per_second() - 100.0).abs() < 1e-9);
        assert!((r.mgmt_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn false_crash_counting() {
        let mk = |kind| CrashRecord {
            crash: Crash {
                kind,
                function: "f".into(),
                block: 0,
                detail: String::new(),
            },
            found_at_cycles: CYCLES_PER_SECOND * 3,
            input: vec![],
            hits: 1,
            flaky: false,
        };
        let r = CampaignResult {
            executor: "x".into(),
            execs: 0,
            clock_cycles: 0,
            edges_found: 0,
            coverage_hash: 0,
            crashes: vec![mk(CrashKind::NullPtrDeref), mk(CrashKind::FdExhaustion)],
            queue_len: 0,
            hangs: 0,
            mgmt_cycles: 0,
            exec_cycles: 0,
            queue_inputs: vec![],
            resilience: ResilienceCounters::default(),
            resume: None,
        };
        assert_eq!(r.false_crashes(), 1);
        assert_eq!(r.crashes[0].found_at_seconds(), 3);
    }
}
