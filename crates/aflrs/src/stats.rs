//! Campaign results: throughput, coverage, and deduplicated crash records.

use serde::{Deserialize, Serialize};
use vmos::Crash;

use crate::CYCLES_PER_SECOND;

/// First discovery of a deduplicated crash site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashRecord {
    /// The crash (kind + site).
    pub crash: Crash,
    /// Campaign clock (cycles) at first discovery.
    pub found_at_cycles: u64,
    /// The triggering input.
    pub input: Vec<u8>,
    /// How many times this site was hit during the campaign.
    pub hits: u64,
}

impl CrashRecord {
    /// Discovery time in simulated seconds (the paper's Table 7 unit).
    pub fn found_at_seconds(&self) -> u64 {
        self.found_at_cycles / CYCLES_PER_SECOND
    }
}

/// Everything a finished campaign reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Executor name ("closurex", "afl-forkserver", …).
    pub executor: String,
    /// Test cases executed.
    pub execs: u64,
    /// Final campaign clock in cycles.
    pub clock_cycles: u64,
    /// Distinct bucketed edges discovered.
    pub edges_found: usize,
    /// Deduplicated crashes, in discovery order.
    pub crashes: Vec<CrashRecord>,
    /// Final queue size.
    pub queue_len: usize,
    /// Hangs observed.
    pub hangs: u64,
    /// Cycles spent in process management / restoration.
    pub mgmt_cycles: u64,
    /// Cycles spent executing target code.
    pub exec_cycles: u64,
    /// The final queue inputs (fed to the correctness evaluation).
    pub queue_inputs: Vec<Vec<u8>>,
}

impl CampaignResult {
    /// Executions per simulated second.
    pub fn execs_per_second(&self) -> f64 {
        if self.clock_cycles == 0 {
            return 0.0;
        }
        self.execs as f64 * CYCLES_PER_SECOND as f64 / self.clock_cycles as f64
    }

    /// Fraction of the budget spent on management overhead.
    pub fn mgmt_fraction(&self) -> f64 {
        let total = self.mgmt_cycles + self.exec_cycles;
        if total == 0 {
            return 0.0;
        }
        self.mgmt_cycles as f64 / total as f64
    }

    /// Crashes that are resource-exhaustion false positives.
    pub fn false_crashes(&self) -> usize {
        self.crashes
            .iter()
            .filter(|c| c.crash.kind.is_resource_exhaustion())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmos::CrashKind;

    #[test]
    fn rates_and_fractions() {
        let r = CampaignResult {
            executor: "x".into(),
            execs: 1000,
            clock_cycles: CYCLES_PER_SECOND * 10,
            edges_found: 5,
            crashes: vec![],
            queue_len: 3,
            hangs: 0,
            mgmt_cycles: 25,
            exec_cycles: 75,
            queue_inputs: vec![],
        };
        assert!((r.execs_per_second() - 100.0).abs() < 1e-9);
        assert!((r.mgmt_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn false_crash_counting() {
        let mk = |kind| CrashRecord {
            crash: Crash {
                kind,
                function: "f".into(),
                block: 0,
                detail: String::new(),
            },
            found_at_cycles: CYCLES_PER_SECOND * 3,
            input: vec![],
            hits: 1,
        };
        let r = CampaignResult {
            executor: "x".into(),
            execs: 0,
            clock_cycles: 0,
            edges_found: 0,
            crashes: vec![mk(CrashKind::NullPtrDeref), mk(CrashKind::FdExhaustion)],
            queue_len: 0,
            hangs: 0,
            mgmt_cycles: 0,
            exec_cycles: 0,
            queue_inputs: vec![],
        };
        assert_eq!(r.false_crashes(), 1);
        assert_eq!(r.crashes[0].found_at_seconds(), 3);
    }
}
