//! # rpc — the network service plane in front of [`Service`]
//!
//! The campaign service of §17 is an in-process object; a fleet wants it
//! behind a wire. This module puts a framed request/response protocol in
//! front of [`Service`] over the hardened §15 CXFR frame codec, and gives
//! the transport the same treatment the execution, process, and storage
//! planes got: deterministic fault injection
//! ([`vmos::NetFaultPlan`]), a typed error ladder ([`RpcError`] →
//! [`RemoteError`]), and recovery that is *idempotent by construction*.
//!
//! ## Transport
//!
//! The wire is an in-memory duplex byte pipe ([`MemNet`]) — a loopback
//! TCP stand-in with real streaming semantics (partial reads, blocking,
//! half-close, EOF) but none of the kernel's nondeterminism. Every frame
//! an endpoint *sends* passes through its [`vmos::NetFaultPlan`], keyed
//! on `(conn, direction, frame-seq)`:
//!
//! * `Drop` — the frame vanishes; the peer's read times out.
//! * `Delay` — delivered late; the latency is charged in simulated cycles.
//! * `Duplicate` — delivered twice; request ids dedupe it.
//! * `Corrupt` — a bit flips in the checksummed region; the receiver
//!   detects it deterministically and drops the connection.
//! * `Disconnect` — the connection closes before the frame (clean EOF).
//! * `PartialFrame` — a strict prefix is written, then close (torn frame).
//!
//! ## Idempotency and session resume
//!
//! Every connection starts with a `Hello{session}` handshake; every
//! request carries the session id implicitly (per-connection) and a
//! client-monotonic request id. The server keeps a bounded, *durable*
//! reply journal (`rpc-replies.bin` in the service directory): a request
//! executes at most once per (session, request-id) — retries after a
//! lost reply are answered from the journal, not re-executed. `Submit`
//! is additionally deduplicated against the durably-admitted spec
//! (`spec.bin` lands before the ack), so a duplicated or retried Submit
//! can never double-admit. The journal survives a server kill: a
//! restarted server resumes the session where it left off.
//!
//! ## Recovery ladder
//!
//! ```text
//! frame fault ──▶ typed RpcError ──▶ reconnect + resend (same req id)
//!                      │                    │ backoff: seeded exponential,
//!                      │                    ▼ charged in simulated cycles
//!                      │            reply journal replay (exactly-once)
//!                      ▼
//!           attempts exhausted ──▶ Degraded(Local) in-process fallback
//! ```
//!
//! The equivalence gate (`tests/rpc_equivalence.rs`) holds the remote
//! path to bit-identical results vs. the in-process service under the
//! full fault grid; `rpc_eval` bounds the clean-path overhead.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use vmos::{read_frame, write_frame, FrameError, NetFaultKind, NetFaultPlan, Reader, WireError, Writer};

use crate::checkpoint::ResumeReport;
use crate::service::{
    AdmissionError, CampaignSpec, CampaignState, HealthReport, Service, ServiceError,
};
use crate::stats::{CampaignResult, ResilienceCounters};
use crate::storage::StorageCounters;
use crate::supervise::{LaneDegradation, SupervisionCounters};

/// Client→server frame kinds.
const RK_HELLO: u8 = 1;
const RK_REQ: u8 = 2;
/// Server→client frame kinds.
const RK_HELLO_OK: u8 = 16;
const RK_REPLY: u8 = 17;

/// Largest payload either endpoint will accept — far above any real
/// message, far below [`vmos::MAX_FRAME_LEN`], so a corrupted length
/// cannot commit us to a giant allocation.
pub const MAX_RPC_FRAME: usize = 8 << 20;

/// Raw (unframed) connection preamble: the client-assigned connection id,
/// `u64` LE. This is transport metadata — the fault plan applies to
/// frames, not to the preamble, just as a TCP SYN is below AFL's pipe.
const CONN_PREAMBLE_LEN: usize = 8;

/// Reply-journal frame kinds (`rpc-replies.bin`).
const JK_SESSION: u8 = 1;
const JK_REPLY: u8 = 2;

/// The on-disk reply journal, kept in the service root directory.
pub const RPC_JOURNAL_FILE: &str = "rpc-replies.bin";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Transport-level failure, one rung per observable wire behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No server is listening (connection refused).
    Refused,
    /// The connection closed. `clean` distinguishes an EOF on a frame
    /// boundary (peer went away politely) from a torn frame (peer died
    /// mid-write) — the §15 `Eof`/`Truncated` split, surfaced.
    Disconnected {
        /// `true` for a frame-boundary EOF, `false` for a torn frame.
        clean: bool,
    },
    /// No reply within the read timeout (a dropped frame looks like this).
    Timeout,
    /// A frame failed validation (bad magic, checksum, oversized length).
    /// The receiver drops the connection; state is untouched.
    CorruptFrame,
    /// The peer spoke the frame codec but not the protocol.
    Protocol(&'static str),
    /// Transport I/O error other than the typed cases above.
    Io(std::io::ErrorKind),
    /// Every attempt failed; the operation was not (observably) performed.
    Unavailable {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Refused => write!(f, "connection refused: no server listening"),
            RpcError::Disconnected { clean: true } => write!(f, "peer disconnected (clean EOF)"),
            RpcError::Disconnected { clean: false } => {
                write!(f, "peer disconnected mid-frame (torn)")
            }
            RpcError::Timeout => write!(f, "timed out waiting for a reply"),
            RpcError::CorruptFrame => write!(f, "corrupt frame (connection dropped)"),
            RpcError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            RpcError::Io(kind) => write!(f, "transport i/o error: {kind:?}"),
            RpcError::Unavailable { attempts } => {
                write!(f, "service unavailable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// [`AdmissionError`] rebuilt on the client side of the wire. The
/// server-side enum carries `&'static str` and [`std::io::Error`]
/// payloads that cannot cross a byte stream, so the remote mirror
/// carries owned strings with identical meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteAdmissionError {
    /// The service is at its campaign capacity.
    Full {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// A tenant with this name already exists *with a different spec*
    /// (an identical spec is deduplicated into success instead).
    Duplicate(String),
    /// The spec is structurally unusable.
    InvalidSpec(String),
    /// The server's spec resolver could not build a factory.
    Resolver(String),
    /// The server could not persist `spec.bin`; nothing was admitted.
    Io(String),
}

impl std::fmt::Display for RemoteAdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteAdmissionError::Full { capacity } => {
                write!(f, "service is at capacity ({capacity} campaigns)")
            }
            RemoteAdmissionError::Duplicate(name) => {
                write!(f, "a campaign named {name:?} already exists with a different spec")
            }
            RemoteAdmissionError::InvalidSpec(msg) => write!(f, "invalid campaign spec: {msg}"),
            RemoteAdmissionError::Resolver(msg) => write!(f, "spec resolver failed: {msg}"),
            RemoteAdmissionError::Io(msg) => write!(f, "could not persist campaign spec: {msg}"),
        }
    }
}

impl std::error::Error for RemoteAdmissionError {}

/// What a remote operation can fail with: a transport rung, or the same
/// service-level errors the in-process API returns.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport failure (after retries and, if configured, fallback).
    Rpc(RpcError),
    /// Admission control refused the submit.
    Admission(RemoteAdmissionError),
    /// The campaign ended in a service-level error (killed/failed/…).
    Service(ServiceError),
    /// No tenant with this name exists on the server.
    UnknownTenant(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Rpc(e) => write!(f, "rpc: {e}"),
            RemoteError::Admission(e) => write!(f, "admission: {e}"),
            RemoteError::Service(e) => write!(f, "service: {e}"),
            RemoteError::UnknownTenant(name) => write!(f, "no campaign named {name:?}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<RpcError> for RemoteError {
    fn from(e: RpcError) -> Self {
        RemoteError::Rpc(e)
    }
}

/// How the last operation was served (the degradation ladder's state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Over the wire.
    Remote,
    /// Via a degraded path.
    Degraded(Degraded),
}

/// Degraded serving modes. One rung today; the enum keeps the ladder
/// extensible and the type distinct from a bare bool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degraded {
    /// The in-process fallback [`Service`] handled the call directly.
    Local,
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Observability for one endpoint (client or server). These live *beside*
/// the campaign results, never inside them — [`CampaignResult`] stays
/// bit-identical between the remote and in-process paths by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct RpcCounters {
    /// Requests issued (client) — counted once per logical call, not per retry.
    pub requests: u64,
    /// Replies accepted (client) / sent (server).
    pub replies: u64,
    /// Re-sends of a request after a transport failure.
    pub retries: u64,
    /// Connections established (client) / accepted (server).
    pub connects: u64,
    /// Reply-read timeouts observed.
    pub timeouts: u64,
    /// Simulated cycles charged to reconnect backoff.
    pub backoff_cycles: u64,
    /// Frames this endpoint's fault plan made vanish.
    pub frames_dropped: u64,
    /// Frames delivered late, and the simulated latency charged.
    pub frames_delayed: u64,
    /// Simulated cycles of injected delivery latency.
    pub delay_cycles: u64,
    /// Frames delivered twice.
    pub frames_duplicated: u64,
    /// Frames with an injected bit flip.
    pub frames_corrupted: u64,
    /// Connections severed before a frame.
    pub disconnects_injected: u64,
    /// Frames cut short (strict prefix, then close).
    pub partial_frames: u64,
    /// Clean frame-boundary EOFs observed on receive.
    pub clean_disconnects: u64,
    /// Torn frames observed on receive.
    pub torn_disconnects: u64,
    /// Frames that failed validation on receive.
    pub corrupt_frames_seen: u64,
    /// Frames that were valid CXFR but violated the RPC protocol.
    pub protocol_errors: u64,
    /// Requests answered from the reply journal instead of re-executing.
    pub journal_replays: u64,
    /// Journal persistence failures (degraded to memory-only; non-fatal).
    pub journal_warnings: u64,
    /// Fresh sessions opened (server).
    pub sessions_opened: u64,
    /// Sessions resumed across a reconnect or server restart.
    pub sessions_resumed: u64,
    /// Duplicated `Submit`s deduplicated against the durable spec.
    pub dup_submits_deduped: u64,
    /// Calls served by the `Degraded(Local)` fallback.
    pub degraded_calls: u64,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// In-memory transport: byte pipes and a loopback "network"
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct PipeInner {
    st: Mutex<PipeState>,
    cv: Condvar,
}

fn close_pipe(inner: &Arc<PipeInner>) {
    let mut st = inner.st.lock().expect("pipe poisoned");
    st.closed = true;
    inner.cv.notify_all();
}

/// Read half of a byte pipe. Blocking, with an optional per-read timeout
/// (the TCP `SO_RCVTIMEO` analog). EOF (`Ok(0)`) once the pipe is closed
/// and drained.
struct PipeReader {
    inner: Arc<PipeInner>,
    timeout: Option<Duration>,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.inner.st.lock().expect("pipe poisoned");
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for b in buf.iter_mut().take(n) {
                    *b = st.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            match self.timeout {
                None => st = self.inner.cv.wait(st).expect("pipe poisoned"),
                Some(t) => {
                    let (guard, res) =
                        self.inner.cv.wait_timeout(st, t).expect("pipe poisoned");
                    st = guard;
                    if res.timed_out() && st.buf.is_empty() && !st.closed {
                        return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                    }
                }
            }
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        close_pipe(&self.inner);
    }
}

/// Write half of a byte pipe. Closing (or dropping) wakes the reader.
struct PipeWriter {
    inner: Arc<PipeInner>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut st = self.inner.st.lock().expect("pipe poisoned");
        if st.closed {
            return Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        }
        st.buf.extend(buf.iter().copied());
        self.inner.cv.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        close_pipe(&self.inner);
    }
}

fn pipe() -> (PipeWriter, PipeReader) {
    let inner = Arc::new(PipeInner::default());
    (
        PipeWriter {
            inner: Arc::clone(&inner),
        },
        PipeReader {
            inner,
            timeout: None,
        },
    )
}

/// One end of an established duplex connection.
struct Conn {
    reader: PipeReader,
    writer: PipeWriter,
}

impl Conn {
    fn set_read_timeout(&mut self, t: Option<Duration>) {
        self.reader.timeout = t;
    }

    /// Sever both directions immediately (the injected-fault hammer).
    fn close(&self) {
        close_pipe(&self.reader.inner);
        close_pipe(&self.writer.inner);
    }

    fn closer(&self) -> ConnCloser {
        ConnCloser {
            a: Arc::clone(&self.reader.inner),
            b: Arc::clone(&self.writer.inner),
        }
    }
}

/// A detached handle that can sever a connection from another thread
/// (the server uses these to unblock handlers at shutdown).
#[derive(Clone)]
struct ConnCloser {
    a: Arc<PipeInner>,
    b: Arc<PipeInner>,
}

impl ConnCloser {
    fn close(&self) {
        close_pipe(&self.a);
        close_pipe(&self.b);
    }
}

#[derive(Default)]
struct NetState {
    queue: VecDeque<Conn>,
    listening: bool,
    generation: u64,
}

#[derive(Default)]
struct NetInner {
    st: Mutex<NetState>,
    cv: Condvar,
}

/// The loopback network: at most one listener; any number of clients.
/// Cloning shares the network (it is the "address" both sides dial).
#[derive(Clone, Default)]
pub struct MemNet {
    inner: Arc<NetInner>,
}

impl MemNet {
    /// A fresh, empty network with nobody listening.
    pub fn new() -> MemNet {
        MemNet::default()
    }

    /// Register as the listener, displacing (and closing the backlog of)
    /// any previous one — the restarted-server case.
    fn listen(&self) -> MemListener {
        let mut st = self.inner.st.lock().expect("net poisoned");
        for conn in st.queue.drain(..) {
            conn.close();
        }
        st.listening = true;
        st.generation += 1;
        let generation = st.generation;
        self.inner.cv.notify_all();
        MemListener {
            net: self.clone(),
            generation,
        }
    }

    /// Stop the listener of `generation`, if it is still the current one
    /// (a newer listener is left alone).
    fn unlisten(&self, generation: u64) {
        let mut st = self.inner.st.lock().expect("net poisoned");
        if st.generation != generation || !st.listening {
            return;
        }
        st.listening = false;
        for conn in st.queue.drain(..) {
            conn.close();
        }
        self.inner.cv.notify_all();
    }

    /// Dial the listener.
    ///
    /// # Errors
    /// [`RpcError::Refused`] when nobody is listening.
    fn connect(&self) -> Result<Conn, RpcError> {
        let mut st = self.inner.st.lock().expect("net poisoned");
        if !st.listening {
            return Err(RpcError::Refused);
        }
        let (c2s_w, c2s_r) = pipe();
        let (s2c_w, s2c_r) = pipe();
        st.queue.push_back(Conn {
            reader: c2s_r,
            writer: s2c_w,
        });
        self.inner.cv.notify_all();
        Ok(Conn {
            reader: s2c_r,
            writer: c2s_w,
        })
    }
}

struct MemListener {
    net: MemNet,
    generation: u64,
}

impl MemListener {
    /// Block for the next connection; `None` once the listener is closed
    /// or displaced by a newer one.
    fn accept(&self) -> Option<Conn> {
        let inner = &self.net.inner;
        let mut st = inner.st.lock().expect("net poisoned");
        loop {
            if st.generation != self.generation || !st.listening {
                return None;
            }
            if let Some(conn) = st.queue.pop_front() {
                return Some(conn);
            }
            st = inner.cv.wait(st).expect("net poisoned");
        }
    }
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.net.unlisten(self.generation);
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting framed endpoint
// ---------------------------------------------------------------------------

/// A connection end that speaks CXFR frames and runs every *send* through
/// a [`NetFaultPlan`]. Receive never injects — each endpoint injects on
/// its own direction, so one plan shared by both sides covers the full
/// `(conn, direction, frame)` grid.
struct FramedConn {
    conn: Conn,
    conn_id: u64,
    /// The direction this endpoint sends on: 0 = client→server,
    /// 1 = server→client.
    direction: u8,
    next_seq: u64,
    plan: Arc<Mutex<NetFaultPlan>>,
    counters: Arc<Mutex<RpcCounters>>,
}

/// Render one frame to bytes (for corruption / partial-write injection).
/// Infallible: writing to a `Vec` cannot fail and `kind`/`payload` were
/// already validated by the caller.
fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(vmos::FRAME_HEADER_LEN + payload.len());
    write_frame(&mut raw, kind, payload).expect("Vec write is infallible");
    raw
}

impl FramedConn {
    fn new(
        conn: Conn,
        conn_id: u64,
        direction: u8,
        plan: Arc<Mutex<NetFaultPlan>>,
        counters: Arc<Mutex<RpcCounters>>,
    ) -> FramedConn {
        FramedConn {
            conn,
            conn_id,
            direction,
            next_seq: 0,
            plan,
            counters,
        }
    }

    fn write_plain(&mut self, kind: u8, payload: &[u8]) -> Result<(), RpcError> {
        write_frame(&mut self.conn.writer, kind, payload).map_err(io_to_rpc)
    }

    fn write_raw(&mut self, raw: &[u8]) -> Result<(), RpcError> {
        self.conn
            .writer
            .write_all(raw)
            .map_err(|e| io_to_rpc(FrameError::Io(e.kind())))
    }

    /// Send one frame, consulting the fault plan at this frame's
    /// position. Faults that sever the connection return the matching
    /// [`RpcError::Disconnected`] so the caller's retry ladder engages.
    fn send(&mut self, kind: u8, payload: &[u8]) -> Result<(), RpcError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (fault, aux) = {
            let mut plan = self.plan.lock().expect("fault plan poisoned");
            let fault = plan.decide(self.conn_id, self.direction, seq);
            if fault.is_some() {
                plan.consume(self.conn_id, self.direction, seq);
            }
            (fault, plan.aux_bits(self.conn_id, self.direction, seq))
        };
        match fault {
            None => self.write_plain(kind, payload),
            Some(NetFaultKind::Drop) => {
                self.counters.lock().expect("counters poisoned").frames_dropped += 1;
                // The frame vanishes; the stream stays healthy.
                Ok(())
            }
            Some(NetFaultKind::Delay) => {
                let cycles = 1_000 + aux % 9_000;
                {
                    let mut c = self.counters.lock().expect("counters poisoned");
                    c.frames_delayed += 1;
                    c.delay_cycles += cycles;
                }
                // Latency is simulated (charged in cycles), then the frame
                // arrives intact and in order.
                self.write_plain(kind, payload)
            }
            Some(NetFaultKind::Duplicate) => {
                self.counters
                    .lock()
                    .expect("counters poisoned")
                    .frames_duplicated += 1;
                self.write_plain(kind, payload)?;
                self.write_plain(kind, payload)
            }
            Some(NetFaultKind::Corrupt) => {
                self.counters
                    .lock()
                    .expect("counters poisoned")
                    .frames_corrupted += 1;
                // Flip one bit in the checksummed region (checksum field or
                // payload). The length prefix is left intact so the receiver
                // detects the damage deterministically instead of
                // desynchronizing the stream — prefix damage is modeled by
                // PartialFrame / Disconnect.
                let mut raw = frame_bytes(kind, payload);
                let span_bits = (raw.len() - vmos::FRAME_PREFIX_LEN) * 8;
                let bit = (aux as usize) % span_bits;
                raw[vmos::FRAME_PREFIX_LEN + bit / 8] ^= 1 << (bit % 8);
                self.write_raw(&raw)
            }
            Some(NetFaultKind::Disconnect) => {
                self.counters
                    .lock()
                    .expect("counters poisoned")
                    .disconnects_injected += 1;
                self.conn.close();
                Err(RpcError::Disconnected { clean: true })
            }
            Some(NetFaultKind::PartialFrame) => {
                self.counters.lock().expect("counters poisoned").partial_frames += 1;
                let raw = frame_bytes(kind, payload);
                // A strict prefix that reaches past the length prefix, so
                // the receiver sees a *torn* frame, not a clean EOF.
                let min = vmos::FRAME_PREFIX_LEN + 1;
                let keep = min + (aux as usize) % (raw.len() - min);
                let res = self.write_raw(&raw[..keep]);
                self.conn.close();
                res.and(Err(RpcError::Disconnected { clean: false }))
            }
        }
    }

    /// Receive one frame, mapping §15 frame errors onto the RPC ladder.
    fn recv(&mut self) -> Result<(u8, Vec<u8>), RpcError> {
        match read_frame(&mut self.conn.reader, MAX_RPC_FRAME) {
            Ok(frame) => Ok(frame),
            Err(e) => {
                let mut c = self.counters.lock().expect("counters poisoned");
                Err(match e {
                    FrameError::Eof => {
                        c.clean_disconnects += 1;
                        RpcError::Disconnected { clean: true }
                    }
                    FrameError::Truncated => {
                        c.torn_disconnects += 1;
                        RpcError::Disconnected { clean: false }
                    }
                    FrameError::BadMagic
                    | FrameError::ChecksumMismatch
                    | FrameError::Oversized { .. } => {
                        c.corrupt_frames_seen += 1;
                        RpcError::CorruptFrame
                    }
                    FrameError::Io(std::io::ErrorKind::TimedOut) => {
                        c.timeouts += 1;
                        RpcError::Timeout
                    }
                    FrameError::Io(kind) => RpcError::Io(kind),
                })
            }
        }
    }
}

fn io_to_rpc(e: FrameError) -> RpcError {
    match e {
        FrameError::Io(std::io::ErrorKind::BrokenPipe) => {
            RpcError::Disconnected { clean: true }
        }
        FrameError::Io(kind) => RpcError::Io(kind),
        FrameError::Oversized { .. } => RpcError::Protocol("oversized payload"),
        _ => RpcError::Protocol("frame write failed"),
    }
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// One operation against the service, mirroring the in-process API
/// surface of [`Service`] + [`crate::service::CampaignHandle`].
#[derive(Debug, Clone, PartialEq)]
pub enum RpcOp {
    /// Admit a campaign (idempotent: a retry that finds the identical
    /// spec already admitted succeeds).
    Submit(CampaignSpec),
    /// [`crate::service::CampaignHandle::status`] by tenant name.
    Status(String),
    /// [`crate::service::CampaignHandle::health`] by tenant name.
    Health(String),
    /// [`crate::service::CampaignHandle::pause`] by tenant name.
    Pause(String),
    /// [`crate::service::CampaignHandle::resume`] by tenant name.
    Resume(String),
    /// [`crate::service::CampaignHandle::kill`] by tenant name.
    Kill(String),
    /// [`crate::service::CampaignHandle::await_result`] by tenant name
    /// (blocks server-side until the campaign is terminal).
    Await(String),
}

const OP_SUBMIT: u8 = 0;
const OP_STATUS: u8 = 1;
const OP_HEALTH: u8 = 2;
const OP_PAUSE: u8 = 3;
const OP_RESUME: u8 = 4;
const OP_KILL: u8 = 5;
const OP_AWAIT: u8 = 6;

pub(crate) fn encode_request(req_id: u64, op: &RpcOp) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(req_id);
    match op {
        RpcOp::Submit(spec) => {
            w.put_u8(OP_SUBMIT);
            w.put_bytes(&spec.encode());
        }
        RpcOp::Status(name) => {
            w.put_u8(OP_STATUS);
            w.put_str(name);
        }
        RpcOp::Health(name) => {
            w.put_u8(OP_HEALTH);
            w.put_str(name);
        }
        RpcOp::Pause(name) => {
            w.put_u8(OP_PAUSE);
            w.put_str(name);
        }
        RpcOp::Resume(name) => {
            w.put_u8(OP_RESUME);
            w.put_str(name);
        }
        RpcOp::Kill(name) => {
            w.put_u8(OP_KILL);
            w.put_str(name);
        }
        RpcOp::Await(name) => {
            w.put_u8(OP_AWAIT);
            w.put_str(name);
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_request(bytes: &[u8]) -> Result<(u64, RpcOp), WireError> {
    let mut r = Reader::new(bytes);
    let req_id = r.get_u64()?;
    let tag = r.get_u8()?;
    let op = match tag {
        OP_SUBMIT => RpcOp::Submit(CampaignSpec::decode(&r.get_bytes()?)?),
        OP_STATUS => RpcOp::Status(r.get_str()?),
        OP_HEALTH => RpcOp::Health(r.get_str()?),
        OP_PAUSE => RpcOp::Pause(r.get_str()?),
        OP_RESUME => RpcOp::Resume(r.get_str()?),
        OP_KILL => RpcOp::Kill(r.get_str()?),
        OP_AWAIT => RpcOp::Await(r.get_str()?),
        _ => return Err(WireError::Malformed("request op tag")),
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in request"));
    }
    Ok((req_id, op))
}

/// One reply body. The server journals these bytes; the client decodes
/// them back into the in-process API's vocabulary. (No `PartialEq`:
/// [`CampaignResult`] is compared by fingerprint, not by derive.)
#[derive(Debug)]
pub enum RpcReply {
    /// The operation succeeded with no payload.
    Unit,
    /// A [`CampaignState`].
    Status(CampaignState),
    /// A health report (absent before the first grant).
    Health(Option<HealthReport>),
    /// A finished campaign's result.
    Result(Box<CampaignResult>),
    /// The campaign ended in a service-level error.
    Service(ServiceError),
    /// Admission control refused the submit.
    Admission(RemoteAdmissionError),
    /// No tenant with the requested name.
    UnknownTenant,
}

const RT_UNIT: u8 = 0;
const RT_STATUS: u8 = 1;
const RT_HEALTH: u8 = 2;
const RT_RESULT: u8 = 3;
const RT_SERVICE: u8 = 4;
const RT_ADMISSION: u8 = 5;
const RT_UNKNOWN: u8 = 6;

fn encode_state(w: &mut Writer, s: &CampaignState) {
    match s {
        CampaignState::Queued => w.put_u8(0),
        CampaignState::Running => w.put_u8(1),
        CampaignState::Paused => w.put_u8(2),
        CampaignState::Killed { execs } => {
            w.put_u8(3);
            w.put_u64(*execs);
        }
        CampaignState::Finished => w.put_u8(4),
        CampaignState::Failed => w.put_u8(5),
    }
}

fn decode_state(r: &mut Reader<'_>) -> Result<CampaignState, WireError> {
    Ok(match r.get_u8()? {
        0 => CampaignState::Queued,
        1 => CampaignState::Running,
        2 => CampaignState::Paused,
        3 => CampaignState::Killed { execs: r.get_u64()? },
        4 => CampaignState::Finished,
        5 => CampaignState::Failed,
        _ => return Err(WireError::Malformed("campaign state tag")),
    })
}

fn encode_health(w: &mut Writer, h: &HealthReport) {
    w.put_u64(h.epoch);
    w.put_u64(h.epochs);
    w.put_u64(h.execs);
    w.put_u64(h.clock_cycles);
    w.put_u64(h.edges_found);
    w.put_u64(h.queue_len);
    w.put_u64(h.crashes);
    w.put_u64(h.edges_per_megaexec.to_bits());
    w.put_u64(h.stalled_grants);
    w.put_u64(h.stale_queue_grants);
}

fn decode_health(r: &mut Reader<'_>) -> Result<HealthReport, WireError> {
    Ok(HealthReport {
        epoch: r.get_u64()?,
        epochs: r.get_u64()?,
        execs: r.get_u64()?,
        clock_cycles: r.get_u64()?,
        edges_found: r.get_u64()?,
        queue_len: r.get_u64()?,
        crashes: r.get_u64()?,
        edges_per_megaexec: f64::from_bits(r.get_u64()?),
        stalled_grants: r.get_u64()?,
        stale_queue_grants: r.get_u64()?,
    })
}

fn encode_service_error(w: &mut Writer, e: &ServiceError) {
    match e {
        ServiceError::Killed { execs } => {
            w.put_u8(0);
            w.put_u64(*execs);
        }
        ServiceError::Failed(msg) => {
            w.put_u8(1);
            w.put_str(msg);
        }
        ServiceError::ShutDown => w.put_u8(2),
    }
}

fn decode_service_error(r: &mut Reader<'_>) -> Result<ServiceError, WireError> {
    Ok(match r.get_u8()? {
        0 => ServiceError::Killed { execs: r.get_u64()? },
        1 => ServiceError::Failed(r.get_str()?),
        2 => ServiceError::ShutDown,
        _ => return Err(WireError::Malformed("service error tag")),
    })
}

fn encode_admission_error(w: &mut Writer, e: &RemoteAdmissionError) {
    match e {
        RemoteAdmissionError::Full { capacity } => {
            w.put_u8(0);
            w.put_u64(*capacity as u64);
        }
        RemoteAdmissionError::Duplicate(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        RemoteAdmissionError::InvalidSpec(msg) => {
            w.put_u8(2);
            w.put_str(msg);
        }
        RemoteAdmissionError::Resolver(msg) => {
            w.put_u8(3);
            w.put_str(msg);
        }
        RemoteAdmissionError::Io(msg) => {
            w.put_u8(4);
            w.put_str(msg);
        }
    }
}

fn decode_admission_error(r: &mut Reader<'_>) -> Result<RemoteAdmissionError, WireError> {
    Ok(match r.get_u8()? {
        0 => RemoteAdmissionError::Full {
            capacity: r.get_u64()? as usize,
        },
        1 => RemoteAdmissionError::Duplicate(r.get_str()?),
        2 => RemoteAdmissionError::InvalidSpec(r.get_str()?),
        3 => RemoteAdmissionError::Resolver(r.get_str()?),
        4 => RemoteAdmissionError::Io(r.get_str()?),
        _ => return Err(WireError::Malformed("admission error tag")),
    })
}

fn encode_resilience(w: &mut Writer, c: &ResilienceCounters) {
    let x = &c.executor;
    w.put_u64(x.respawns);
    w.put_u64(x.divergences);
    w.put_u64(x.integrity_checks);
    w.put_u64(x.quarantined);
    w.put_u64(x.quarantine_dropped);
    w.put_u64(x.harness_faults);
    w.put_u8(match x.degradation {
        closurex::resilience::DegradationLevel::Persistent => 0,
        closurex::resilience::DegradationLevel::ForkPerExec => 1,
    });
    w.put_u64(c.harness_faults);
    w.put_u64(c.retries);
    w.put_u64(c.dropped_inputs);
    w.put_u64(c.watchdog_trips);
    encode_supervision(w, &c.supervision);
    c.storage.encode(w);
}

fn decode_resilience(r: &mut Reader<'_>) -> Result<ResilienceCounters, WireError> {
    let executor = closurex::resilience::ResilienceReport {
        respawns: r.get_u64()?,
        divergences: r.get_u64()?,
        integrity_checks: r.get_u64()?,
        quarantined: r.get_u64()?,
        quarantine_dropped: r.get_u64()?,
        harness_faults: r.get_u64()?,
        degradation: match r.get_u8()? {
            0 => closurex::resilience::DegradationLevel::Persistent,
            1 => closurex::resilience::DegradationLevel::ForkPerExec,
            _ => return Err(WireError::Malformed("degradation tag")),
        },
    };
    Ok(ResilienceCounters {
        executor,
        harness_faults: r.get_u64()?,
        retries: r.get_u64()?,
        dropped_inputs: r.get_u64()?,
        watchdog_trips: r.get_u64()?,
        supervision: decode_supervision(r)?,
        storage: StorageCounters::decode(r)?,
    })
}

fn encode_supervision(w: &mut Writer, s: &SupervisionCounters) {
    w.put_u64(s.lane_panics);
    w.put_u64(s.lane_hangs);
    w.put_u64(s.barrier_timeouts);
    w.put_u64(s.lane_rebuilds);
    w.put_u64(s.recovered);
    w.put_u64(s.worker_signals);
    w.put_u64(s.worker_exits);
    w.put_u64(s.pipe_eofs);
    w.put_u64(s.frame_corruptions);
    w.put_u64(s.deadline_kills);
    w.put_u64(s.lane_respawns.len() as u64);
    for &v in &s.lane_respawns {
        w.put_u64(v);
    }
    w.put_u64(s.degradations.len() as u64);
    for d in &s.degradations {
        w.put_u64(d.lane);
        w.put_u64(d.epoch);
        w.put_u64(d.attempts);
        w.put_u64(d.reclaimed_cycles);
        w.put_str(&d.last_fault);
    }
}

fn decode_supervision(r: &mut Reader<'_>) -> Result<SupervisionCounters, WireError> {
    let mut s = SupervisionCounters {
        lane_panics: r.get_u64()?,
        lane_hangs: r.get_u64()?,
        barrier_timeouts: r.get_u64()?,
        lane_rebuilds: r.get_u64()?,
        recovered: r.get_u64()?,
        worker_signals: r.get_u64()?,
        worker_exits: r.get_u64()?,
        pipe_eofs: r.get_u64()?,
        frame_corruptions: r.get_u64()?,
        deadline_kills: r.get_u64()?,
        lane_respawns: Vec::new(),
        degradations: Vec::new(),
    };
    let n = r.get_count()?;
    if n > r.remaining() / 8 {
        return Err(WireError::Truncated);
    }
    s.lane_respawns.reserve(n);
    for _ in 0..n {
        s.lane_respawns.push(r.get_u64()?);
    }
    let n = r.get_count()?;
    // Each degradation record is ≥ 4×8-byte counters + an 8-byte string
    // length: bound the count before reserving.
    if n > r.remaining() / 40 {
        return Err(WireError::Truncated);
    }
    s.degradations.reserve(n);
    for _ in 0..n {
        s.degradations.push(LaneDegradation {
            lane: r.get_u64()?,
            epoch: r.get_u64()?,
            attempts: r.get_u64()?,
            reclaimed_cycles: r.get_u64()?,
            last_fault: r.get_str()?,
        });
    }
    Ok(s)
}

fn encode_resume(w: &mut Writer, rep: &ResumeReport) {
    w.put_u64(rep.snapshot_execs);
    w.put_u64(rep.records_applied);
    w.put_u64(rep.corrupt_snapshots_skipped);
    w.put_u64(rep.torn_records);
    w.put_u64(rep.snapshots_repaired);
    w.put_u64(rep.sweep_warnings);
    w.put_bool(rep.decoded_image_ready);
    w.put_u8(match rep.decoded_image_source {
        None => 0,
        Some(vmos::WarmSource::Cache) => 1,
        Some(vmos::WarmSource::Sidecar) => 2,
        Some(vmos::WarmSource::Lowered) => 3,
    });
}

fn decode_resume(r: &mut Reader<'_>) -> Result<ResumeReport, WireError> {
    Ok(ResumeReport {
        snapshot_execs: r.get_u64()?,
        records_applied: r.get_u64()?,
        corrupt_snapshots_skipped: r.get_u64()?,
        torn_records: r.get_u64()?,
        snapshots_repaired: r.get_u64()?,
        sweep_warnings: r.get_u64()?,
        decoded_image_ready: r.get_bool()?,
        decoded_image_source: match r.get_u8()? {
            0 => None,
            1 => Some(vmos::WarmSource::Cache),
            2 => Some(vmos::WarmSource::Sidecar),
            3 => Some(vmos::WarmSource::Lowered),
            _ => return Err(WireError::Malformed("warm source tag")),
        },
    })
}

/// Encode a full [`CampaignResult`]. Lossless: the equivalence gate
/// compares the decoded result bit-for-bit with the in-process one.
fn encode_result(w: &mut Writer, res: &CampaignResult) {
    w.put_str(&res.executor);
    w.put_u64(res.execs);
    w.put_u64(res.clock_cycles);
    w.put_u64(res.edges_found as u64);
    w.put_u64(res.coverage_hash);
    w.put_u64(res.crashes.len() as u64);
    for c in &res.crashes {
        crate::checkpoint::encode_crash_record(c, w);
    }
    w.put_u64(res.queue_len as u64);
    w.put_u64(res.hangs);
    w.put_u64(res.mgmt_cycles);
    w.put_u64(res.exec_cycles);
    w.put_u64(res.queue_inputs.len() as u64);
    for input in &res.queue_inputs {
        w.put_bytes(input);
    }
    encode_resilience(w, &res.resilience);
    match &res.resume {
        None => w.put_bool(false),
        Some(rep) => {
            w.put_bool(true);
            encode_resume(w, rep);
        }
    }
}

fn decode_result(r: &mut Reader<'_>) -> Result<CampaignResult, WireError> {
    let executor = r.get_str()?;
    let execs = r.get_u64()?;
    let clock_cycles = r.get_u64()?;
    let edges_found = r.get_u64()? as usize;
    let coverage_hash = r.get_u64()?;
    let n = r.get_count()?;
    // A crash record is ≥ 1 tag + 2 string lengths + block + counters:
    // bound before reserving so corrupt counts cannot over-allocate.
    if n > r.remaining() / 30 {
        return Err(WireError::Truncated);
    }
    let mut crashes = Vec::with_capacity(n);
    for _ in 0..n {
        crashes.push(crate::checkpoint::decode_crash_record(r)?);
    }
    let queue_len = r.get_u64()? as usize;
    let hangs = r.get_u64()?;
    let mgmt_cycles = r.get_u64()?;
    let exec_cycles = r.get_u64()?;
    let n = r.get_count()?;
    if n > r.remaining() / 8 {
        return Err(WireError::Truncated);
    }
    let mut queue_inputs = Vec::with_capacity(n);
    for _ in 0..n {
        queue_inputs.push(r.get_bytes()?);
    }
    let resilience = decode_resilience(r)?;
    let resume = if r.get_bool()? {
        Some(decode_resume(r)?)
    } else {
        None
    };
    Ok(CampaignResult {
        executor,
        execs,
        clock_cycles,
        edges_found,
        coverage_hash,
        crashes,
        queue_len,
        hangs,
        mgmt_cycles,
        exec_cycles,
        queue_inputs,
        resilience,
        resume,
    })
}

pub(crate) fn encode_reply_body(reply: &RpcReply) -> Vec<u8> {
    let mut w = Writer::new();
    match reply {
        RpcReply::Unit => w.put_u8(RT_UNIT),
        RpcReply::Status(s) => {
            w.put_u8(RT_STATUS);
            encode_state(&mut w, s);
        }
        RpcReply::Health(h) => {
            w.put_u8(RT_HEALTH);
            match h {
                None => w.put_bool(false),
                Some(h) => {
                    w.put_bool(true);
                    encode_health(&mut w, h);
                }
            }
        }
        RpcReply::Result(res) => {
            w.put_u8(RT_RESULT);
            encode_result(&mut w, res);
        }
        RpcReply::Service(e) => {
            w.put_u8(RT_SERVICE);
            encode_service_error(&mut w, e);
        }
        RpcReply::Admission(e) => {
            w.put_u8(RT_ADMISSION);
            encode_admission_error(&mut w, e);
        }
        RpcReply::UnknownTenant => w.put_u8(RT_UNKNOWN),
    }
    w.into_bytes()
}

pub(crate) fn decode_reply_body(bytes: &[u8]) -> Result<RpcReply, WireError> {
    let mut r = Reader::new(bytes);
    let reply = match r.get_u8()? {
        RT_UNIT => RpcReply::Unit,
        RT_STATUS => RpcReply::Status(decode_state(&mut r)?),
        RT_HEALTH => {
            if r.get_bool()? {
                RpcReply::Health(Some(decode_health(&mut r)?))
            } else {
                RpcReply::Health(None)
            }
        }
        RT_RESULT => RpcReply::Result(Box::new(decode_result(&mut r)?)),
        RT_SERVICE => RpcReply::Service(decode_service_error(&mut r)?),
        RT_ADMISSION => RpcReply::Admission(decode_admission_error(&mut r)?),
        RT_UNKNOWN => RpcReply::UnknownTenant,
        _ => return Err(WireError::Malformed("reply tag")),
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes in reply"));
    }
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Reply journal: bounded, durable, exactly-once
// ---------------------------------------------------------------------------

/// The server's idempotency store: per (session, request-id), the
/// canonical reply bytes. Bounded per session (a sliding window — clients
/// retry only their most recent request), persisted to
/// [`RPC_JOURNAL_FILE`] so a restarted server still answers retries of
/// requests it executed before dying. Persistence failures degrade to
/// memory-only with a warning counter — the §16 convention: never let the
/// robustness machinery become the thing that kills the service.
struct ReplyJournal {
    path: PathBuf,
    cap_per_session: usize,
    max_file_bytes: u64,
    sessions: HashMap<u64, VecDeque<(u64, Vec<u8>)>>,
    next_session: u64,
    file_bytes: u64,
    warnings: u64,
}

impl ReplyJournal {
    /// Load (or initialize) the journal under `path`. Never fails: a
    /// missing file is an empty journal, a torn tail is truncated at the
    /// last whole record (and counted as a warning).
    fn load(path: PathBuf, cap_per_session: usize, max_file_bytes: u64) -> ReplyJournal {
        let mut j = ReplyJournal {
            path,
            cap_per_session,
            max_file_bytes,
            sessions: HashMap::new(),
            next_session: 1,
            file_bytes: 0,
            warnings: 0,
        };
        let bytes = match std::fs::read(&j.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return j,
            Err(_) => {
                j.warnings += 1;
                return j;
            }
        };
        j.file_bytes = bytes.len() as u64;
        let mut cursor: &[u8] = &bytes;
        loop {
            match read_frame(&mut cursor, MAX_RPC_FRAME) {
                Ok((JK_SESSION, payload)) => {
                    let mut r = Reader::new(&payload);
                    match r.get_u64() {
                        Ok(id) => j.note_session(id),
                        Err(_) => {
                            j.warnings += 1;
                            break;
                        }
                    }
                }
                Ok((JK_REPLY, payload)) => {
                    let mut r = Reader::new(&payload);
                    let rec = (|| -> Result<(u64, u64, Vec<u8>), WireError> {
                        Ok((r.get_u64()?, r.get_u64()?, r.get_bytes()?))
                    })();
                    match rec {
                        Ok((session, req, reply)) => {
                            j.insert(session, req, reply);
                        }
                        Err(_) => {
                            j.warnings += 1;
                            break;
                        }
                    }
                }
                Ok(_) => {
                    j.warnings += 1;
                    break;
                }
                Err(FrameError::Eof) => break,
                Err(_) => {
                    // Torn tail (the server died mid-append): everything
                    // before it is intact and trusted.
                    j.warnings += 1;
                    break;
                }
            }
        }
        j
    }

    fn note_session(&mut self, id: u64) {
        self.next_session = self.next_session.max(id + 1);
        self.sessions.entry(id).or_default();
    }

    /// In-memory insert-if-absent; returns the canonical bytes.
    fn insert(&mut self, session: u64, req: u64, reply: Vec<u8>) -> Vec<u8> {
        self.next_session = self.next_session.max(session + 1);
        let entry = self.sessions.entry(session).or_default();
        if let Some((_, existing)) = entry.iter().find(|(r, _)| *r == req) {
            return existing.clone();
        }
        entry.push_back((req, reply.clone()));
        while entry.len() > self.cap_per_session {
            entry.pop_front();
        }
        reply
    }

    fn lookup(&self, session: u64, req: u64) -> Option<Vec<u8>> {
        self.sessions
            .get(&session)?
            .iter()
            .find(|(r, _)| *r == req)
            .map(|(_, b)| b.clone())
    }

    /// Allocate a fresh session id, durably.
    fn open_session(&mut self) -> u64 {
        let id = self.next_session;
        self.note_session(id);
        let mut w = Writer::new();
        w.put_u64(id);
        self.append(JK_SESSION, &w.into_bytes());
        id
    }

    /// The exactly-once point: insert-if-absent under the server's
    /// journal lock, then persist. Concurrent handlers racing on the same
    /// (session, req) converge on the first writer's bytes.
    fn record(&mut self, session: u64, req: u64, reply: Vec<u8>) -> Vec<u8> {
        let canonical = self.insert(session, req, reply);
        let mut w = Writer::new();
        w.put_u64(session);
        w.put_u64(req);
        w.put_bytes(&canonical);
        self.append(JK_REPLY, &w.into_bytes());
        if self.file_bytes > self.max_file_bytes {
            self.compact();
        }
        canonical
    }

    /// Best-effort append. I/O failure → warning, memory-only operation.
    fn append(&mut self, kind: u8, payload: &[u8]) {
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| {
                write_frame(&mut f, kind, payload)
                    .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))
            });
        match res {
            Ok(()) => {
                self.file_bytes += (vmos::FRAME_HEADER_LEN + payload.len()) as u64;
            }
            Err(_) => self.warnings += 1,
        }
    }

    /// Rewrite the file from the bounded in-memory state (dropping
    /// evicted records), atomically via tmp + rename.
    fn compact(&mut self) {
        let tmp = self.path.with_extension("tmp");
        let mut ids: Vec<u64> = self.sessions.keys().copied().collect();
        ids.sort_unstable();
        let mut bytes_written = 0u64;
        let res = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            for id in &ids {
                let mut w = Writer::new();
                w.put_u64(*id);
                let p = w.into_bytes();
                write_frame(&mut f, JK_SESSION, &p)
                    .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
                bytes_written += (vmos::FRAME_HEADER_LEN + p.len()) as u64;
                for (req, reply) in &self.sessions[id] {
                    let mut w = Writer::new();
                    w.put_u64(*id);
                    w.put_u64(*req);
                    w.put_bytes(reply);
                    let p = w.into_bytes();
                    write_frame(&mut f, JK_REPLY, &p)
                        .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
                    bytes_written += (vmos::FRAME_HEADER_LEN + p.len()) as u64;
                }
            }
            f.sync_all()?;
            std::fs::rename(&tmp, &self.path)
        })();
        match res {
            Ok(()) => self.file_bytes = bytes_written,
            Err(_) => {
                self.warnings += 1;
                // Reset the watermark so a persistently failing disk does
                // not retry compaction on every record.
                self.file_bytes = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Faults injected on the server's sends (direction 1). Share the
    /// plan (by value) with the client to drive a full grid.
    pub fault_plan: NetFaultPlan,
    /// Reply-journal window per session — how far back a client may
    /// retry. Clients retry only their newest request, so a small window
    /// is plenty.
    pub replies_per_session: usize,
    /// Journal compaction threshold in bytes.
    pub journal_max_bytes: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            fault_plan: NetFaultPlan::none(),
            replies_per_session: 64,
            journal_max_bytes: 1 << 20,
        }
    }
}

struct ServerShared {
    service: Arc<Service>,
    journal: Mutex<ReplyJournal>,
    plan: Arc<Mutex<NetFaultPlan>>,
    counters: Arc<Mutex<RpcCounters>>,
    stop: AtomicBool,
    conns: Mutex<Vec<ConnCloser>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// The RPC front end: an accept loop plus one handler thread per
/// connection, all over a shared [`Service`]. Stop it gracefully with
/// [`RpcServer::stop`] (joins everything) or simulate a crash with
/// [`RpcServer::kill`] — the reply journal and `spec.bin` admissions are
/// durable, so a new server over the same directory resumes sessions.
pub struct RpcServer {
    shared: Arc<ServerShared>,
    net: MemNet,
    generation: u64,
    accept: Option<JoinHandle<()>>,
}

impl RpcServer {
    /// Start serving `service` on `net`, displacing any previous listener.
    pub fn start(service: Arc<Service>, net: &MemNet, opts: ServerOptions) -> RpcServer {
        let journal = ReplyJournal::load(
            service.dir().join(RPC_JOURNAL_FILE),
            opts.replies_per_session.max(1),
            opts.journal_max_bytes.max(4096),
        );
        let shared = Arc::new(ServerShared {
            service,
            journal: Mutex::new(journal),
            plan: Arc::new(Mutex::new(opts.fault_plan)),
            counters: Arc::new(Mutex::new(RpcCounters::default())),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        {
            let mut c = shared.counters.lock().expect("counters poisoned");
            c.journal_warnings += shared.journal.lock().expect("journal poisoned").warnings;
        }
        let listener = net.listen();
        let generation = listener.generation;
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            while let Some(conn) = listener.accept() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    conn.close();
                    break;
                }
                let h_shared = Arc::clone(&accept_shared);
                accept_shared
                    .conns
                    .lock()
                    .expect("conn list poisoned")
                    .push(conn.closer());
                let handle = std::thread::spawn(move || handle_conn(&h_shared, conn));
                accept_shared
                    .handlers
                    .lock()
                    .expect("handler list poisoned")
                    .push(handle);
            }
        });
        RpcServer {
            shared,
            net: net.clone(),
            generation,
            accept: Some(accept),
        }
    }

    /// A snapshot of this server's transport counters.
    pub fn counters(&self) -> RpcCounters {
        let mut c = self
            .shared
            .counters
            .lock()
            .expect("counters poisoned")
            .clone();
        c.journal_warnings = self.shared.journal.lock().expect("journal poisoned").warnings;
        c
    }

    fn shut_transport(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.net.unlisten(self.generation);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for closer in self
            .shared
            .conns
            .lock()
            .expect("conn list poisoned")
            .drain(..)
        {
            closer.close();
        }
    }

    /// Graceful stop: close the listener and every connection, then join
    /// all handler threads. Handlers blocked in a server-side `Await`
    /// unblock once their campaign (or the service) terminates.
    pub fn stop(mut self) {
        self.shut_transport();
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .expect("handler list poisoned")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
    }

    /// Simulated crash: sever the transport *without* joining handlers —
    /// in-flight requests die mid-frame from the client's point of view.
    /// Durable state (spec.bin, checkpoints, reply journal) is exactly
    /// what a restarted server finds.
    pub fn kill(mut self) {
        self.shut_transport();
        self.shared
            .handlers
            .lock()
            .expect("handler list poisoned")
            .clear();
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shut_transport();
            let handlers: Vec<_> = self
                .shared
                .handlers
                .lock()
                .expect("handler list poisoned")
                .drain(..)
                .collect();
            for h in handlers {
                let _ = h.join();
            }
        }
    }
}

/// Translate a server-side [`AdmissionError`] for the wire.
fn admission_to_remote(e: &AdmissionError) -> RemoteAdmissionError {
    match e {
        AdmissionError::Full { capacity } => RemoteAdmissionError::Full {
            capacity: *capacity,
        },
        AdmissionError::Duplicate(name) => RemoteAdmissionError::Duplicate(name.clone()),
        AdmissionError::InvalidSpec(msg) => RemoteAdmissionError::InvalidSpec((*msg).to_string()),
        AdmissionError::Resolver(msg) => RemoteAdmissionError::Resolver(msg.clone()),
        AdmissionError::Io(err) => RemoteAdmissionError::Io(err.to_string()),
    }
}

/// Execute one operation against the service. Used by the server handler
/// and, verbatim, by the client's `Degraded(Local)` fallback — the two
/// paths cannot diverge because they are the same function.
fn execute_op(service: &Service, op: &RpcOp, counters: &Mutex<RpcCounters>) -> RpcReply {
    let by_name = |name: &str| service.handle(name);
    match op {
        RpcOp::Submit(spec) => match service.submit(spec.clone()) {
            Ok(_) => RpcReply::Unit,
            Err(AdmissionError::Duplicate(name)) => {
                // Idempotent Submit: a duplicate of the *identical*,
                // durably-admitted spec is a retry, not a conflict.
                if service.spec(&name).map(|s| s.encode()) == Some(spec.encode()) {
                    counters.lock().expect("counters poisoned").dup_submits_deduped += 1;
                    RpcReply::Unit
                } else {
                    RpcReply::Admission(RemoteAdmissionError::Duplicate(name))
                }
            }
            Err(e) => RpcReply::Admission(admission_to_remote(&e)),
        },
        RpcOp::Status(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => RpcReply::Status(h.status()),
        },
        RpcOp::Health(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => RpcReply::Health(h.health()),
        },
        RpcOp::Pause(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => {
                h.pause();
                RpcReply::Unit
            }
        },
        RpcOp::Resume(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => {
                h.resume();
                RpcReply::Unit
            }
        },
        RpcOp::Kill(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => {
                h.kill();
                RpcReply::Unit
            }
        },
        RpcOp::Await(name) => match by_name(name) {
            None => RpcReply::UnknownTenant,
            Some(h) => match h.await_result() {
                Ok(res) => RpcReply::Result(Box::new(res)),
                Err(e) => RpcReply::Service(e),
            },
        },
    }
}

fn handle_conn(shared: &ServerShared, mut conn: Conn) {
    // The raw preamble: client-assigned connection id. Below the frame
    // layer, so below the fault plan.
    let mut preamble = [0u8; CONN_PREAMBLE_LEN];
    if conn.reader.read_exact(&mut preamble).is_err() {
        return;
    }
    let conn_id = u64::from_le_bytes(preamble);
    shared.counters.lock().expect("counters poisoned").connects += 1;
    let mut fc = FramedConn::new(
        conn,
        conn_id,
        1,
        Arc::clone(&shared.plan),
        Arc::clone(&shared.counters),
    );

    // Handshake: Hello{session} → HelloOk{session}.
    let session = match fc.recv() {
        Ok((RK_HELLO, payload)) => {
            let mut r = Reader::new(&payload);
            let requested = match r.get_u64() {
                Ok(v) if r.remaining() == 0 => v,
                _ => {
                    shared
                        .counters
                        .lock()
                        .expect("counters poisoned")
                        .protocol_errors += 1;
                    return;
                }
            };
            let mut journal = shared.journal.lock().expect("journal poisoned");
            let mut c = shared.counters.lock().expect("counters poisoned");
            if requested == 0 {
                c.sessions_opened += 1;
                journal.open_session()
            } else {
                c.sessions_resumed += 1;
                journal.note_session(requested);
                requested
            }
        }
        Ok(_) => {
            shared
                .counters
                .lock()
                .expect("counters poisoned")
                .protocol_errors += 1;
            return;
        }
        Err(_) => return,
    };
    let mut ok = Writer::new();
    ok.put_u64(session);
    let hello_ok = ok.into_bytes();
    if fc.send(RK_HELLO_OK, &hello_ok).is_err() {
        return;
    }

    loop {
        match fc.recv() {
            Ok((RK_REQ, payload)) => {
                let (req_id, op) = match decode_request(&payload) {
                    Ok(x) => x,
                    Err(_) => {
                        shared
                            .counters
                            .lock()
                            .expect("counters poisoned")
                            .protocol_errors += 1;
                        return;
                    }
                };
                // Exactly-once: answer retries from the journal.
                let cached = shared
                    .journal
                    .lock()
                    .expect("journal poisoned")
                    .lookup(session, req_id);
                let body = match cached {
                    Some(bytes) => {
                        shared
                            .counters
                            .lock()
                            .expect("counters poisoned")
                            .journal_replays += 1;
                        bytes
                    }
                    None => {
                        // Execute outside the journal lock (`Await` blocks),
                        // then journal-or-converge under it.
                        let reply = execute_op(&shared.service, &op, &shared.counters);
                        let bytes = encode_reply_body(&reply);
                        shared
                            .journal
                            .lock()
                            .expect("journal poisoned")
                            .record(session, req_id, bytes)
                    }
                };
                let mut w = Writer::new();
                w.put_u64(req_id);
                w.put_bytes(&body);
                if fc.send(RK_REPLY, &w.into_bytes()).is_err() {
                    // The reply is journaled: the client's retry replays it.
                    return;
                }
                shared.counters.lock().expect("counters poisoned").replies += 1;
            }
            // A duplicated Hello frame (fault-injected) — re-ack, idempotently.
            Ok((RK_HELLO, _)) => {
                if fc.send(RK_HELLO_OK, &hello_ok).is_err() {
                    return;
                }
            }
            Ok(_) => {
                shared
                    .counters
                    .lock()
                    .expect("counters poisoned")
                    .protocol_errors += 1;
                return;
            }
            // Disconnects (clean or torn), corrupt frames, timeouts: drop
            // the connection. Server state is untouched — a half-written
            // frame dies here, at the codec boundary.
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side knobs.
#[derive(Clone)]
pub struct RemoteOptions {
    /// Faults injected on the client's sends (direction 0).
    pub fault_plan: NetFaultPlan,
    /// Attempts per logical call before the ladder's last rung.
    pub max_attempts: u32,
    /// Seed for the backoff jitter (deterministic, like every plan here).
    pub backoff_seed: u64,
    /// Base backoff charge in simulated cycles; doubles per retry.
    pub backoff_base_cycles: u64,
    /// How long a read waits for a reply before the retry ladder engages
    /// (a dropped frame is indistinguishable from a slow peer).
    pub read_timeout: Duration,
    /// Same bound for server-side-blocking `Await` replies. Generous:
    /// an await legitimately takes as long as the campaign.
    pub await_timeout: Duration,
    /// The ladder's last rung: serve calls from this in-process service
    /// when the wire stays down. Sticky once entered.
    pub fallback: Option<Arc<Service>>,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            fault_plan: NetFaultPlan::none(),
            max_attempts: 8,
            backoff_seed: 0x5E55_10F0,
            backoff_base_cycles: 1_000,
            read_timeout: Duration::from_millis(250),
            await_timeout: Duration::from_secs(120),
            fallback: None,
        }
    }
}

struct ClientState {
    conn: Option<FramedConn>,
    session: u64,
    next_req: u64,
    next_conn: u64,
    degraded: bool,
}

struct ClientCore {
    net: MemNet,
    opts: RemoteOptions,
    plan: Arc<Mutex<NetFaultPlan>>,
    counters: Arc<Mutex<RpcCounters>>,
    st: Mutex<ClientState>,
}

/// The remote face of [`Service`]: same verbs, plus a transport that
/// retries, resumes, and degrades instead of crashing. Calls are
/// serialized per client (one session, monotonic request ids); clone the
/// service (or its handles) to share the session across threads.
#[derive(Clone)]
pub struct RemoteService {
    core: Arc<ClientCore>,
}

/// The remote mirror of [`crate::service::CampaignHandle`].
#[derive(Clone)]
pub struct RemoteHandle {
    core: Arc<ClientCore>,
    name: String,
}

impl RemoteService {
    /// Connect and open (or later resume) a session.
    ///
    /// # Errors
    /// The connection/handshake [`RpcError`] — unless a fallback is
    /// configured, in which case the client starts degraded instead.
    pub fn connect(net: &MemNet, opts: RemoteOptions) -> Result<RemoteService, RpcError> {
        let core = Arc::new(ClientCore {
            net: net.clone(),
            plan: Arc::new(Mutex::new(opts.fault_plan.clone())),
            counters: Arc::new(Mutex::new(RpcCounters::default())),
            st: Mutex::new(ClientState {
                conn: None,
                session: 0,
                next_req: 1,
                next_conn: 0,
                degraded: false,
            }),
            opts,
        });
        let svc = RemoteService { core };
        {
            let mut st = svc.core.st.lock().expect("client state poisoned");
            let mut attempt = 0u32;
            loop {
                match svc.core.reconnect(&mut st) {
                    Ok(()) => break,
                    Err(e) => {
                        attempt += 1;
                        if attempt >= svc.core.opts.max_attempts {
                            if svc.core.opts.fallback.is_some() {
                                st.degraded = true;
                                break;
                            }
                            return Err(e);
                        }
                        svc.core.backoff(attempt);
                    }
                }
            }
        }
        Ok(svc)
    }

    /// Submit a campaign. Retries are idempotent end to end: the request
    /// id dedupes at the reply journal and the spec dedupes at admission.
    ///
    /// # Errors
    /// [`RemoteError`] — admission refusal or exhausted transport.
    pub fn submit(&self, spec: CampaignSpec) -> Result<RemoteHandle, RemoteError> {
        let name = spec.name.clone();
        match self.core.call(&RpcOp::Submit(spec))? {
            RpcReply::Unit => Ok(RemoteHandle {
                core: Arc::clone(&self.core),
                name,
            }),
            RpcReply::Admission(e) => Err(RemoteError::Admission(e)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Look up a campaign by name; `Ok(None)` if the server has no such
    /// tenant.
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure.
    pub fn handle(&self, name: &str) -> Result<Option<RemoteHandle>, RemoteError> {
        match self.core.call(&RpcOp::Status(name.to_string()))? {
            RpcReply::Status(_) => Ok(Some(RemoteHandle {
                core: Arc::clone(&self.core),
                name: name.to_string(),
            })),
            RpcReply::UnknownTenant => Ok(None),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// This client's transport counters.
    pub fn counters(&self) -> RpcCounters {
        self.core.counters.lock().expect("counters poisoned").clone()
    }

    /// Where calls are currently served: the wire, or the local fallback.
    pub fn served_by(&self) -> ServedBy {
        if self.core.st.lock().expect("client state poisoned").degraded {
            ServedBy::Degraded(Degraded::Local)
        } else {
            ServedBy::Remote
        }
    }

    /// The server-assigned session id (0 while degraded-from-birth).
    pub fn session(&self) -> u64 {
        self.core.st.lock().expect("client state poisoned").session
    }
}

fn unexpected_reply(reply: &RpcReply) -> RemoteError {
    match reply {
        RpcReply::Service(e) => RemoteError::Service(match e {
            ServiceError::Killed { execs } => ServiceError::Killed { execs: *execs },
            ServiceError::Failed(m) => ServiceError::Failed(m.clone()),
            ServiceError::ShutDown => ServiceError::ShutDown,
        }),
        _ => RemoteError::Rpc(RpcError::Protocol("unexpected reply variant")),
    }
}

impl std::fmt::Debug for RemoteHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteHandle").field("name", &self.name).finish()
    }
}

impl RemoteHandle {
    /// The tenant name this handle addresses.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn named_call(&self, op: RpcOp) -> Result<RpcReply, RemoteError> {
        match self.core.call(&op)? {
            RpcReply::UnknownTenant => Err(RemoteError::UnknownTenant(self.name.clone())),
            reply => Ok(reply),
        }
    }

    /// Remote [`crate::service::CampaignHandle::status`].
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure or unknown tenant.
    pub fn status(&self) -> Result<CampaignState, RemoteError> {
        match self.named_call(RpcOp::Status(self.name.clone()))? {
            RpcReply::Status(s) => Ok(s),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Remote [`crate::service::CampaignHandle::health`].
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure or unknown tenant.
    pub fn health(&self) -> Result<Option<HealthReport>, RemoteError> {
        match self.named_call(RpcOp::Health(self.name.clone()))? {
            RpcReply::Health(h) => Ok(h),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Remote [`crate::service::CampaignHandle::pause`].
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure or unknown tenant.
    pub fn pause(&self) -> Result<(), RemoteError> {
        match self.named_call(RpcOp::Pause(self.name.clone()))? {
            RpcReply::Unit => Ok(()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Remote [`crate::service::CampaignHandle::resume`].
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure or unknown tenant.
    pub fn resume(&self) -> Result<(), RemoteError> {
        match self.named_call(RpcOp::Resume(self.name.clone()))? {
            RpcReply::Unit => Ok(()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Remote [`crate::service::CampaignHandle::kill`].
    ///
    /// # Errors
    /// [`RemoteError`] on transport failure or unknown tenant.
    pub fn kill(&self) -> Result<(), RemoteError> {
        match self.named_call(RpcOp::Kill(self.name.clone()))? {
            RpcReply::Unit => Ok(()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Remote [`crate::service::CampaignHandle::await_result`]: blocks
    /// until the campaign is terminal (the server blocks; the client
    /// waits with the `await_timeout` and the usual retry ladder — a
    /// retried await is answered from the reply journal, not re-run).
    ///
    /// # Errors
    /// [`RemoteError::Service`] for killed/failed campaigns,
    /// [`RemoteError::Rpc`] for exhausted transport.
    pub fn await_result(&self) -> Result<CampaignResult, RemoteError> {
        match self.named_call(RpcOp::Await(self.name.clone()))? {
            RpcReply::Result(res) => Ok(*res),
            RpcReply::Service(e) => Err(RemoteError::Service(e)),
            other => Err(unexpected_reply(&other)),
        }
    }
}

impl ClientCore {
    /// Dial, preamble, handshake. On success the connection is installed
    /// in `st` and the session id is confirmed (or freshly assigned).
    fn reconnect(&self, st: &mut ClientState) -> Result<(), RpcError> {
        st.conn = None;
        let mut conn = self.net.connect()?;
        let conn_id = st.next_conn;
        st.next_conn += 1;
        conn.writer
            .write_all(&conn_id.to_le_bytes())
            .map_err(|e| io_to_rpc(FrameError::Io(e.kind())))?;
        conn.set_read_timeout(Some(self.opts.read_timeout));
        let mut fc = FramedConn::new(
            conn,
            conn_id,
            0,
            Arc::clone(&self.plan),
            Arc::clone(&self.counters),
        );
        let resuming = st.session != 0;
        let mut hello = Writer::new();
        hello.put_u64(st.session);
        fc.send(RK_HELLO, &hello.into_bytes())?;
        match fc.recv()? {
            (RK_HELLO_OK, payload) => {
                let mut r = Reader::new(&payload);
                let session = match r.get_u64() {
                    Ok(v) if r.remaining() == 0 && v != 0 => v,
                    _ => return Err(RpcError::Protocol("bad hello-ok")),
                };
                let mut c = self.counters.lock().expect("counters poisoned");
                c.connects += 1;
                if resuming && session == st.session {
                    c.sessions_resumed += 1;
                }
                st.session = session;
                st.conn = Some(fc);
                Ok(())
            }
            // Stale replies from a previous connection's duplicate cannot
            // appear on a fresh pipe; anything else is noise.
            _ => Err(RpcError::Protocol("expected hello-ok")),
        }
    }

    /// Seeded exponential backoff, charged in simulated cycles (the
    /// deterministic observable) with a token real sleep to keep retry
    /// storms polite.
    fn backoff(&self, attempt: u32) {
        let step = self.opts.backoff_base_cycles << attempt.min(10);
        let jitter = splitmix64(self.opts.backoff_seed ^ u64::from(attempt)) % (step / 2 + 1);
        let cycles = step + jitter;
        self.counters
            .lock()
            .expect("counters poisoned")
            .backoff_cycles += cycles;
        std::thread::sleep(Duration::from_micros((cycles / 100).min(2_000)));
    }

    /// The retry ladder. One request id for the whole call: every resend
    /// is the *same* request, so the server executes it at most once.
    fn call(&self, op: &RpcOp) -> Result<RpcReply, RpcError> {
        let mut st = self.st.lock().expect("client state poisoned");
        self.counters.lock().expect("counters poisoned").requests += 1;
        if st.degraded {
            return self.call_local(op);
        }
        let req_id = st.next_req;
        st.next_req += 1;
        let body = encode_request(req_id, op);
        let reply_timeout = if matches!(op, RpcOp::Await(_)) {
            self.opts.await_timeout
        } else {
            self.opts.read_timeout
        };
        let mut attempt = 0u32;
        loop {
            if attempt >= self.opts.max_attempts {
                if self.opts.fallback.is_some() {
                    st.degraded = true;
                    st.conn = None;
                    return self.call_local(op);
                }
                return Err(RpcError::Unavailable { attempts: attempt });
            }
            if attempt > 0 {
                self.counters.lock().expect("counters poisoned").retries += 1;
                self.backoff(attempt);
            }
            attempt += 1;
            if st.conn.is_none() && self.reconnect(&mut st).is_err() {
                continue;
            }
            let fc = st.conn.as_mut().expect("connection installed above");
            if fc.send(RK_REQ, &body).is_err() {
                st.conn = None;
                continue;
            }
            fc.conn.set_read_timeout(Some(reply_timeout));
            // Read until our reply arrives; skip duplicates and stale
            // replies (smaller request ids), which journal dedup makes
            // harmless.
            loop {
                match fc.recv() {
                    Ok((RK_REPLY, payload)) => {
                        let mut r = Reader::new(&payload);
                        let parsed = r
                            .get_u64()
                            .and_then(|rid| r.get_bytes().map(|b| (rid, b)));
                        match parsed {
                            Ok((rid, reply_body)) if r.remaining() == 0 => {
                                if rid == req_id {
                                    fc.conn.set_read_timeout(Some(self.opts.read_timeout));
                                    match decode_reply_body(&reply_body) {
                                        Ok(reply) => {
                                            self.counters
                                                .lock()
                                                .expect("counters poisoned")
                                                .replies += 1;
                                            return Ok(reply);
                                        }
                                        Err(_) => {
                                            return Err(RpcError::Protocol("undecodable reply"))
                                        }
                                    }
                                }
                                // Stale or duplicated reply: skip.
                            }
                            _ => {
                                self.counters
                                    .lock()
                                    .expect("counters poisoned")
                                    .protocol_errors += 1;
                                st.conn = None;
                                break;
                            }
                        }
                    }
                    // A duplicated HelloOk is harmless handshake noise.
                    Ok((RK_HELLO_OK, _)) => {}
                    Ok(_) => {
                        self.counters
                            .lock()
                            .expect("counters poisoned")
                            .protocol_errors += 1;
                        st.conn = None;
                        break;
                    }
                    Err(_) => {
                        st.conn = None;
                        break;
                    }
                }
            }
        }
    }

    /// The ladder's last rung: the identical operation, executed against
    /// the in-process fallback service by the same `execute_op` the
    /// server uses.
    fn call_local(&self, op: &RpcOp) -> Result<RpcReply, RpcError> {
        let service = self
            .opts
            .fallback
            .as_ref()
            .expect("call_local only reachable with a fallback");
        let reply = execute_op(service, op, &self.counters);
        let mut c = self.counters.lock().expect("counters poisoned");
        c.replies += 1;
        c.degraded_calls += 1;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CrashRecord;

    fn framed_pair(
        plan: NetFaultPlan,
    ) -> (FramedConn, FramedConn, Arc<Mutex<RpcCounters>>, MemNet) {
        let net = MemNet::new();
        let listener = net.listen();
        let client = net.connect().expect("listener registered");
        let server = listener.accept().expect("one queued conn");
        let plan = Arc::new(Mutex::new(plan));
        let counters = Arc::new(Mutex::new(RpcCounters::default()));
        (
            FramedConn::new(client, 0, 0, Arc::clone(&plan), Arc::clone(&counters)),
            FramedConn::new(server, 0, 1, plan, Arc::clone(&counters)),
            counters,
            net,
        )
    }

    #[test]
    fn pipe_streams_blocks_and_eofs() {
        let (mut w, mut r) = pipe();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        drop(w);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"c");
        // Closed + drained = EOF.
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn pipe_read_times_out() {
        let (_w, mut r) = pipe();
        r.timeout = Some(Duration::from_millis(10));
        let mut buf = [0u8; 1];
        let err = r.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn memnet_refuses_without_listener() {
        let net = MemNet::new();
        assert!(matches!(net.connect(), Err(RpcError::Refused)));
        let listener = net.listen();
        assert!(net.connect().is_ok());
        drop(listener);
        assert!(matches!(net.connect(), Err(RpcError::Refused)));
    }

    #[test]
    fn new_listener_displaces_the_old_one() {
        let net = MemNet::new();
        let old = net.listen();
        let new = net.listen();
        assert!(net.connect().is_ok());
        // The displaced listener sees end-of-accepts, not the new backlog.
        assert!(old.accept().is_none());
        assert!(new.accept().is_some());
    }

    #[test]
    fn request_codec_round_trips_every_op() {
        let spec = CampaignSpec::new(
            "t0",
            vec![1, 2, 3],
            vec![vec![0u8; 4]],
            crate::CampaignConfig::default(),
        );
        let ops = [
            RpcOp::Submit(spec),
            RpcOp::Status("a".into()),
            RpcOp::Health("b".into()),
            RpcOp::Pause("c".into()),
            RpcOp::Resume("d".into()),
            RpcOp::Kill("e".into()),
            RpcOp::Await("f".into()),
        ];
        for (i, op) in ops.iter().enumerate() {
            let bytes = encode_request(i as u64 + 7, op);
            let (rid, back) = decode_request(&bytes).expect("round trip");
            assert_eq!(rid, i as u64 + 7);
            assert_eq!(&back, op);
            // Trailing garbage is a protocol violation, not a prefix parse.
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(decode_request(&padded).is_err());
            // Every truncation is a typed error, never a panic.
            for cut in 0..bytes.len() {
                let _ = decode_request(&bytes[..cut]);
            }
        }
    }

    fn fixture_result() -> CampaignResult {
        CampaignResult {
            executor: "closurex".into(),
            execs: 12_345,
            clock_cycles: 999_999,
            edges_found: 42,
            coverage_hash: 0xDEAD_BEEF,
            crashes: vec![CrashRecord {
                crash: vmos::Crash {
                    kind: vmos::CrashKind::DoubleFree,
                    function: "main".into(),
                    block: 7,
                    detail: "freed twice".into(),
                },
                found_at_cycles: 123,
                input: vec![1, 2, 3],
                hits: 9,
                flaky: true,
            }],
            queue_len: 5,
            hangs: 1,
            mgmt_cycles: 10,
            exec_cycles: 20,
            queue_inputs: vec![vec![4, 5], vec![]],
            resilience: ResilienceCounters {
                executor: closurex::resilience::ResilienceReport {
                    respawns: 1,
                    divergences: 2,
                    integrity_checks: 3,
                    quarantined: 4,
                    quarantine_dropped: 5,
                    harness_faults: 6,
                    degradation: closurex::resilience::DegradationLevel::ForkPerExec,
                },
                harness_faults: 7,
                retries: 8,
                dropped_inputs: 9,
                watchdog_trips: 10,
                supervision: SupervisionCounters {
                    lane_panics: 1,
                    lane_hangs: 2,
                    barrier_timeouts: 3,
                    lane_rebuilds: 4,
                    recovered: 5,
                    worker_signals: 6,
                    worker_exits: 7,
                    pipe_eofs: 8,
                    frame_corruptions: 9,
                    deadline_kills: 10,
                    lane_respawns: vec![0, 3, 1],
                    degradations: vec![LaneDegradation {
                        lane: 2,
                        epoch: 4,
                        attempts: 3,
                        reclaimed_cycles: 500,
                        last_fault: "panic".into(),
                    }],
                },
                storage: StorageCounters::default(),
            },
            resume: Some(ResumeReport {
                snapshot_execs: 100,
                records_applied: 51,
                corrupt_snapshots_skipped: 1,
                torn_records: 2,
                snapshots_repaired: 3,
                sweep_warnings: 4,
                decoded_image_ready: true,
                decoded_image_source: Some(vmos::WarmSource::Sidecar),
            }),
        }
    }

    #[test]
    fn reply_codec_round_trips_a_full_result() {
        let replies = [
            RpcReply::Unit,
            RpcReply::Status(CampaignState::Killed { execs: 17 }),
            RpcReply::Health(None),
            RpcReply::Health(Some(HealthReport {
                epoch: 1,
                epochs: 2,
                execs: 3,
                clock_cycles: 4,
                edges_found: 5,
                queue_len: 6,
                crashes: 7,
                edges_per_megaexec: 1.5,
                stalled_grants: 8,
                stale_queue_grants: 9,
            })),
            RpcReply::Result(Box::new(fixture_result())),
            RpcReply::Service(ServiceError::Failed("boom".into())),
            RpcReply::Admission(RemoteAdmissionError::Full { capacity: 8 }),
            RpcReply::UnknownTenant,
        ];
        for reply in &replies {
            let bytes = encode_reply_body(reply);
            let back = decode_reply_body(&bytes).expect("round trip");
            // Losslessness via re-encode: byte-identical means every field
            // survived (the fixture populates all of them).
            assert_eq!(encode_reply_body(&back), bytes);
            // No truncation panics, no over-allocation (bounded counts).
            for cut in 0..bytes.len() {
                assert!(decode_reply_body(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn journal_dedupes_bounds_and_persists() {
        let dir = tempdir("rpc-journal");
        let path = dir.join(RPC_JOURNAL_FILE);
        let mut j = ReplyJournal::load(path.clone(), 3, 1 << 20);
        let s = j.open_session();
        assert_eq!(s, 1);
        // Insert-if-absent: the first write wins, a racing retry converges.
        assert_eq!(j.record(s, 1, b"first".to_vec()), b"first".to_vec());
        assert_eq!(j.record(s, 1, b"second".to_vec()), b"first".to_vec());
        assert_eq!(j.lookup(s, 1), Some(b"first".to_vec()));
        // Bounded window: old replies age out.
        for req in 2..=5 {
            j.record(s, req, vec![req as u8]);
        }
        assert_eq!(j.lookup(s, 1), None);
        assert_eq!(j.lookup(s, 5), Some(vec![5]));
        // Reload: durable across a server restart; session ids advance.
        let mut j2 = ReplyJournal::load(path.clone(), 3, 1 << 20);
        assert_eq!(j2.lookup(s, 5), Some(vec![5]));
        assert_eq!(j2.lookup(s, 1), None);
        assert_eq!(j2.open_session(), 2);
        // A torn tail (killed mid-append) is tolerated, prefix trusted.
        // The tail must get past the 9-byte length prefix to count as a
        // *tear* rather than a clean EOF (the §15 split).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&vmos::FRAME_MAGIC);
        bytes.push(JK_REPLY);
        bytes.extend_from_slice(&20u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 3]); // 3 of 8 checksum bytes
        std::fs::write(&path, &bytes).unwrap();
        let j3 = ReplyJournal::load(path, 3, 1 << 20);
        assert_eq!(j3.lookup(s, 5), Some(vec![5]));
        assert_eq!(j3.warnings, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn journal_compaction_drops_evicted_records() {
        let dir = tempdir("rpc-compact");
        let path = dir.join(RPC_JOURNAL_FILE);
        // Tiny compaction threshold: every record triggers a rewrite.
        let mut j = ReplyJournal::load(path.clone(), 2, 4096);
        let s = j.open_session();
        for req in 0..64 {
            j.record(s, req, vec![0u8; 128]);
        }
        assert!(j.warnings == 0, "compaction should not warn");
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert!(
            on_disk < 4096,
            "compaction keeps the file near the bounded window, got {on_disk}"
        );
        let j2 = ReplyJournal::load(path, 2, 4096);
        assert_eq!(j2.lookup(s, 63), Some(vec![0u8; 128]));
        assert_eq!(j2.lookup(s, 0), None);
        std::fs::remove_dir_all(dir).ok();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "aflrs-{tag}-{}-{:x}",
            std::process::id(),
            std::ptr::addr_of!(tag) as usize
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir tempdir");
        dir
    }

    #[test]
    fn fault_drop_loses_the_frame() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::Drop));
        client.send(RK_REQ, b"gone").expect("drop is silent");
        server.conn.set_read_timeout(Some(Duration::from_millis(20)));
        assert_eq!(server.recv().unwrap_err(), RpcError::Timeout);
        // The stream survives: the next frame arrives (fires consumed).
        client.send(RK_REQ, b"kept").unwrap();
        assert_eq!(server.recv().unwrap(), (RK_REQ, b"kept".to_vec()));
        let c = counters.lock().unwrap();
        assert_eq!(c.frames_dropped, 1);
        assert_eq!(c.timeouts, 1);
    }

    #[test]
    fn fault_duplicate_arrives_twice() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::Duplicate));
        client.send(RK_REQ, b"twin").unwrap();
        assert_eq!(server.recv().unwrap(), (RK_REQ, b"twin".to_vec()));
        assert_eq!(server.recv().unwrap(), (RK_REQ, b"twin".to_vec()));
        assert_eq!(counters.lock().unwrap().frames_duplicated, 1);
    }

    #[test]
    fn fault_corrupt_is_detected_not_desynced() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::Corrupt));
        client.send(RK_REQ, b"mangle me").unwrap();
        assert_eq!(server.recv().unwrap_err(), RpcError::CorruptFrame);
        let c = counters.lock().unwrap();
        assert_eq!(c.frames_corrupted, 1);
        assert_eq!(c.corrupt_frames_seen, 1);
    }

    #[test]
    fn fault_disconnect_is_a_clean_eof() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::Disconnect));
        assert_eq!(
            client.send(RK_REQ, b"never sent").unwrap_err(),
            RpcError::Disconnected { clean: true }
        );
        assert_eq!(
            server.recv().unwrap_err(),
            RpcError::Disconnected { clean: true }
        );
        let c = counters.lock().unwrap();
        assert_eq!(c.disconnects_injected, 1);
        assert_eq!(c.clean_disconnects, 1);
    }

    #[test]
    fn fault_partial_frame_is_a_torn_disconnect() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::PartialFrame));
        assert_eq!(
            client.send(RK_REQ, b"cut short").unwrap_err(),
            RpcError::Disconnected { clean: false }
        );
        assert_eq!(
            server.recv().unwrap_err(),
            RpcError::Disconnected { clean: false }
        );
        let c = counters.lock().unwrap();
        assert_eq!(c.partial_frames, 1);
        assert_eq!(c.torn_disconnects, 1);
    }

    #[test]
    fn fault_delay_charges_simulated_cycles() {
        let (mut client, mut server, counters, _net) =
            framed_pair(NetFaultPlan::at(0, 0, 0, NetFaultKind::Delay));
        client.send(RK_REQ, b"late").unwrap();
        assert_eq!(server.recv().unwrap(), (RK_REQ, b"late".to_vec()));
        let c = counters.lock().unwrap();
        assert_eq!(c.frames_delayed, 1);
        assert!(c.delay_cycles >= 1_000);
    }

    #[test]
    fn directions_are_independent_positions() {
        // A fault targeted at direction 1 leaves direction 0 untouched.
        let (mut client, mut server, _counters, _net) =
            framed_pair(NetFaultPlan::at(0, 1, 0, NetFaultKind::Drop));
        client.send(RK_REQ, b"c2s").unwrap();
        assert_eq!(server.recv().unwrap(), (RK_REQ, b"c2s".to_vec()));
        server.send(RK_REPLY, b"s2c dropped").unwrap();
        client.conn.set_read_timeout(Some(Duration::from_millis(20)));
        assert_eq!(client.recv().unwrap_err(), RpcError::Timeout);
    }
}
