//! The fuzzer's seed queue.

/// One queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// The input bytes.
    pub data: Vec<u8>,
    /// Cycles its discovery execution took (scheduling prefers fast seeds).
    pub exec_cycles: u64,
    /// Campaign clock when it was added.
    pub found_at: u64,
    /// Whether the deterministic stage has run on it.
    pub det_done: bool,
    /// True when the discovery execution found a brand-new edge (not just a
    /// new hitcount bucket on a known edge). Scheduling ignores this; the
    /// sharded merge sorts favored entries first within a sync epoch so the
    /// canonical queue order is coverage-meaningful.
    pub favored: bool,
}

/// The corpus of coverage-increasing inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Queue {
    entries: Vec<QueueEntry>,
    cursor: usize,
}

impl Queue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append an entry.
    pub fn push(&mut self, e: QueueEntry) {
        self.entries.push(e);
    }

    /// Entry by index.
    pub fn get(&self, i: usize) -> Option<&QueueEntry> {
        self.entries.get(i)
    }

    /// Mutable entry by index.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut QueueEntry> {
        self.entries.get_mut(i)
    }

    /// Round-robin scheduling: next entry index to fuzz.
    pub fn next_index(&mut self) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let i = self.cursor % self.entries.len();
        self.cursor = self.cursor.wrapping_add(1);
        Some(i)
    }

    /// The round-robin scheduling position (campaign checkpointing).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restore a scheduling position saved via [`Queue::cursor`].
    pub fn set_cursor(&mut self, cursor: usize) {
        self.cursor = cursor;
    }

    /// All input bytes (correctness evaluation consumes the whole queue).
    pub fn inputs(&self) -> Vec<Vec<u8>> {
        self.entries.iter().map(|e| e.data.clone()).collect()
    }

    /// Iterate entries.
    pub fn iter(&self) -> std::slice::Iter<'_, QueueEntry> {
        self.entries.iter()
    }

    /// Entries appended at or after index `from` (a shard barrier collects
    /// each lane's discoveries this way).
    pub fn entries_from(&self, from: usize) -> &[QueueEntry] {
        &self.entries[from.min(self.entries.len())..]
    }

    /// Replace the whole entry list, preserving the scheduling cursor —
    /// shard barriers swap in the canonically merged global queue without
    /// disturbing each lane's round-robin position (the cursor is a raw
    /// counter, reduced modulo the length at pick time).
    pub fn replace_entries(&mut self, entries: Vec<QueueEntry>) {
        self.entries = entries;
    }
}

impl<'a> IntoIterator for &'a Queue {
    type Item = &'a QueueEntry;
    type IntoIter = std::slice::Iter<'a, QueueEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(data: &[u8]) -> QueueEntry {
        QueueEntry {
            data: data.to_vec(),
            exec_cycles: 10,
            found_at: 0,
            det_done: false,
            favored: false,
        }
    }

    #[test]
    fn replace_entries_keeps_cursor() {
        let mut q = Queue::new();
        q.push(entry(b"a"));
        q.push(entry(b"b"));
        assert_eq!(q.next_index(), Some(0));
        q.replace_entries(vec![entry(b"a"), entry(b"b"), entry(b"c")]);
        assert_eq!(q.cursor(), 1, "cursor survives the swap");
        assert_eq!(q.next_index(), Some(1));
        assert_eq!(q.entries_from(2).len(), 1);
        assert_eq!(q.entries_from(99).len(), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut q = Queue::new();
        assert_eq!(q.next_index(), None);
        q.push(entry(b"a"));
        q.push(entry(b"b"));
        assert_eq!(q.next_index(), Some(0));
        assert_eq!(q.next_index(), Some(1));
        assert_eq!(q.next_index(), Some(0));
    }

    #[test]
    fn inputs_snapshot() {
        let mut q = Queue::new();
        q.push(entry(b"x"));
        q.push(entry(b"yz"));
        assert_eq!(q.inputs(), vec![b"x".to_vec(), b"yz".to_vec()]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
