//! Input mutation: AFL's deterministic passes and stacked havoc.

use rand::rngs::SmallRng;
use rand::Rng;

/// Interesting values AFL plants (8/16/32-bit classics).
pub const INTERESTING: [i64; 17] = [
    -128, -1, 0, 1, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000, 1024, 4096, 32767,
];

/// Maximum input length the mutator will grow to.
pub const MAX_LEN: usize = 4096;

/// Deterministic-stage mutants of `input`: walking bitflips, byte flips,
/// small arithmetic, interesting-value overwrites. Capped for large inputs
/// the way AFL effectively caps via its effector map.
pub fn deterministic(input: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let n = input.len().min(64);
    for i in 0..n {
        for bit in 0..8 {
            let mut m = input.to_vec();
            m[i] ^= 1 << bit;
            out.push(m);
        }
        let mut m = input.to_vec();
        m[i] ^= 0xFF;
        out.push(m);
        for delta in [1i16, -1, 7, -7, 35, -35] {
            let mut m = input.to_vec();
            m[i] = (i16::from(m[i]) + delta) as u8;
            out.push(m);
        }
        for v in INTERESTING {
            let mut m = input.to_vec();
            m[i] = v as u8;
            out.push(m);
        }
    }
    out
}

/// One stacked-havoc mutant (1–8 random operations), possibly splicing
/// with `other`.
pub fn havoc(input: &[u8], other: Option<&[u8]>, rng: &mut SmallRng) -> Vec<u8> {
    let mut data = input.to_vec();
    if data.is_empty() {
        data.push(0);
    }
    let ops = 1 + rng.gen_range(0..8);
    for _ in 0..ops {
        if data.is_empty() {
            // A delete op may have emptied the buffer mid-stack.
            data.push(0);
        }
        let choice = rng.gen_range(0..10);
        match choice {
            0 => {
                // flip a random bit
                let i = rng.gen_range(0..data.len());
                data[i] ^= 1 << rng.gen_range(0..8);
            }
            1 => {
                // random byte
                let i = rng.gen_range(0..data.len());
                data[i] = rng.gen();
            }
            2 => {
                // arithmetic on a byte
                let i = rng.gen_range(0..data.len());
                let d = rng.gen_range(1..=35i16);
                let d = if rng.gen() { d } else { -d };
                data[i] = (i16::from(data[i]) + d) as u8;
            }
            3 => {
                // interesting value, 1/2/4-byte wide
                let v = INTERESTING[rng.gen_range(0..INTERESTING.len())];
                let width = [1usize, 2, 4][rng.gen_range(0..3)];
                if data.len() >= width {
                    let i = rng.gen_range(0..=data.len() - width);
                    let bytes = v.to_le_bytes();
                    data[i..i + width].copy_from_slice(&bytes[..width]);
                }
            }
            4 => {
                // delete a range
                if data.len() > 1 {
                    let start = rng.gen_range(0..data.len());
                    let len = rng.gen_range(1..=(data.len() - start).min(16));
                    data.drain(start..start + len);
                }
            }
            5 => {
                // duplicate/insert a range
                if data.len() < MAX_LEN && !data.is_empty() {
                    let start = rng.gen_range(0..data.len());
                    let len = rng.gen_range(1..=(data.len() - start).min(16));
                    let chunk: Vec<u8> = data[start..start + len].to_vec();
                    let at = rng.gen_range(0..=data.len());
                    for (k, b) in chunk.into_iter().enumerate() {
                        data.insert(at + k, b);
                    }
                }
            }
            6 => {
                // insert random bytes
                if data.len() < MAX_LEN {
                    let at = rng.gen_range(0..=data.len());
                    let len = rng.gen_range(1..=8);
                    for _ in 0..len {
                        data.insert(at, rng.gen());
                    }
                }
            }
            7 => {
                // overwrite a range with one byte
                let i = rng.gen_range(0..data.len());
                let len = rng.gen_range(1..=(data.len() - i).min(8));
                let b = rng.gen();
                for x in &mut data[i..i + len] {
                    *x = b;
                }
            }
            8 => {
                // splice with another queue entry
                if let Some(o) = other {
                    if !o.is_empty() {
                        let cut_a = rng.gen_range(0..=data.len());
                        let cut_b = rng.gen_range(0..o.len());
                        data.truncate(cut_a);
                        data.extend_from_slice(&o[cut_b..]);
                    }
                }
            }
            _ => {
                // swap two bytes
                if data.len() >= 2 {
                    let i = rng.gen_range(0..data.len());
                    let j = rng.gen_range(0..data.len());
                    data.swap(i, j);
                }
            }
        }
    }
    data.truncate(MAX_LEN);
    if data.is_empty() {
        data.push(0);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_stage_covers_bitflips() {
        let muts = deterministic(&[0x00, 0xFF]);
        // every single-bit flip of byte 0 present
        for bit in 0..8u8 {
            assert!(muts.iter().any(|m| m[0] == 1 << bit && m[1] == 0xFF));
        }
        // the stage explores 0xFF byte-flips too
        assert!(muts.iter().any(|m| m == &[0xFF, 0xFF]));
    }

    #[test]
    fn havoc_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let x = havoc(b"hello world", Some(b"splice me"), &mut a);
        let y = havoc(b"hello world", Some(b"splice me"), &mut b);
        assert_eq!(x, y);
    }

    #[test]
    fn havoc_never_produces_empty_or_oversized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let base = vec![7u8; 100];
        for _ in 0..500 {
            let m = havoc(&base, Some(&[1, 2, 3]), &mut rng);
            assert!(!m.is_empty());
            assert!(m.len() <= MAX_LEN);
        }
    }

    #[test]
    fn havoc_explores_varied_lengths() {
        let mut rng = SmallRng::seed_from_u64(3);
        let base = vec![0u8; 32];
        let lens: std::collections::HashSet<usize> = (0..200)
            .map(|_| havoc(&base, None, &mut rng).len())
            .collect();
        assert!(lens.len() > 5, "length diversity expected, got {lens:?}");
    }
}
