//! Property-based tests for the checkpoint wire format and the
//! kill-and-resume determinism guarantee.

use proptest::prelude::*;

use closurex::checkpoint::ExecutorState;
use closurex::executor::{Executor, ExecutorFactory};
use closurex::harness::{ClosureXConfig, ClosureXExecutor};
use closurex::resilience::{DegradationLevel, HarnessError};
use vmos::cov::{VirginMap, MAP_SIZE};
use vmos::{Crash, CrashKind, DiskFaultKind, DiskFaultPlan, OrchFaultKind, OrchFaultPlan};

use crate::builder::Campaign;
use crate::campaign::{CampaignConfig, Stage};
use crate::checkpoint::{
    load_snapshot, seal_snapshot, CampaignOutcome, CheckpointConfig, DeltaRecord, Scalars,
    SnapshotState,
};
use crate::queue::QueueEntry;
use crate::stats::{CampaignResult, CrashRecord};
use crate::supervise::SupervisorConfig;

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        any::<u16>().prop_map(|i| Stage::Seeds(usize::from(i))),
        Just(Stage::Pick),
        (any::<u16>(), any::<u16>()).prop_map(|(e, m)| Stage::Det {
            entry: usize::from(e),
            mutant: usize::from(m),
        }),
        (any::<u16>(), 0u32..64).prop_map(|(e, i)| Stage::Havoc {
            entry: usize::from(e),
            iter: i,
        }),
        Just(Stage::Done),
    ]
}

fn arb_rng_state() -> impl Strategy<Value = [u64; 4]> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| [a, b, c | 1, d]) // avoid the all-zero state
}

fn arb_scalars() -> impl Strategy<Value = Scalars> {
    (
        (arb_stage(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        (arb_rng_state(), arb_rng_state(), any::<u32>()),
    )
        .prop_map(|(a, b, c, d)| Scalars {
            stage: a.0,
            clock: u64::from(a.1),
            execs: u64::from(a.2),
            hangs: u64::from(a.3),
            mgmt_cycles: u64::from(b.0),
            exec_cycles: u64::from(b.1),
            retries: u64::from(b.2),
            dropped_inputs: u64::from(b.3),
            harness_faults: u64::from(c.0),
            consecutive_hangs: u64::from(c.1),
            watchdog_trips: u64::from(c.2),
            rng: d.0,
            backoff_rng: d.1,
            cursor: u64::from(d.2),
        })
}

fn arb_entry() -> impl Strategy<Value = QueueEntry> {
    (
        prop::collection::vec(any::<u8>(), 0..40),
        any::<u32>(),
        any::<u32>(),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|(data, cyc, at, (det, fav))| QueueEntry {
            data,
            exec_cycles: u64::from(cyc),
            found_at: u64::from(at),
            det_done: det,
            favored: fav,
        })
}

fn arb_crash_record() -> impl Strategy<Value = CrashRecord> {
    (
        (0u8..15, "[a-z_]{1,12}", any::<u16>(), "[a-z0-9 ]{0,20}"),
        (
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..24),
            1u64..1000,
            any::<bool>(),
        ),
    )
        .prop_map(|((tag, function, block, detail), (at, input, hits, flaky))| CrashRecord {
            crash: Crash {
                kind: CrashKind::from_wire_tag(tag).expect("tag in range"),
                function,
                block: u32::from(block),
                detail,
            },
            found_at_cycles: u64::from(at),
            input,
            hits,
            flaky,
        })
}

fn arb_virgin() -> impl Strategy<Value = VirginMap> {
    prop::collection::vec((any::<u16>(), 1u8..=255), 0..50).prop_map(|bytes| {
        let mut v = VirginMap::new();
        for (i, b) in bytes {
            v.set_byte(usize::from(i), b);
        }
        v
    })
}

fn arb_exec_state() -> impl Strategy<Value = Option<ExecutorState>> {
    prop_oneof![
        Just(None),
        (
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
            (any::<u32>(), any::<bool>(), any::<bool>()),
            (
                prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..5),
                any::<u32>(),
                any::<u32>(),
            ),
        )
            .prop_map(|(c, (iters, fork, alive), (quarantine, dropped, rolls))| {
                Some(ExecutorState {
                    respawns: u64::from(c.0),
                    divergences: u64::from(c.1),
                    integrity_checks: u64::from(c.2),
                    harness_faults: u64::from(c.3),
                    iters: u64::from(iters),
                    degradation: if fork {
                        DegradationLevel::ForkPerExec
                    } else {
                        DegradationLevel::Persistent
                    },
                    proc_alive: alive,
                    quarantine,
                    quarantine_dropped: u64::from(dropped),
                    fault_rolls: u64::from(rolls),
                    fault_injected: [u64::from(rolls) % 7, 0, 1, 2, 3],
                    // CoW lineage derived from the same draws: empty and
                    // non-empty page sets both round-trip.
                    proc_cow_faults: u64::from(rolls) % 3,
                    proc_private_pages: (0..u64::from(dropped) % 4).collect(),
                })
            }),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = SnapshotState> {
    (
        arb_scalars(),
        prop::collection::vec(arb_entry(), 0..12),
        arb_virgin(),
        (prop::collection::vec(arb_crash_record(), 0..6), arb_exec_state()),
    )
        .prop_map(|(scalars, entries, virgin, (crashes, exec_state))| SnapshotState {
            scalars,
            entries,
            virgin,
            crashes,
            exec_state,
        })
}

fn arb_delta() -> impl Strategy<Value = DeltaRecord> {
    (
        (
            arb_scalars(),
            prop::collection::vec(arb_entry(), 0..6),
            prop::collection::vec(any::<u16>(), 0..6),
        ),
        (
            prop::collection::vec(arb_crash_record(), 0..3),
            prop::collection::vec((any::<u16>(), any::<u32>()), 0..6),
            prop::collection::vec((any::<u16>(), any::<u8>()), 0..20),
            arb_exec_state(),
        ),
    )
        .prop_map(
            |((scalars, new_entries, det_done), (new_crashes, hits, virgin, exec_state))| {
                DeltaRecord {
                    scalars,
                    new_entries,
                    det_done: det_done.into_iter().map(u64::from).collect(),
                    new_crashes,
                    crash_hits: hits
                        .into_iter()
                        .map(|(i, h)| (u64::from(i), u64::from(h)))
                        .collect(),
                    virgin: virgin
                        .into_iter()
                        .map(|(i, v)| (u32::from(i) % MAP_SIZE as u32, v))
                        .collect(),
                    exec_state,
                }
            },
        )
}

const RESUME_TARGET: &str = r#"
    fn main() {
        var f = fopen("/fuzz/input", 0);
        if (f == 0) { exit(1); }
        var buf[16];
        var n = fread(buf, 1, 16, f);
        fclose(f);
        if (n > 2) {
            if (load8(buf) == 'C') {
                if (load8(buf + 1) == 'X') {
                    return load64(0);
                }
                return 2;
            }
            return 1;
        }
        return 0;
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The snapshot encoding is canonical: decode(encode(s)) re-encodes to
    /// the identical bytes, for arbitrary campaign states.
    #[test]
    fn snapshot_state_roundtrips(state in arb_snapshot()) {
        let bytes = state.encode();
        let back = SnapshotState::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(bytes, back.encode());
    }

    /// Same for journal delta records.
    #[test]
    fn delta_record_roundtrips(rec in arb_delta()) {
        let bytes = rec.encode();
        let back = DeltaRecord::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(bytes, back.encode());
    }

    /// Decoding arbitrary garbage never panics (it is fed file contents an
    /// adversary — or a power cut — controls).
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = SnapshotState::decode(&bytes);
        let _ = DeltaRecord::decode(&bytes);
    }

    /// A sealed snapshot file with any single bit flipped is rejected by
    /// validation — never accepted, never a panic.
    #[test]
    fn bit_flipped_snapshot_rejected(
        state in arb_snapshot(),
        flip_bit in any::<u32>(),
    ) {
        let mut sealed = seal_snapshot(&state.encode(), 0);
        let nbits = sealed.len() * 8;
        let bit = flip_bit as usize % nbits;
        sealed[bit / 8] ^= 1 << (bit % 8);

        let dir = std::env::temp_dir().join(format!(
            "closurex-prop-flip-{}-{}",
            std::process::id(),
            bit
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-000000000000.bin");
        std::fs::write(&path, &sealed).unwrap();
        let res = load_snapshot(&path);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(res.is_err(), "flipped bit {bit} went undetected");
    }

    /// A truncated snapshot file is rejected — never accepted, never a
    /// panic.
    #[test]
    fn truncated_snapshot_rejected(state in arb_snapshot(), cut in any::<u32>()) {
        let sealed = seal_snapshot(&state.encode(), 0);
        let keep = cut as usize % sealed.len(); // strictly shorter
        let dir = std::env::temp_dir().join(format!(
            "closurex-prop-trunc-{}-{}",
            std::process::id(),
            keep
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-000000000000.bin");
        std::fs::write(&path, &sealed[..keep]).unwrap();
        let res = load_snapshot(&path);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(res.is_err(), "truncation to {keep} bytes went undetected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline guarantee, propertized: killing a campaign at an
    /// arbitrary execution boundary and resuming yields the exact result of
    /// the uninterrupted campaign.
    #[test]
    fn kill_anywhere_resume_exact(kill_at in 1u64..140, seed in 1u64..5) {
        let module = minic::compile("t", RESUME_TARGET).expect("compiles");
        let cfg = CampaignConfig {
            budget_cycles: 2_500_000,
            seed,
            ..CampaignConfig::default()
        };
        let seeds = vec![b"go".to_vec()];
        let mk = || ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("boots");

        let reference = Campaign::new(&seeds, &cfg)
            .executor(&mut mk())
            .run()
            .expect("plain run")
            .finished()
            .expect("no kill");

        let dir = std::env::temp_dir().join(format!(
            "closurex-prop-kill-{}-{}-{}",
            std::process::id(),
            kill_at,
            seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 30;
        ck.kill_after_execs = Some(kill_at);
        let first = Campaign::new(&seeds, &cfg)
            .executor(&mut mk())
            .checkpoint(ck.clone())
            .run()
            .expect("checkpointed run");
        ck.kill_after_execs = None;
        let out = match first {
            crate::checkpoint::CampaignOutcome::Killed { .. } => {
                Campaign::new(&seeds, &cfg)
                    .executor(&mut mk())
                    .checkpoint(ck.clone())
                    .resume()
                    .expect("resume")
                    .0
            }
            finished => finished, // the whole campaign fit under kill_at
        };
        let resumed = out.finished().expect("no kill on the second leg");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&resumed.sans_resume()).unwrap()
        );
    }
}

/// Builds one ClosureX executor per lane over a shared module.
struct CxFactory<'m> {
    module: &'m fir::Module,
}

impl ExecutorFactory for CxFactory<'_> {
    fn build(&self) -> Result<Box<dyn Executor + Send>, HarnessError> {
        ClosureXExecutor::new(self.module, ClosureXConfig::default())
            .map(|ex| Box::new(ex) as Box<dyn Executor + Send>)
            .map_err(|e| HarnessError::BootFailed(e.to_string()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The sharded merge is invariant under shard (worker) scheduling:
    /// any worker count over the same lane decomposition yields the
    /// bit-identical campaign result, because each lane's schedule is a
    /// pure function of `(config, seeds, lane)` and every barrier merge is
    /// either commutative (virgin-map OR) or applied in canonical lane
    /// order — never in completion order.
    #[test]
    fn epoch_merge_invariant_under_worker_count(seed in 1u64..6, workers in 2usize..5) {
        let module = minic::compile("t", RESUME_TARGET).expect("compiles");
        let factory = CxFactory { module: &module };
        let cfg = CampaignConfig {
            budget_cycles: 2_000_000,
            seed,
            ..CampaignConfig::default()
        };
        let seeds = vec![b"go".to_vec(), b"CX!".to_vec()];
        let run = |shards: usize| -> CampaignResult {
            Campaign::new(&seeds, &cfg)
                .factory(&factory)
                .shards(shards)
                .run()
                .expect("sharded run")
                .finished()
                .expect("no kill configured")
        };
        let serial = run(1);
        let parallel = run(workers);
        prop_assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Supervised recovery is exact: injecting a lane fault — a worker
    /// panic or a lane hang, at *any* `(lane, epoch)` position, failing up
    /// to `fires` consecutive attempts — yields a campaign result
    /// bit-identical to the unfaulted run outside the supervision report,
    /// and the report shows the faults were actually contained.
    #[test]
    fn supervised_recovery_is_exact(
        seed in 1u64..5,
        lane in 0u64..3,
        epoch in 0u64..3,
        panic_kind in any::<bool>(),
        fires in 1u32..=2,
    ) {
        let module = minic::compile("t", RESUME_TARGET).expect("compiles");
        let factory = CxFactory { module: &module };
        let cfg = CampaignConfig {
            budget_cycles: 2_000_000,
            seed,
            ..CampaignConfig::default()
        };
        let seeds = vec![b"go".to_vec(), b"CX!".to_vec()];
        let run = |sup: Option<SupervisorConfig>| -> CampaignResult {
            let mut c = Campaign::new(&seeds, &cfg)
                .factory(&factory)
                .lanes(3)
                .sync_epochs(3)
                .shards(2);
            if let Some(s) = sup {
                c = c.supervision(s);
            }
            c.run()
                .expect("sharded run")
                .finished()
                .expect("no kill configured")
        };
        let clean = run(None);

        let kind = if panic_kind {
            OrchFaultKind::WorkerPanic
        } else {
            OrchFaultKind::LaneHang
        };
        let mut faults = OrchFaultPlan::at(lane, epoch, kind);
        faults.targeted[0].fires = fires; // fires <= max_lane_retries: recovery converges
        let faulted = run(Some(SupervisorConfig {
            faults,
            ..SupervisorConfig::default()
        }));

        prop_assert!(
            faulted.resilience.supervision.faults_contained() >= u64::from(fires),
            "injected faults were contained and counted"
        );
        prop_assert!(faulted.resilience.supervision.recovered >= 1);
        prop_assert_eq!(
            serde_json::to_string(&clean.sans_supervision()).unwrap(),
            serde_json::to_string(&faulted.sans_supervision()).unwrap()
        );
    }
}

/// Runs one campaign leg for the storage-fault properties: single-driver
/// or in-process sharded, optionally checkpointed, optionally fault-armed.
fn storage_leg(
    module: &fir::Module,
    cfg: &CampaignConfig,
    seeds: &[Vec<u8>],
    sharded: bool,
    plan: Option<DiskFaultPlan>,
    ck: Option<CheckpointConfig>,
    resume: bool,
) -> Result<CampaignOutcome, crate::builder::CampaignError> {
    let factory = CxFactory { module };
    let mut ex = None;
    let mut c = Campaign::new(seeds, cfg);
    if sharded {
        c = c.factory(&factory).shards(2).lanes(2).sync_epochs(2);
    } else {
        let slot = ex.insert(
            ClosureXExecutor::new(module, ClosureXConfig::default()).expect("boots"),
        );
        c = c.executor(slot);
    }
    if let Some(p) = plan {
        c = c.storage_faults(p);
    }
    if let Some(k) = ck {
        c = c.checkpoint(k);
    }
    if resume {
        c.resume().map(|(out, _)| out)
    } else {
        c.run()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// No disk-fault plan can make a campaign panic, surface a raw I/O
    /// error, or lose data. Every injected fault is retried to success,
    /// degraded with a typed report, or kills the machine at an I/O
    /// boundary from which a clean restart recovers — and in all cases the
    /// final result is bit-identical (outside the storage report) to the
    /// unfaulted run.
    #[test]
    fn storage_faults_never_lose_data(
        seed in 1u64..4,
        stream in 0u64..4,
        op in 0u64..10,
        kind_ix in 0usize..6,
        fires in 1u32..=5,
        sharded in any::<bool>(),
    ) {
        let module = minic::compile("t", RESUME_TARGET).expect("compiles");
        let cfg = CampaignConfig {
            budget_cycles: 2_000_000,
            seed,
            ..CampaignConfig::default()
        };
        let seeds = vec![b"go".to_vec(), b"CX!".to_vec()];
        let reference = storage_leg(&module, &cfg, &seeds, sharded, None, None, false)
            .expect("plain run")
            .finished()
            .expect("no kill configured");

        // `fires` beyond the default retry budget (3) models permanently
        // broken storage: the transient kinds must then take the typed
        // degradation exit instead of erroring out.
        let mut plan = DiskFaultPlan::at(stream, op, DiskFaultKind::ALL[kind_ix]);
        plan.targeted[0].fires = fires;

        let dir = std::env::temp_dir().join(format!(
            "closurex-prop-disk-{}-{}-{}-{}-{}-{}",
            std::process::id(),
            seed,
            stream,
            op,
            kind_ix,
            u8::from(sharded),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 30;

        let first =
            storage_leg(&module, &cfg, &seeds, sharded, Some(plan), Some(ck.clone()), false)
                .expect("a disk fault never surfaces as a raw error");
        let out = match first {
            CampaignOutcome::Killed { .. } => {
                // The fault killed the machine at an I/O boundary. The
                // ALICE model: recovery runs fault-free over whatever the
                // crash left on disk.
                match storage_leg(&module, &cfg, &seeds, sharded, None, Some(ck.clone()), true) {
                    Ok(out) => out,
                    // Crash before the first durable commit: nothing to
                    // resume from, and a fresh start is the correct (and
                    // only) recovery.
                    Err(_) => {
                        storage_leg(&module, &cfg, &seeds, sharded, None, Some(ck.clone()), false)
                            .expect("fresh restart over crash debris")
                    }
                }
            }
            finished => finished,
        };
        let faulted = out.finished().expect("recovery leg finishes");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(
            serde_json::to_string(&reference.sans_storage()).unwrap(),
            serde_json::to_string(&faulted.sans_storage()).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scrub-and-repair round-trips arbitrary corruption of the newest
    /// snapshot generation: whether it is bit-flipped, truncated, or
    /// deleted outright, resume falls back to an older good generation,
    /// replays the journal chain across the gap, and produces the exact
    /// uninterrupted result — rewriting the rotted generation
    /// byte-identically when its carcass is still on disk to repair.
    #[test]
    fn snapshot_corruption_round_trips(
        kill_at in 35u64..140,
        seed in 1u64..5,
        mode in 0u8..3,
        noise in any::<u64>(),
    ) {
        let module = minic::compile("t", RESUME_TARGET).expect("compiles");
        let cfg = CampaignConfig {
            budget_cycles: 2_500_000,
            seed,
            ..CampaignConfig::default()
        };
        let seeds = vec![b"go".to_vec()];
        let mk = || ClosureXExecutor::new(&module, ClosureXConfig::default()).expect("boots");
        let reference = Campaign::new(&seeds, &cfg)
            .executor(&mut mk())
            .run()
            .expect("plain run")
            .finished()
            .expect("no kill configured");

        let dir = std::env::temp_dir().join(format!(
            "closurex-prop-rot-{}-{}-{}-{}",
            std::process::id(),
            kill_at,
            seed,
            mode
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 30;
        ck.kill_after_execs = Some(kill_at);
        let first = Campaign::new(&seeds, &cfg)
            .executor(&mut mk())
            .checkpoint(ck.clone())
            .run()
            .expect("checkpointed run");
        ck.kill_after_execs = None;
        if first.finished().is_some() {
            // The whole campaign fit under kill_at; nothing was left to
            // corrupt-and-resume. (Does not happen with this target and
            // budget, but the property must not depend on that.)
            let _ = std::fs::remove_dir_all(&dir);
            return Ok(());
        }

        // Corrupt the newest sealed generation.
        let mut snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
            })
            .collect();
        snaps.sort();
        prop_assert!(snaps.len() >= 2, "an older good generation must exist");
        let newest = snaps.pop().unwrap();
        match mode {
            0 => {
                let mut bytes = std::fs::read(&newest).unwrap();
                let bit = noise as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                std::fs::write(&newest, &bytes).unwrap();
            }
            1 => {
                let bytes = std::fs::read(&newest).unwrap();
                let keep = noise as usize % bytes.len(); // strictly shorter
                std::fs::write(&newest, &bytes[..keep]).unwrap();
            }
            _ => std::fs::remove_file(&newest).unwrap(),
        }

        let (out, info) = Campaign::new(&seeds, &cfg)
            .executor(&mut mk())
            .checkpoint(ck.clone())
            .resume()
            .expect("resume");
        let resumed = out.finished().expect("no kill on the second leg");
        let _ = std::fs::remove_dir_all(&dir);
        if mode < 2 {
            // The rotted bytes were still on disk: the scrub must have
            // seen them and replay must have rewritten the generation.
            prop_assert_eq!(info.corrupt_snapshots_skipped, 1);
            prop_assert_eq!(info.snapshots_repaired, 1);
            prop_assert_eq!(resumed.resilience.storage.corrupt_snapshots, 1);
            prop_assert_eq!(resumed.resilience.storage.snapshots_repaired, 1);
        }
        prop_assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&resumed.sans_storage().sans_resume()).unwrap()
        );
    }
}

// ---------------------------------------------------------------------------
// RPC plane: codec robustness and fault-plan-proof sessions.
// ---------------------------------------------------------------------------

use crate::rpc::{
    decode_reply_body, decode_request, encode_request, MemNet, RemoteOptions, RemoteService,
    RpcOp, RpcServer, ServerOptions,
};
use crate::service::{CampaignSpec, Service, ServiceConfig, SpecResolver};
use std::sync::Arc;
use vmos::{NetFaultKind, NetFaultPlan};

fn arb_tenant_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..12)
        .prop_map(|v| v.into_iter().map(|b| char::from(b'a' + b)).collect())
}

fn arb_campaign_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        (
            arb_tenant_name(),
            prop::collection::vec(any::<u8>(), 0..24),
            prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..4),
            any::<u64>(),
        ),
        ((1usize..9, 1usize..5), (1u64..9, any::<bool>()), 1usize..4),
    )
        .prop_map(|((name, factory_spec, seeds, seed), ((lanes, shards), (epochs, opt), keep))| {
            let mut s = CampaignSpec::new(
                name,
                factory_spec,
                seeds,
                CampaignConfig {
                    seed,
                    ..CampaignConfig::default()
                },
            );
            s.lanes = lanes;
            s.shards = shards;
            s.sync_epochs = epochs;
            s.decode_opt = opt;
            s.keep_snapshots = keep;
            s
        })
}

fn arb_rpc_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![
        arb_campaign_spec().prop_map(RpcOp::Submit),
        arb_tenant_name().prop_map(RpcOp::Status),
        arb_tenant_name().prop_map(RpcOp::Health),
        arb_tenant_name().prop_map(RpcOp::Pause),
        arb_tenant_name().prop_map(RpcOp::Resume),
        arb_tenant_name().prop_map(RpcOp::Kill),
        arb_tenant_name().prop_map(RpcOp::Await),
    ]
}

const NET_KINDS: [NetFaultKind; 6] = [
    NetFaultKind::Drop,
    NetFaultKind::Delay,
    NetFaultKind::Duplicate,
    NetFaultKind::Corrupt,
    NetFaultKind::Disconnect,
    NetFaultKind::PartialFrame,
];

fn arb_net_plan() -> impl Strategy<Value = NetFaultPlan> {
    prop_oneof![
        Just(NetFaultPlan::none()),
        (any::<u64>(), 0u32..30)
            .prop_map(|(seed, pct)| NetFaultPlan::uniform_lossy(seed, f64::from(pct) / 100.0)),
        (0u64..3, 0u8..2, 0u64..5, 0usize..6)
            .prop_map(|(conn, dir, frame, k)| NetFaultPlan::at(conn, dir, frame, NET_KINDS[k])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Adversarial bytes into the RPC decoders: never a panic, never an
    /// unbounded allocation — every length is validated against the
    /// remaining payload before anything is reserved.
    #[test]
    fn rpc_decoders_never_panic_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_reply_body(&bytes);
    }

    /// The request codec is canonical over arbitrary operations (arbitrary
    /// specs included), and no truncation of a valid request decodes.
    #[test]
    fn rpc_request_codec_roundtrips_and_rejects_cuts(
        req_id in any::<u64>(),
        op in arb_rpc_op(),
    ) {
        let bytes = encode_request(req_id, &op);
        let (rid, back) = decode_request(&bytes).expect("canonical encoding decodes");
        prop_assert_eq!(rid, req_id);
        prop_assert_eq!(&back, &op);
        prop_assert_eq!(encode_request(rid, &back), bytes.clone(), "re-encode is bit-identical");
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_request(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte request must not decode",
                bytes.len()
            );
        }
    }
}

/// Resolver for RPC session sweeps: the tests below never run a grant
/// (they only probe unknown tenants), so admission just needs *a*
/// factory value to exist.
struct NullResolver;

impl SpecResolver for NullResolver {
    fn resolve(
        &self,
        _: &[u8],
    ) -> Result<Box<dyn ExecutorFactory + Send + Sync>, String> {
        Err("the session sweep never admits".to_string())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An RPC session under an arbitrary fault plan never panics and
    /// never diverges: a status probe for a tenant that does not exist
    /// must come back `None` — served over the wire, from the reply
    /// journal, or degraded-local, but never as a wrong answer — and the
    /// session survives an abrupt server replacement mid-stream.
    #[test]
    fn rpc_session_survives_arbitrary_fault_plans(
        plan in arb_net_plan(),
        probes in 1usize..4,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "cx-prop-rpc-{}-{probes}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            Service::new(ServiceConfig::new(&dir), Arc::new(NullResolver)).expect("service"),
        );
        let net = MemNet::new();
        let server = RpcServer::start(
            Arc::clone(&service),
            &net,
            ServerOptions { fault_plan: plan.clone(), ..ServerOptions::default() },
        );
        let opts = RemoteOptions {
            fault_plan: plan,
            read_timeout: std::time::Duration::from_millis(20),
            await_timeout: std::time::Duration::from_millis(200),
            max_attempts: 6,
            fallback: Some(Arc::clone(&service)),
            ..RemoteOptions::default()
        };
        let client = RemoteService::connect(&net, opts).expect("fallback makes connect total");
        for _ in 0..probes {
            let r = client.handle("nobody").expect("fallback makes calls total");
            prop_assert!(r.is_none(), "an unknown tenant must never resolve");
        }
        // Abrupt server replacement: the client either resumes its
        // session against the successor or is already (correctly)
        // serving degraded — both answer identically.
        server.kill();
        let server2 =
            RpcServer::start(Arc::clone(&service), &net, ServerOptions::default());
        for _ in 0..probes {
            let r = client.handle("nobody").expect("fallback makes calls total");
            prop_assert!(r.is_none(), "divergence after server churn");
        }
        server2.stop();
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
