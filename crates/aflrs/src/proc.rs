//! Lane-per-process isolation: supervised out-of-process worker lanes.
//!
//! [`crate::shard`] runs every lane in the coordinator's address space — a
//! lane that aborts, leaks, or wedges takes the whole campaign with it. This
//! module moves each lane into its own **supervised child process** behind
//! the same `Campaign` builder (`.isolation(Isolation::Process)`):
//!
//! * The supervisor self-execs the current binary with [`WORKER_ENV`] set;
//!   the child's entrypoint (a [`worker_main_hook`] call at the top of
//!   `main`) never returns and serves the lane over stdin/stdout pipes.
//! * Every message travels as a `vmos::wire` frame — length-prefixed,
//!   checksum-sealed, bounded before allocation — so a corrupt or truncated
//!   byte stream surfaces as a typed [`LaneFault::FrameCorrupt`], never a
//!   panic or a desync.
//! * Lane state transfer reuses the checkpoint codecs: `RunEpoch` carries
//!   the lane's barrier snapshot down, `BarrierSnapshot` carries the
//!   post-epoch state (executor export included) back up. The merge, the
//!   shard checkpoint files, and kill/resume are shared with the in-process
//!   engine — which is what makes `Isolation::Process` **bit-identical**
//!   (modulo the supervision report) to `Isolation::InProcess`.
//! * A worker that dies — SIGKILL, abort, OOM-style exit, stall past the
//!   wall-clock read deadline, or garbage on the pipe — is just another
//!   [`LaneFault`]: the supervisor maps the exit status to a typed fault,
//!   respawns the lane from the factory plus its barrier snapshot, and
//!   retires it past the retry budget with the unspent cycle budget folded
//!   into the surviving lanes.
//!
//! # The wire protocol
//!
//! Parent → child: `Hello` (1) once, then one `RunEpoch` (2) per epoch
//! attempt, then `Shutdown` (3). Child → parent: `Ack` (16) answering
//! `Hello`, then per epoch one of `BarrierSnapshot` (17), `FaultReport`
//! (18), or `Fatal` (19). The child exits on `Shutdown` or pipe EOF; the
//! supervisor kills and reaps the child when its handle drops, so no
//! campaign outcome — including an error path — leaks a process.
//!
//! # Determinism under supervision
//!
//! Respawn recovery mirrors the in-process executor rebuild exactly: the
//! fresh child restores the executor state exported at the epoch barrier
//! (`Hello.exec_restore`), recreates the epoch journal at the barrier's
//! exec base, and re-runs the epoch from the same stripped snapshot. The
//! wall-clock read deadline only decides *when* the supervisor acts; the
//! re-run itself is a pure function of the barrier state, so recovery
//! erases any trace of the fault from the campaign result.

use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use closurex::checkpoint::ExecutorState;
use closurex::executor::ExecutorFactory;
use closurex::resilience::ResilienceReport;
use vmos::wire::{read_frame, write_frame, FrameError, FRAME_MAGIC, MAX_FRAME_LEN};
use vmos::{DiskFaultPlan, OrchFaultPlan, ProcFaultKind, ProcFaultPlan, Reader, WireError, Writer};

use crate::builder::CampaignError;
use crate::campaign::{CampaignConfig, Driver};
use crate::checkpoint::{
    check_target, read_journal, storage_for, sweep_orphan_tmp, CampaignOutcome, CheckpointConfig,
    CheckpointError, FsyncPolicy, Journal, ResumeReport, SnapshotState,
};
use crate::shard::{
    assemble_parts, barrier_state, lane_config, list_shard_snapshots, load_shard_snapshot,
    rotate_shards, run_lane_epoch, shard_journal_path, stripped, write_shard_snapshot_states,
    Global, KillSwitch, Lane, LaneAttempt, ShardPlan,
};
use crate::storage::{OpOutcome, Storage, StorageCounters};
use crate::supervise::{self, LaneFault, Supervisor, SupervisorConfig};

/// Environment variable marking a process as a spawned worker lane.
/// [`worker_main_hook`] checks it and, when set, serves the lane protocol
/// over stdin/stdout instead of returning to `main`.
pub const WORKER_ENV: &str = "AFLRS_PROC_WORKER";

// Frame kinds, parent → child.
const K_HELLO: u8 = 1;
const K_RUN_EPOCH: u8 = 2;
const K_SHUTDOWN: u8 = 3;
// Frame kinds, child → parent.
const K_ACK: u8 = 16;
const K_BARRIER: u8 = 17;
const K_FAULT: u8 = 18;
const K_FATAL: u8 = 19;

// ---------------------------------------------------------------------------
// Message codecs. Every payload is built from the same append-only wire
// primitives the checkpoint files use; decode never panics and bounds every
// count before allocating.
// ---------------------------------------------------------------------------

fn fsync_tag(f: FsyncPolicy) -> u8 {
    match f {
        FsyncPolicy::Never => 0,
        FsyncPolicy::OnSnapshot => 1,
        FsyncPolicy::EveryRecord => 2,
    }
}

fn fsync_from_tag(tag: u8) -> Result<FsyncPolicy, WireError> {
    Ok(match tag {
        0 => FsyncPolicy::Never,
        1 => FsyncPolicy::OnSnapshot,
        2 => FsyncPolicy::EveryRecord,
        _ => return Err(WireError::Malformed("fsync tag")),
    })
}

fn put_exec_state(w: &mut Writer, es: &Option<ExecutorState>) {
    match es {
        Some(es) => {
            w.put_bool(true);
            es.encode(w);
        }
        None => w.put_bool(false),
    }
}

fn get_exec_state(r: &mut Reader<'_>) -> Result<Option<ExecutorState>, WireError> {
    Ok(if r.get_bool()? {
        Some(ExecutorState::decode(r)?)
    } else {
        None
    })
}

/// The one-time handshake: everything a fresh worker needs to build its
/// executor pair and run epochs for one lane.
struct Hello {
    /// Engine choice inherited from the supervisor (workers are separate
    /// processes; the thread-inheritance trick of the in-process pool
    /// cannot cross the `exec` boundary).
    reference: bool,
    /// Decode-time optimizer choice, inherited the same way; `false`
    /// pins the worker onto the plain 1:1 decoded streams.
    decode_opt: bool,
    /// Whether checkpoint journaling is armed.
    track: bool,
    fsync: FsyncPolicy,
    /// Checkpoint directory (empty when `track` is off).
    dir: String,
    /// This worker's lane index.
    lane: u64,
    /// The factory recipe ([`ExecutorFactory::worker_spec`]); the worker
    /// entrypoint's parse closure turns it back into a factory.
    spec: Vec<u8>,
    /// The lane's (already budget-sliced, lane-seeded) campaign config.
    cfg: CampaignConfig,
    /// The lane's round-robin slice of the seed corpus.
    seeds: Vec<Vec<u8>>,
    /// Orchestration-layer fault plan (panic/hang/barrier injection runs
    /// inside the child, exactly where the in-process engine runs it).
    faults: OrchFaultPlan,
    hang_deadline_ticks: u64,
    /// Process-layer fault plan: the child performs its own abort / OOM /
    /// stall / garbage-frame sabotage; `Kill` is the parent's job.
    proc_faults: ProcFaultPlan,
    /// Storage fault plan: the child mediates its own journal I/O through
    /// a [`Storage`] bound to stream `1 + lane`, exactly where the
    /// in-process engine injects.
    disk_faults: DiskFaultPlan,
    /// Transient-storage-error retry budget (see `CheckpointConfig`).
    storage_retries: u32,
    /// Storage retry backoff base in simulated cycles.
    storage_backoff_cycles: u64,
    /// Executor state to restore after building (respawn recovery and
    /// checkpoint resume); `None` on a fresh first spawn.
    exec_restore: Option<ExecutorState>,
}

fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bool(h.reference);
    w.put_bool(h.decode_opt);
    w.put_bool(h.track);
    w.put_u8(fsync_tag(h.fsync));
    w.put_str(&h.dir);
    w.put_u64(h.lane);
    w.put_bytes(&h.spec);
    h.cfg.encode(&mut w);
    w.put_usize(h.seeds.len());
    for s in &h.seeds {
        w.put_bytes(s);
    }
    h.faults.encode(&mut w);
    w.put_u64(h.hang_deadline_ticks);
    h.proc_faults.encode(&mut w);
    h.disk_faults.encode(&mut w);
    w.put_u32(h.storage_retries);
    w.put_u64(h.storage_backoff_cycles);
    put_exec_state(&mut w, &h.exec_restore);
    w.into_bytes()
}

fn decode_hello(bytes: &[u8]) -> Result<Hello, WireError> {
    let mut r = Reader::new(bytes);
    let reference = r.get_bool()?;
    let decode_opt = r.get_bool()?;
    let track = r.get_bool()?;
    let fsync = fsync_from_tag(r.get_u8()?)?;
    let dir = r.get_str()?;
    let lane = r.get_u64()?;
    let spec = r.get_bytes()?;
    let cfg = CampaignConfig::decode(&mut r)?;
    let n = r.get_count()?;
    if n > r.remaining() / 8 {
        return Err(WireError::Truncated);
    }
    let mut seeds = Vec::with_capacity(n);
    for _ in 0..n {
        seeds.push(r.get_bytes()?);
    }
    let faults = OrchFaultPlan::decode(&mut r)?;
    let hang_deadline_ticks = r.get_u64()?;
    let proc_faults = ProcFaultPlan::decode(&mut r)?;
    let disk_faults = DiskFaultPlan::decode(&mut r)?;
    let storage_retries = r.get_u32()?;
    let storage_backoff_cycles = r.get_u64()?;
    let exec_restore = get_exec_state(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing hello bytes"));
    }
    Ok(Hello {
        reference,
        decode_opt,
        track,
        fsync,
        dir,
        lane,
        spec,
        cfg,
        seeds,
        faults,
        hang_deadline_ticks,
        proc_faults,
        disk_faults,
        storage_retries,
        storage_backoff_cycles,
        exec_restore,
    })
}

/// The worker's answer to [`Hello`]: identity plus the freshly built (and
/// possibly restored) executor's observable state, so the supervisor can
/// seed the epoch-0 shard snapshot without an executor of its own.
struct Ack {
    executor: String,
    fingerprint: u64,
    report: ResilienceReport,
    exec_state: Option<ExecutorState>,
}

fn encode_ack(a: &Ack) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&a.executor);
    w.put_u64(a.fingerprint);
    a.report.encode(&mut w);
    put_exec_state(&mut w, &a.exec_state);
    w.into_bytes()
}

fn decode_ack(bytes: &[u8]) -> Result<Ack, WireError> {
    let mut r = Reader::new(bytes);
    let executor = r.get_str()?;
    let fingerprint = r.get_u64()?;
    let report = ResilienceReport::decode(&mut r)?;
    let exec_state = get_exec_state(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing ack bytes"));
    }
    Ok(Ack {
        executor,
        fingerprint,
        report,
        exec_state,
    })
}

/// How the worker should (re)open its epoch journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JournalMode {
    /// No journaling (checkpointing off, or nothing left to run).
    Off,
    /// Fresh journal based at `base` execs (fresh epochs and recovery
    /// re-runs, which truncate the faulted attempt's partial records).
    Create { base: u64 },
    /// Reopen the existing journal, truncated to `valid_len` bytes
    /// (checkpoint resume continuing a half-written epoch).
    Reopen { valid_len: u64 },
}

fn put_journal_mode(w: &mut Writer, m: JournalMode) {
    match m {
        JournalMode::Off => w.put_u8(0),
        JournalMode::Create { base } => {
            w.put_u8(1);
            w.put_u64(base);
        }
        JournalMode::Reopen { valid_len } => {
            w.put_u8(2);
            w.put_u64(valid_len);
        }
    }
}

fn get_journal_mode(r: &mut Reader<'_>) -> Result<JournalMode, WireError> {
    Ok(match r.get_u8()? {
        0 => JournalMode::Off,
        1 => JournalMode::Create { base: r.get_u64()? },
        2 => JournalMode::Reopen {
            valid_len: r.get_u64()?,
        },
        _ => return Err(WireError::Malformed("journal mode tag")),
    })
}

/// One epoch attempt: the lane's barrier state (executor export stripped —
/// the live child process *is* the executor state) plus everything that
/// may have changed since the handshake.
struct RunEpochMsg {
    epoch: u64,
    epochs: u64,
    attempt: u32,
    /// Current lane budget (degradation folds retired lanes' cycles into
    /// survivors mid-campaign, so this cannot live in `Hello`).
    budget_cycles: u64,
    state: SnapshotState,
    /// Simulated-SIGKILL hook: `(limit, base)` — stop once `base` plus the
    /// lane's own journaled execs reaches `limit`.
    kill: Option<(u64, u64)>,
    journal: JournalMode,
}

fn encode_run_epoch(m: &RunEpochMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(m.epoch);
    w.put_u64(m.epochs);
    w.put_u32(m.attempt);
    w.put_u64(m.budget_cycles);
    w.put_bytes(&m.state.encode());
    match m.kill {
        Some((limit, base)) => {
            w.put_bool(true);
            w.put_u64(limit);
            w.put_u64(base);
        }
        None => w.put_bool(false),
    }
    put_journal_mode(&mut w, m.journal);
    w.into_bytes()
}

fn decode_run_epoch(bytes: &[u8]) -> Result<RunEpochMsg, WireError> {
    let mut r = Reader::new(bytes);
    let epoch = r.get_u64()?;
    let epochs = r.get_u64()?;
    let attempt = r.get_u32()?;
    let budget_cycles = r.get_u64()?;
    let state = SnapshotState::decode(&r.get_bytes()?)?;
    let kill = if r.get_bool()? {
        Some((r.get_u64()?, r.get_u64()?))
    } else {
        None
    };
    let journal = get_journal_mode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing run-epoch bytes"));
    }
    Ok(RunEpochMsg {
        epoch,
        epochs,
        attempt,
        budget_cycles,
        state,
        kill,
        journal,
    })
}

/// The epoch's result: the lane's barrier state **with** the executor
/// export (the supervisor's recovery snapshot, merge substrate, and shard
/// checkpoint payload) plus the executor's lifetime resilience report.
struct BarrierMsg {
    /// The simulated kill switch tripped during this epoch.
    killed: bool,
    state: SnapshotState,
    report: ResilienceReport,
    /// The child's storage-plane accounting since the previous barrier
    /// (drained per epoch, so the supervisor's absorb never double-counts).
    storage: StorageCounters,
}

fn encode_barrier(b: &BarrierMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_bool(b.killed);
    w.put_bytes(&b.state.encode());
    b.report.encode(&mut w);
    b.storage.encode(&mut w);
    w.into_bytes()
}

fn decode_barrier(bytes: &[u8]) -> Result<BarrierMsg, WireError> {
    let mut r = Reader::new(bytes);
    let killed = r.get_bool()?;
    let state = SnapshotState::decode(&r.get_bytes()?)?;
    let report = ResilienceReport::decode(&mut r)?;
    let storage = StorageCounters::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing barrier bytes"));
    }
    Ok(BarrierMsg {
        killed,
        state,
        report,
        storage,
    })
}

/// An in-child lane fault the worker detected itself (the out-of-process
/// analogues of what `run_epoch_parallel` catches in-process).
fn encode_fault(f: &LaneFault) -> Vec<u8> {
    let mut w = Writer::new();
    match f {
        LaneFault::Panic(msg) => {
            w.put_u8(0);
            w.put_str(msg);
        }
        LaneFault::Hang => w.put_u8(1),
        LaneFault::BarrierTimeout => w.put_u8(2),
        // Process-transport faults are diagnosed by the parent from the
        // exit status / pipe state; a child never reports them.
        _ => w.put_u8(1),
    }
    w.into_bytes()
}

fn decode_fault(bytes: &[u8]) -> Result<LaneFault, WireError> {
    let mut r = Reader::new(bytes);
    let f = match r.get_u8()? {
        0 => LaneFault::Panic(r.get_str()?),
        1 => LaneFault::Hang,
        2 => LaneFault::BarrierTimeout,
        _ => return Err(WireError::Malformed("fault tag")),
    };
    if !r.is_empty() {
        return Err(WireError::Malformed("trailing fault bytes"));
    }
    Ok(f)
}

// ---------------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------------

/// Call this at the **top of `main`** in any binary that runs
/// `Isolation::Process` campaigns. When the process was spawned as a worker
/// lane (the supervisor self-execs the current binary with [`WORKER_ENV`]
/// set), this serves the lane protocol over stdin/stdout and **exits** —
/// it only returns in the parent. `parse` turns the factory recipe shipped
/// in the handshake ([`ExecutorFactory::worker_spec`]) back into a factory.
///
/// Nothing else in a worker may write to stdout: the pipe carries protocol
/// frames. (Diagnostics go to stderr, which the worker inherits.)
pub fn worker_main_hook<F>(parse: F)
where
    F: FnOnce(&[u8]) -> Result<Box<dyn ExecutorFactory>, String>,
{
    if std::env::var_os(WORKER_ENV).is_none() {
        return;
    }
    let code = worker_serve(parse);
    std::process::exit(code);
}

/// Send a `Fatal` frame; best-effort (the parent may already be gone).
fn send_fatal(out: &mut impl std::io::Write, msg: &str) {
    let mut w = Writer::new();
    w.put_str(msg);
    let _ = write_frame(out, K_FATAL, &w.into_bytes());
}

/// The worker protocol loop. Returns the process exit code.
fn worker_serve<F>(parse: F) -> i32
where
    F: FnOnce(&[u8]) -> Result<Box<dyn ExecutorFactory>, String>,
{
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();

    let hello = match read_frame(&mut stdin, MAX_FRAME_LEN) {
        Ok((K_HELLO, payload)) => match decode_hello(&payload) {
            Ok(h) => h,
            Err(e) => {
                send_fatal(&mut stdout, &format!("bad hello payload: {e}"));
                return 0;
            }
        },
        Ok((kind, _)) => {
            send_fatal(&mut stdout, &format!("expected hello, got frame kind {kind}"));
            return 0;
        }
        // EOF before the handshake: the parent gave up; nothing to report.
        Err(_) => return 0,
    };

    vmos::set_reference_engine(hello.reference);
    vmos::set_decode_opt(hello.decode_opt);
    supervise::install_quiet_panic_hook();

    let factory = match parse(&hello.spec) {
        Ok(f) => f,
        Err(msg) => {
            send_fatal(&mut stdout, &format!("worker spec rejected: {msg}"));
            return 0;
        }
    };
    let mut executor = match factory.build() {
        Ok(e) => e,
        Err(e) => {
            send_fatal(&mut stdout, &format!("executor build failed: {e}"));
            return 0;
        }
    };
    if let Some(es) = &hello.exec_restore {
        if let Err(e) = executor.restore_state(es) {
            send_fatal(&mut stdout, &format!("executor state restore failed: {e}"));
            return 0;
        }
    }
    let mut revalidator = match factory.build_revalidator() {
        Ok(r) => r,
        Err(e) => {
            send_fatal(&mut stdout, &format!("revalidator build failed: {e}"));
            return 0;
        }
    };

    let ack = Ack {
        executor: executor.name().to_string(),
        fingerprint: executor.module_fingerprint().unwrap_or(0),
        report: executor.resilience(),
        exec_state: executor.export_state(),
    };
    if write_frame(&mut stdout, K_ACK, &encode_ack(&ack)).is_err() {
        return 0;
    }

    let mut cfg = hello.cfg.clone();
    let lane_idx = hello.lane;
    let dir = Path::new(&hello.dir);
    // The child's storage plane, bound to this lane's stream. A respawned
    // child starts a fresh plane (op indices reset), so `RunEpoch.attempt`
    // offsets the fault coordinates — faults consumed by a crashed attempt
    // do not re-fire on the supervisor's re-run.
    let storage = Storage::new(
        hello.disk_faults.clone(),
        hello.storage_retries,
        hello.storage_backoff_cycles,
    )
    .stream(1 + hello.lane);

    loop {
        let (kind, payload) = match read_frame(&mut stdin, MAX_FRAME_LEN) {
            Ok(f) => f,
            // Pipe EOF (or a torn parent write): the supervisor is gone or
            // has killed us mid-read; exit quietly.
            Err(_) => return 0,
        };
        match kind {
            K_SHUTDOWN => return 0,
            K_RUN_EPOCH => {
                let msg = match decode_run_epoch(&payload) {
                    Ok(m) => m,
                    Err(e) => {
                        send_fatal(&mut stdout, &format!("bad run-epoch payload: {e}"));
                        continue;
                    }
                };
                cfg.budget_cycles = msg.budget_cycles;
                let epoch_storage = storage.with_base_attempt(msg.attempt);
                let journal = match msg.journal {
                    JournalMode::Off => None,
                    JournalMode::Create { base } => {
                        let path = shard_journal_path(dir, msg.epoch, lane_idx as usize);
                        let (j, o) = Journal::create_at(&epoch_storage, &path, base, hello.fsync);
                        if o.crashed() {
                            // An injected crash boundary: die the way the
                            // machine would — the supervisor contains it as
                            // a signal fault and re-runs the epoch.
                            std::process::abort();
                        }
                        Some(j)
                    }
                    JournalMode::Reopen { valid_len } => {
                        let path = shard_journal_path(dir, msg.epoch, lane_idx as usize);
                        let (j, o) = Journal::reopen(&epoch_storage, &path, valid_len, hello.fsync);
                        if o.crashed() {
                            std::process::abort();
                        }
                        Some(j)
                    }
                };

                // Scheduled self-sabotage for this attempt. `Kill` belongs
                // to the parent; everything else the child performs on
                // itself, `trip_after` journaled execs into the epoch (or
                // at the barrier for shorter epochs) via a private kill
                // switch — the real one is ignored for a doomed attempt,
                // since recovery re-runs the epoch wholesale either way.
                let start_execs = msg.state.scalars.execs;
                let self_fault = match hello.proc_faults.decide(lane_idx, msg.epoch, msg.attempt) {
                    Some(ProcFaultKind::Kill) | None => None,
                    Some(k) => Some(k),
                };
                let trip_after = hello.proc_faults.aux_bits(lane_idx, msg.epoch, msg.attempt) % 16;
                let sabotage = self_fault
                    .map(|_| KillSwitch::new(start_execs + trip_after, start_execs));
                let real_kill = msg
                    .kill
                    .map(|(limit, base)| KillSwitch::new(limit, base));
                let kill_ref = sabotage.as_ref().or(real_kill.as_ref());

                let mut lane = Lane {
                    executor,
                    revalidator,
                    cfg: cfg.clone(),
                    seeds: hello.seeds.clone(),
                    state: msg.state,
                    journal,
                };
                let watch = LaneAttempt {
                    lane: lane_idx,
                    attempt: msg.attempt,
                    faults: &hello.faults,
                    hang_deadline: hello.hang_deadline_ticks,
                };
                let outcome = {
                    let lane = &mut lane;
                    supervise::contain(|| {
                        run_lane_epoch(lane, msg.epoch, msg.epochs, hello.track, kill_ref, &watch)
                    })
                };
                let state = lane.state;
                executor = lane.executor;
                revalidator = lane.revalidator;
                // `lane.journal` dropped here: the epoch's records are on
                // disk whatever happens next.

                match outcome {
                    Err(panic_payload) => {
                        // Contained (injected or organic) panic: report it
                        // and wait — the supervisor kills and respawns us.
                        let f = LaneFault::Panic(panic_payload);
                        if write_frame(&mut stdout, K_FAULT, &encode_fault(&f)).is_err() {
                            return 0;
                        }
                    }
                    Ok(Err(e)) => {
                        send_fatal(&mut stdout, &format!("lane epoch failed: {e}"));
                    }
                    Ok(Ok(Some(fault))) => {
                        if write_frame(&mut stdout, K_FAULT, &encode_fault(&fault)).is_err() {
                            return 0;
                        }
                    }
                    Ok(Ok(None)) => {
                        if epoch_storage.crashed() {
                            // A journal append hit an injected crash
                            // boundary mid-epoch: no barrier — die here.
                            std::process::abort();
                        }
                        if let Some(kind) = self_fault {
                            perform_self_fault(kind, &mut stdout);
                        }
                        let killed = real_kill.as_ref().is_some_and(|k| k.stopped());
                        let mut st = state;
                        st.exec_state = executor.export_state();
                        let b = BarrierMsg {
                            killed,
                            state: st,
                            report: executor.resilience(),
                            storage: epoch_storage.take_counters(),
                        };
                        if write_frame(&mut stdout, K_BARRIER, &encode_barrier(&b)).is_err() {
                            return 0;
                        }
                    }
                }
            }
            other => {
                send_fatal(&mut stdout, &format!("unexpected frame kind {other}"));
            }
        }
    }
}

/// Execute a scheduled self-fault. Never returns normally (the process
/// dies, stalls until the supervisor's deadline kill, or exits after
/// poisoning the pipe).
fn perform_self_fault(kind: ProcFaultKind, out: &mut impl std::io::Write) -> ! {
    match kind {
        // Parent-side; never scheduled here.
        ProcFaultKind::Kill => std::process::abort(),
        ProcFaultKind::Abort => std::process::abort(),
        // The classic container OOM-kill exit status.
        ProcFaultKind::Oom => std::process::exit(137),
        ProcFaultKind::Stall => loop {
            std::thread::sleep(Duration::from_secs(600));
        },
        ProcFaultKind::GarbageFrame => {
            // A structurally plausible frame with a wrong checksum: the
            // supervisor must reject it as `FrameCorrupt`, not desync.
            let mut bad = Vec::new();
            bad.extend_from_slice(&FRAME_MAGIC);
            bad.push(K_BARRIER);
            bad.extend_from_slice(&4u32.to_le_bytes());
            bad.extend_from_slice(&0u64.to_le_bytes());
            bad.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
            let _ = out.write_all(&bad);
            let _ = out.flush();
            std::process::exit(0);
        }
    }
}

// ---------------------------------------------------------------------------
// The supervisor side: one child process per lane.
// ---------------------------------------------------------------------------

/// A supervised worker process: the child handle, its protocol pipe, and a
/// reader thread that turns the stdout byte stream into framed messages so
/// the supervisor can enforce a wall-clock receive deadline.
struct ChildProc {
    child: Child,
    stdin: Option<ChildStdin>,
    rx: mpsc::Receiver<Result<(u8, Vec<u8>), FrameError>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl ChildProc {
    /// Self-exec the current binary as a worker lane and send the
    /// handshake. I/O errors here are environmental (no executable, fork
    /// refused) — they abort the campaign rather than count as lane
    /// faults.
    fn spawn(hello: &Hello) -> Result<ChildProc, CheckpointError> {
        let exe = std::env::current_exe().map_err(CheckpointError::Io)?;
        let mut child = Command::new(exe)
            .env(WORKER_ENV, "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(CheckpointError::Io)?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || loop {
            match read_frame(&mut stdout, MAX_FRAME_LEN) {
                Ok(frame) => {
                    if tx.send(Ok(frame)).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        // The handshake write can fail if the child died instantly; that
        // is diagnosed by the first receive, not here.
        let _ = write_frame(&mut stdin, K_HELLO, &encode_hello(hello));
        Ok(ChildProc {
            child,
            stdin: Some(stdin),
            rx,
            reader: Some(reader),
        })
    }

    /// Send a frame to the worker. A failed write means the child is gone:
    /// reap it and report the typed transport fault.
    fn send(&mut self, kind: u8, payload: &[u8]) -> Result<(), LaneFault> {
        let ok = self
            .stdin
            .as_mut()
            .is_some_and(|w| write_frame(w, kind, payload).is_ok());
        if ok {
            Ok(())
        } else {
            Err(self.reap_fault())
        }
    }

    /// Receive one frame within `deadline` wall-clock time. On timeout the
    /// child is killed (`LaneFault::Deadline`); on a poisoned or closed
    /// pipe the exit status decides the fault type.
    fn recv(&mut self, deadline: Duration) -> Result<(u8, Vec<u8>), LaneFault> {
        match self.rx.recv_timeout(deadline) {
            Ok(Ok(frame)) => Ok(frame),
            Ok(Err(e)) => match e {
                FrameError::ChecksumMismatch
                | FrameError::BadMagic
                | FrameError::Oversized { .. } => {
                    self.kill();
                    Err(LaneFault::FrameCorrupt)
                }
                FrameError::Eof | FrameError::Truncated | FrameError::Io(_) => {
                    Err(self.reap_fault())
                }
            },
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.kill();
                Err(LaneFault::Deadline)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(self.reap_fault()),
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Reap a child that closed its pipe and translate the exit status
    /// into a typed fault. Gives the child a short grace window to finish
    /// dying (the pipe closes a beat before `wait` can see the status),
    /// then force-kills.
    fn reap_fault(&mut self) -> LaneFault {
        let mut status = None;
        for _ in 0..200 {
            match self.child.try_wait() {
                Ok(Some(st)) => {
                    status = Some(st);
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
        let Some(status) = status else {
            self.kill();
            return LaneFault::PipeEof;
        };
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            if let Some(sig) = status.signal() {
                return LaneFault::Signal(sig);
            }
        }
        match status.code() {
            Some(0) | None => LaneFault::PipeEof,
            Some(code) => LaneFault::Exit(code),
        }
    }
}

impl Drop for ChildProc {
    /// Containment on every exit path: kill, reap (no zombies), release
    /// the pipe, join the reader.
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stdin = None;
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Supervisor-side lane bookkeeping. The barrier state kept here always
/// carries the executor export — it is simultaneously the recovery
/// snapshot, the merge substrate, and the shard-checkpoint payload.
struct ProcLane {
    child: Option<ChildProc>,
    cfg: CampaignConfig,
    seeds: Vec<Vec<u8>>,
    state: SnapshotState,
    report: ResilienceReport,
}

/// Everything the epoch loop needs that is not per-lane state.
struct ProcCtx<'a> {
    spec: Vec<u8>,
    cfg: &'a CampaignConfig,
    ck: Option<&'a CheckpointConfig>,
    epochs: u64,
    executor_name: String,
    fingerprint: u64,
    /// The supervisor's storage plane (stream 0: shard snapshots, rotation,
    /// sweeps). Children run their own planes and ship the counters back in
    /// each barrier, absorbed here.
    storage: Option<Storage>,
}

impl ProcCtx<'_> {
    fn hello(
        &self,
        sup_cfg: &SupervisorConfig,
        lane: usize,
        lane_cfg: &CampaignConfig,
        seeds: &[Vec<u8>],
        exec_restore: Option<ExecutorState>,
    ) -> Hello {
        Hello {
            reference: vmos::reference_engine(),
            decode_opt: vmos::decode_opt(),
            track: self.ck.is_some(),
            fsync: self.ck.map_or(FsyncPolicy::Never, |c| c.fsync),
            dir: self
                .ck
                .map_or(String::new(), |c| c.dir.to_string_lossy().into_owned()),
            lane: lane as u64,
            spec: self.spec.clone(),
            cfg: lane_cfg.clone(),
            seeds: seeds.to_vec(),
            faults: sup_cfg.faults.clone(),
            hang_deadline_ticks: sup_cfg.hang_deadline_ticks,
            proc_faults: sup_cfg.proc_faults.clone(),
            disk_faults: self
                .ck
                .map_or_else(DiskFaultPlan::none, |c| c.disk_faults.clone()),
            storage_retries: self.ck.map_or(3, |c| c.storage_retries),
            storage_backoff_cycles: self.ck.map_or(0, |c| c.storage_backoff_cycles),
            exec_restore,
        }
    }

    fn deadline(&self, sup_cfg: &SupervisorConfig) -> Duration {
        Duration::from_millis(sup_cfg.read_deadline_ms.max(1))
    }
}

/// Spawn one worker lane and complete the handshake. Outer error: the
/// spawn itself failed (environmental, campaign-fatal). Inner error: the
/// worker died or misbehaved during the handshake (a lane fault — the
/// caller may retry).
fn spawn_lane(
    ctx: &ProcCtx<'_>,
    sup_cfg: &SupervisorConfig,
    lane: usize,
    lane_cfg: &CampaignConfig,
    seeds: &[Vec<u8>],
    exec_restore: Option<ExecutorState>,
) -> Result<Result<(ChildProc, Ack), LaneFault>, CampaignError> {
    let hello = ctx.hello(sup_cfg, lane, lane_cfg, seeds, exec_restore);
    let mut child = ChildProc::spawn(&hello).map_err(CampaignError::Checkpoint)?;
    match child.recv(ctx.deadline(sup_cfg)) {
        Ok((K_ACK, payload)) => match decode_ack(&payload) {
            Ok(ack) => Ok(Ok((child, ack))),
            Err(_) => {
                child.kill();
                Ok(Err(LaneFault::FrameCorrupt))
            }
        },
        Ok((K_FATAL, payload)) => Err(fatal_to_error(&payload)),
        Ok(_) => {
            child.kill();
            Ok(Err(LaneFault::FrameCorrupt))
        }
        Err(fault) => Ok(Err(fault)),
    }
}

/// A worker's `Fatal` report: the lane cannot run for a structural reason
/// (spec rejected, factory build failed) that a respawn will not fix.
fn fatal_to_error(payload: &[u8]) -> CampaignError {
    let msg = Reader::new(payload)
        .get_str()
        .unwrap_or_else(|_| "worker sent an unreadable fatal report".to_string());
    CampaignError::Checkpoint(CheckpointError::Io(std::io::Error::other(format!(
        "worker fatal: {msg}"
    ))))
}

/// Spawn with the supervisor's retry budget; handshake faults are counted
/// like any other lane fault.
fn spawn_lane_retrying(
    ctx: &ProcCtx<'_>,
    sup: &mut Supervisor,
    lane: usize,
    lane_cfg: &CampaignConfig,
    seeds: &[Vec<u8>],
    exec_restore: &Option<ExecutorState>,
) -> Result<(ChildProc, Ack), CampaignError> {
    let mut attempt = 0u32;
    loop {
        match spawn_lane(ctx, &sup.cfg, lane, lane_cfg, seeds, exec_restore.clone())? {
            Ok(pair) => return Ok(pair),
            Err(fault) => {
                sup.counters.record(&fault);
                attempt += 1;
                if attempt > sup.cfg.max_lane_retries {
                    return Err(CampaignError::WorkerLost(
                        "a worker process failed its handshake past the retry budget",
                    ));
                }
                sup.counters.record_respawn(lane);
            }
        }
    }
}

/// Read one epoch reply from a worker. `Ok(Ok)` — the barrier snapshot;
/// `Ok(Err)` — a typed lane fault (in-child report or transport); `Err` —
/// a campaign-fatal condition.
fn read_epoch_reply(
    child: &mut ChildProc,
    deadline: Duration,
) -> Result<Result<BarrierMsg, LaneFault>, CampaignError> {
    match child.recv(deadline) {
        Ok((K_BARRIER, payload)) => match decode_barrier(&payload) {
            Ok(b) => Ok(Ok(b)),
            Err(_) => {
                child.kill();
                Ok(Err(LaneFault::FrameCorrupt))
            }
        },
        Ok((K_FAULT, payload)) => match decode_fault(&payload) {
            Ok(f) => Ok(Err(f)),
            Err(_) => {
                child.kill();
                Ok(Err(LaneFault::FrameCorrupt))
            }
        },
        Ok((K_FATAL, payload)) => Err(fatal_to_error(&payload)),
        Ok(_) => {
            child.kill();
            Ok(Err(LaneFault::FrameCorrupt))
        }
        Err(fault) => Ok(Err(fault)),
    }
}

/// Send `RunEpoch` for one lane, honoring a parent-side `Kill` decision:
/// the child is SIGKILLed right after the send — the exact kill moment is
/// irrelevant because recovery re-runs the whole epoch from the barrier.
#[allow(clippy::too_many_arguments)]
fn dispatch_epoch(
    child: &mut ChildProc,
    lane_idx: usize,
    epoch: u64,
    attempt: u32,
    budget_cycles: u64,
    state: &SnapshotState,
    journal: JournalMode,
    kill: Option<(u64, u64)>,
    ctx: &ProcCtx<'_>,
    sup_cfg: &SupervisorConfig,
) -> Result<(), LaneFault> {
    let msg = RunEpochMsg {
        epoch,
        epochs: ctx.epochs,
        attempt,
        budget_cycles,
        state: stripped(state),
        kill,
        journal,
    };
    child.send(K_RUN_EPOCH, &encode_run_epoch(&msg))?;
    if sup_cfg.proc_faults.decide(lane_idx as u64, epoch, attempt) == Some(ProcFaultKind::Kill) {
        child.kill();
    }
    Ok(())
}

/// Rebuild a faulted worker lane from its epoch-barrier snapshot and
/// re-run the epoch — the out-of-process mirror of `shard::recover_lane`.
/// The respawned child restores the snapshot's executor export, recreates
/// the journal at the snapshot's exec base, and replays the epoch; past
/// the retry budget the lane is retired, with one final respawn to collect
/// a sane resilience report and the unspent budget folded into survivors.
#[allow(clippy::too_many_arguments)]
fn recover_proc_lane(
    ctx: &ProcCtx<'_>,
    lanes: &mut [ProcLane],
    idx: usize,
    epoch: u64,
    snap: &SnapshotState,
    first_fault: LaneFault,
    kill: Option<(u64, u64)>,
    sup: &mut Supervisor,
) -> Result<(), CampaignError> {
    let mut fault = first_fault;
    let mut attempt: u32 = 1;
    loop {
        sup.counters.record(&fault);
        if attempt > sup.cfg.max_lane_retries {
            // Degradation: retire the lane at its barrier snapshot. One
            // final respawn gives the report a sane restored instance to
            // read from (mirroring the in-process rebuild); then the
            // worker is shut down for good.
            lanes[idx].child = None;
            sup.counters.record_respawn(idx);
            let (lane_cfg, lane_seeds) = (lanes[idx].cfg.clone(), lanes[idx].seeds.clone());
            match spawn_lane(
                ctx,
                &sup.cfg,
                idx,
                &lane_cfg,
                &lane_seeds,
                snap.exec_state.clone(),
            )? {
                Ok((mut child, ack)) => {
                    lanes[idx].report = ack.report;
                    let _ = child.send(K_SHUTDOWN, &[]);
                }
                // Even the report-collection respawn faulted; keep the
                // last known report — the lane is being retired anyway.
                Err(f) => sup.counters.record(&f),
            }
            let reclaimed = lanes[idx]
                .cfg
                .budget_cycles
                .saturating_sub(snap.scalars.clock);
            lanes[idx].state = snap.clone();
            sup.dead[idx] = true;
            if sup.live() == 0 {
                return Err(CampaignError::AllLanesLost { epoch });
            }
            let heirs: Vec<usize> = (0..lanes.len())
                .filter(|&j| j != idx && !sup.dead[j])
                .collect();
            let share = reclaimed / heirs.len() as u64;
            let rem = reclaimed % heirs.len() as u64;
            for (k, &j) in heirs.iter().enumerate() {
                lanes[j].cfg.budget_cycles += share + u64::from((k as u64) < rem);
            }
            sup.counters.degradations.push(supervise::LaneDegradation {
                lane: idx as u64,
                epoch,
                attempts: u64::from(attempt),
                reclaimed_cycles: reclaimed,
                last_fault: fault.name().to_string(),
            });
            return Ok(());
        }
        // Respawn from the barrier snapshot and re-run the epoch.
        lanes[idx].child = None;
        sup.counters.record_respawn(idx);
        sup.counters.lane_rebuilds += 1;
        let (lane_cfg, lane_seeds) = (lanes[idx].cfg.clone(), lanes[idx].seeds.clone());
        let spawned = spawn_lane(
            ctx,
            &sup.cfg,
            idx,
            &lane_cfg,
            &lane_seeds,
            snap.exec_state.clone(),
        )?;
        let outcome = match spawned {
            Err(f) => Err(f),
            Ok((mut child, ack)) => {
                lanes[idx].report = ack.report;
                let journal = if ctx.ck.is_some() {
                    JournalMode::Create {
                        base: snap.scalars.execs,
                    }
                } else {
                    JournalMode::Off
                };
                let sent = dispatch_epoch(
                    &mut child,
                    idx,
                    epoch,
                    attempt,
                    lane_cfg.budget_cycles,
                    snap,
                    journal,
                    kill,
                    ctx,
                    &sup.cfg,
                );
                let reply = match sent {
                    Err(f) => Err(f),
                    Ok(()) => read_epoch_reply(&mut child, ctx.deadline(&sup.cfg))?,
                };
                lanes[idx].child = Some(child);
                reply
            }
        };
        match outcome {
            Ok(barrier) => {
                if let Some(st) = &ctx.storage {
                    st.absorb(&barrier.storage);
                }
                lanes[idx].state = barrier.state;
                lanes[idx].report = barrier.report;
                sup.counters.recovered += 1;
                return Ok(());
            }
            Err(f) => {
                fault = f;
                attempt += 1;
            }
        }
    }
}

/// Create (and immediately close) a retired lane's journal file, keeping
/// the on-disk epoch layout identical to the in-process engine's, which
/// opens a journal for every lane — dead or alive.
fn touch_dead_lane_journal(
    storage: &Storage,
    ck: &CheckpointConfig,
    epoch: u64,
    lane: usize,
    base: u64,
) -> OpOutcome {
    let (_, o) = Journal::create_at(
        &storage.stream(1 + lane as u64),
        &shard_journal_path(&ck.dir, epoch, lane),
        base,
        ck.fsync,
    );
    o
}

/// The epoch loop shared by fresh runs and resumes — the out-of-process
/// mirror of `shard::run_epochs`, with the same ordering: run (dispatch +
/// collect), kill check, recovery, merge, checkpoint, early stop.
#[allow(clippy::too_many_arguments)]
fn run_proc_epochs(
    ctx: &ProcCtx<'_>,
    lanes: &mut [ProcLane],
    global: &mut Global,
    start_epoch: u64,
    kill_limit: Option<u64>,
    mut first_epoch_journals: Option<Vec<JournalMode>>,
    sup: &mut Supervisor,
) -> Result<CampaignOutcome, CampaignError> {
    let track = ctx.ck.is_some();
    for epoch in start_epoch..ctx.epochs {
        let base_total: u64 = lanes.iter().map(|l| l.state.scalars.execs).sum();
        if kill_limit.is_some_and(|k| base_total >= k) {
            // The budget of a previous epoch (or the resumed snapshot)
            // already crossed the kill line.
            return Ok(CampaignOutcome::Killed { execs: base_total });
        }
        let kill = kill_limit.map(|k| (k, base_total));
        let journal_overrides = first_epoch_journals.take();

        // Recovery snapshots: the lane states already carry the executor
        // export from the previous barrier (or the handshake ack).
        let recovery: Vec<Option<SnapshotState>> = lanes
            .iter()
            .enumerate()
            .map(|(i, l)| (!sup.dead[i]).then(|| l.state.clone()))
            .collect();

        // Dispatch the epoch to every live worker, then collect replies in
        // lane order — the children run concurrently regardless of the
        // collection order, and the merge is insensitive to it.
        let mut sent: Vec<Option<Result<(), LaneFault>>> = Vec::with_capacity(lanes.len());
        for idx in 0..lanes.len() {
            if sup.dead[idx] {
                sent.push(None);
                continue;
            }
            let journal = match &journal_overrides {
                Some(modes) => modes[idx],
                None if track => JournalMode::Create {
                    base: lanes[idx].state.scalars.execs,
                },
                None => JournalMode::Off,
            };
            let lane = &mut lanes[idx];
            let outcome = match lane.child.as_mut() {
                Some(child) => dispatch_epoch(
                    child,
                    idx,
                    epoch,
                    0,
                    lane.cfg.budget_cycles,
                    &lane.state,
                    journal,
                    kill,
                    ctx,
                    &sup.cfg,
                ),
                None => Err(LaneFault::PipeEof),
            };
            sent.push(Some(outcome));
        }
        let deadline = ctx.deadline(&sup.cfg);
        let mut faults: Vec<Option<LaneFault>> = vec![None; lanes.len()];
        let mut any_killed = false;
        for idx in 0..lanes.len() {
            let Some(sent) = sent[idx].take() else {
                continue;
            };
            let reply = match sent {
                Err(f) => Err(f),
                Ok(()) => match lanes[idx].child.as_mut() {
                    Some(child) => read_epoch_reply(child, deadline)?,
                    None => Err(LaneFault::PipeEof),
                },
            };
            match reply {
                Ok(barrier) => {
                    any_killed |= barrier.killed;
                    if let Some(st) = &ctx.storage {
                        st.absorb(&barrier.storage);
                    }
                    lanes[idx].state = barrier.state;
                    lanes[idx].report = barrier.report;
                }
                Err(f) => faults[idx] = Some(f),
            }
        }

        if any_killed {
            // Simulated SIGKILL: stop right here — no recovery, no merge,
            // no snapshot (resume replays the journals whatever state the
            // killed epoch left them in), exactly like the in-process
            // engine.
            let total: u64 = lanes.iter().map(|l| l.state.scalars.execs).sum();
            return Ok(CampaignOutcome::Killed { execs: total });
        }

        for idx in 0..lanes.len() {
            let Some(fault) = faults[idx].take() else {
                continue;
            };
            let Some(snap) = &recovery[idx] else { continue };
            recover_proc_lane(ctx, lanes, idx, epoch, snap, fault, kill, sup)?;
        }

        let mut states: Vec<&mut SnapshotState> = lanes.iter_mut().map(|l| &mut l.state).collect();
        global.merge_epoch_states(&mut states);

        if let (Some(ck), Some(st)) = (ctx.ck, ctx.storage.as_ref()) {
            let snap_states: Vec<SnapshotState> = lanes.iter().map(|l| l.state.clone()).collect();
            let mut crashed = write_shard_snapshot_states(
                st,
                ck,
                epoch + 1,
                &snap_states,
                ctx.fingerprint,
            )
            .crashed()
                || rotate_shards(st, ck).crashed();
            if !crashed && epoch + 1 < ctx.epochs {
                // Live workers create their own journals when the next
                // `RunEpoch` arrives; retired lanes get theirs here for
                // on-disk parity with the in-process engine.
                for (i, lane) in lanes.iter().enumerate() {
                    if sup.dead[i]
                        && touch_dead_lane_journal(st, ck, epoch + 1, i, lane.state.scalars.execs)
                            .crashed()
                    {
                        crashed = true;
                        break;
                    }
                }
            }
            if crashed {
                // A supervisor-side storage crash boundary: the machine is
                // dead. Resume replays whatever reached the disk.
                let total: u64 = lanes.iter().map(|l| l.state.scalars.execs).sum();
                return Ok(CampaignOutcome::Killed { execs: total });
            }
        }
        if ctx.cfg.stop_after_crashes > 0 && global.crashes.len() >= ctx.cfg.stop_after_crashes {
            break;
        }
    }

    // Graceful shutdown; the `Drop` kill is the backstop.
    for lane in lanes.iter_mut() {
        if let Some(child) = lane.child.as_mut() {
            let _ = child.send(K_SHUTDOWN, &[]);
        }
        lane.child = None;
    }
    let states: Vec<&SnapshotState> = lanes.iter().map(|l| &l.state).collect();
    let reports: Vec<ResilienceReport> = lanes.iter().map(|l| l.report.clone()).collect();
    Ok(CampaignOutcome::Finished(assemble_parts(
        &states,
        &reports,
        &ctx.executor_name,
        global,
        sup,
        ctx.storage
            .as_ref()
            .map(Storage::counters)
            .unwrap_or_default(),
    )))
}

/// Run a lane-per-process campaign — `shard::run_sharded` with every lane
/// behind a supervised worker process. Requires a factory that implements
/// [`ExecutorFactory::worker_spec`]; `plan.workers` is ignored (each lane
/// already has a whole process; all live lanes run concurrently).
pub(crate) fn run_proc(
    factory: &dyn ExecutorFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    plan: &ShardPlan,
    ck: Option<&CheckpointConfig>,
    sup_cfg: &SupervisorConfig,
) -> Result<CampaignOutcome, CampaignError> {
    let Some(spec) = factory.worker_spec() else {
        return Err(CampaignError::Config(
            "process isolation needs ExecutorFactory::worker_spec so workers can rebuild the factory",
        ));
    };
    let lanes_n = plan.lanes.max(1);
    let epochs = plan.sync_epochs.max(1);
    let track = ck.is_some();

    // One scratch executor builds the initial per-lane barrier states (a
    // fresh driver's state is a pure function of config and seeds — the
    // executor instance never runs).
    let mut scratch = factory.build().map_err(CampaignError::Build)?;
    let mut lanes: Vec<ProcLane> = Vec::with_capacity(lanes_n);
    for i in 0..lanes_n {
        let lane_cfg = lane_config(cfg, i, lanes_n);
        let lane_seeds: Vec<Vec<u8>> = seeds
            .iter()
            .enumerate()
            .filter(|(j, _)| j % lanes_n == i)
            .map(|(_, s)| s.clone())
            .collect();
        let state = barrier_state(&Driver::new(
            scratch.as_mut(),
            None,
            &lane_seeds,
            &lane_cfg,
            track,
        ));
        lanes.push(ProcLane {
            child: None,
            cfg: lane_cfg,
            seeds: lane_seeds,
            state,
            report: ResilienceReport::default(),
        });
    }
    if let Some(ck) = ck {
        // Best-effort decoded-image sidecar next to the snapshots, so a
        // later resume warms without re-lowering. Plain fs, outside the
        // storage fault plane: the sidecar is a cache, not campaign state,
        // and must not consume deterministic fault-plan op numbers. (The
        // idempotent create_dir_all below still runs as a storage op.)
        let _ = std::fs::create_dir_all(&ck.dir);
        scratch.save_decoded_sidecar(&ck.dir);
    }
    drop(scratch);

    let mut ctx = ProcCtx {
        spec,
        cfg,
        ck,
        epochs,
        executor_name: String::new(),
        fingerprint: 0,
        storage: ck.map(storage_for),
    };
    let mut sup = Supervisor::new(sup_cfg.clone(), lanes_n);
    for (i, lane) in lanes.iter_mut().enumerate() {
        let (child, ack) = spawn_lane_retrying(&ctx, &mut sup, i, &lane.cfg, &lane.seeds, &None)?;
        if i == 0 {
            ctx.executor_name = ack.executor.clone();
            ctx.fingerprint = ack.fingerprint;
        }
        lane.child = Some(child);
        lane.report = ack.report;
        lane.state.exec_state = ack.exec_state;
    }

    if let (Some(ck), Some(st)) = (ck, ctx.storage.as_ref()) {
        let snap_states: Vec<SnapshotState> = lanes.iter().map(|l| l.state.clone()).collect();
        if st.op(false, |_| std::fs::create_dir_all(&ck.dir)).crashed()
            || sweep_orphan_tmp(st, &ck.dir).crashed()
            || write_shard_snapshot_states(st, ck, 0, &snap_states, ctx.fingerprint).crashed()
        {
            return Ok(CampaignOutcome::Killed { execs: 0 });
        }
    }

    let mut global = Global::new();
    run_proc_epochs(
        &ctx,
        &mut lanes,
        &mut global,
        0,
        ck.and_then(|c| c.kill_after_execs),
        None,
        &mut sup,
    )
}

/// Resume a killed lane-per-process campaign from its shard checkpoint —
/// `shard::resume_sharded` with the journal replay performed on a scratch
/// driver (state only; no input re-executes) and the interrupted epoch's
/// journals handed to the respawned workers to reopen at their valid
/// length.
pub(crate) fn resume_proc(
    factory: &dyn ExecutorFactory,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    plan: &ShardPlan,
    ck: &CheckpointConfig,
    sup_cfg: &SupervisorConfig,
) -> Result<(CampaignOutcome, ResumeReport), CampaignError> {
    let Some(spec) = factory.worker_spec() else {
        return Err(CampaignError::Config(
            "process isolation needs ExecutorFactory::worker_spec so workers can rebuild the factory",
        ));
    };
    let lanes_n = plan.lanes.max(1);
    let epochs = plan.sync_epochs.max(1);
    let mut info = ResumeReport::default();
    let storage = storage_for(ck);
    if sweep_orphan_tmp(&storage, &ck.dir).crashed() {
        return Ok((CampaignOutcome::Killed { execs: 0 }, info));
    }
    let snaps = list_shard_snapshots(&ck.dir).map_err(CheckpointError::Io)?;
    let mut chosen = None;
    for (epoch, path) in snaps.iter().rev() {
        match load_shard_snapshot(path) {
            Ok((e, states, fp)) if e == *epoch => {
                chosen = Some((e, states, fp));
                break;
            }
            _ => {
                info.corrupt_snapshots_skipped += 1;
                storage.note_corrupt_snapshot();
            }
        }
    }
    let Some((epoch, states, fp)) = chosen else {
        return Err(CampaignError::Checkpoint(CheckpointError::NoUsableSnapshot));
    };
    if states.len() != lanes_n {
        return Err(CampaignError::Config(
            "shard snapshot lane count disagrees with the configured lanes",
        ));
    }
    info.snapshot_execs = states.iter().map(|s| s.scalars.execs).sum();

    // The scratch executor validates the snapshot's target fingerprint and
    // hosts the journal replay (replay is a pure state patch; the executor
    // never runs an input). The real executors live in the workers.
    // Warm the cache through the sidecar before the scratch build — a
    // cold-cache construction would lower and waste the sidecar.
    let warm = factory.warm_decoded_image(Some(&ck.dir));
    let mut scratch = factory.build().map_err(CampaignError::Build)?;
    check_target(fp, &*scratch).map_err(CampaignError::Checkpoint)?;
    info.note_decoded_image(warm.or_else(|| scratch.warm_decoded_image(Some(&ck.dir))));

    let mut global = Global::from_state(&states[0]);
    let mut lanes: Vec<ProcLane> = Vec::with_capacity(lanes_n);
    let mut journal_modes: Vec<JournalMode> = Vec::with_capacity(lanes_n);
    for (i, st) in states.into_iter().enumerate() {
        let lane_cfg = lane_config(cfg, i, lanes_n);
        let lane_seeds: Vec<Vec<u8>> = seeds
            .iter()
            .enumerate()
            .filter(|(j, _)| j % lanes_n == i)
            .map(|(_, s)| s.clone())
            .collect();
        let jpath = shard_journal_path(&ck.dir, epoch, i);
        let base = st.scalars.execs;
        let mut last_exec_state = st.exec_state.clone();
        let mut d = Driver::new(scratch.as_mut(), None, &lane_seeds, &lane_cfg, true);
        // Strip the executor export before applying: the scratch executor
        // is a replay substrate, not a lane.
        stripped(&st).apply(&mut d).map_err(CampaignError::Checkpoint)?;
        let mode = if epoch < epochs {
            match read_journal(&jpath, base) {
                Some((records, valid_len, dropped)) => {
                    for rec in &records {
                        rec.apply(&mut d);
                        if rec.exec_state.is_some() {
                            last_exec_state.clone_from(&rec.exec_state);
                        }
                        info.records_applied += 1;
                    }
                    if dropped > 0 {
                        info.torn_records += dropped;
                        storage.note_torn_records(dropped);
                    }
                    JournalMode::Reopen { valid_len }
                }
                // Killed before this lane's journal reached the disk.
                None => JournalMode::Create { base },
            }
        } else {
            JournalMode::Off
        };
        let mut state = barrier_state(&d);
        drop(d);
        state.exec_state = last_exec_state;
        lanes.push(ProcLane {
            child: None,
            cfg: lane_cfg,
            seeds: lane_seeds,
            state,
            report: ResilienceReport::default(),
        });
        journal_modes.push(mode);
    }
    drop(scratch);
    info.sweep_warnings = storage.counters().sweep_warnings;

    let mut ctx = ProcCtx {
        spec,
        cfg,
        ck: Some(ck),
        epochs,
        executor_name: String::new(),
        fingerprint: fp,
        storage: Some(storage),
    };
    // Supervision state is in-memory only: a resume starts every lane live
    // with fresh counters, exactly like the in-process engine.
    let mut sup = Supervisor::new(sup_cfg.clone(), lanes_n);
    for (i, lane) in lanes.iter_mut().enumerate() {
        let restore = lane.state.exec_state.clone();
        let (child, ack) =
            spawn_lane_retrying(&ctx, &mut sup, i, &lane.cfg, &lane.seeds, &restore)?;
        if i == 0 {
            ctx.executor_name = ack.executor.clone();
        }
        lane.child = Some(child);
        lane.report = ack.report;
    }

    let outcome = run_proc_epochs(
        &ctx,
        &mut lanes,
        &mut global,
        epoch,
        ck.kill_after_execs,
        Some(journal_modes),
        &mut sup,
    )?;
    Ok((outcome, info))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hello() -> Hello {
        Hello {
            reference: true,
            decode_opt: false,
            track: true,
            fsync: FsyncPolicy::OnSnapshot,
            dir: "/tmp/ckpt".to_string(),
            lane: 3,
            spec: vec![9, 9, 9],
            cfg: CampaignConfig {
                budget_cycles: 123_456,
                seed: 42,
                ..CampaignConfig::default()
            },
            seeds: vec![b"a".to_vec(), Vec::new(), vec![0xFF; 33]],
            faults: OrchFaultPlan::none(),
            hang_deadline_ticks: 2048,
            proc_faults: ProcFaultPlan::at(1, 2, ProcFaultKind::Abort),
            disk_faults: DiskFaultPlan::at(1, 4, vmos::DiskFaultKind::ShortWrite),
            storage_retries: 5,
            storage_backoff_cycles: 1234,
            exec_restore: Some(ExecutorState {
                respawns: 7,
                ..ExecutorState::default()
            }),
        }
    }

    #[test]
    fn hello_round_trips() {
        let h = sample_hello();
        let bytes = encode_hello(&h);
        let d = decode_hello(&bytes).unwrap();
        assert_eq!(d.reference, h.reference);
        assert_eq!(d.decode_opt, h.decode_opt);
        assert_eq!(d.track, h.track);
        assert_eq!(d.fsync, h.fsync);
        assert_eq!(d.dir, h.dir);
        assert_eq!(d.lane, h.lane);
        assert_eq!(d.spec, h.spec);
        assert_eq!(d.cfg.budget_cycles, h.cfg.budget_cycles);
        assert_eq!(d.cfg.seed, h.cfg.seed);
        assert_eq!(d.cfg.max_retries, h.cfg.max_retries);
        assert_eq!(d.seeds, h.seeds);
        assert_eq!(d.faults, h.faults);
        assert_eq!(d.hang_deadline_ticks, h.hang_deadline_ticks);
        assert_eq!(d.proc_faults, h.proc_faults);
        assert_eq!(d.disk_faults, h.disk_faults);
        assert_eq!(d.storage_retries, h.storage_retries);
        assert_eq!(d.storage_backoff_cycles, h.storage_backoff_cycles);
        assert_eq!(d.exec_restore, h.exec_restore);
    }

    #[test]
    fn truncated_hello_is_error_not_panic() {
        let bytes = encode_hello(&sample_hello());
        for cut in 0..bytes.len() {
            assert!(decode_hello(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn ack_round_trips() {
        let a = Ack {
            executor: "closurex".to_string(),
            fingerprint: 0xDEAD_BEEF,
            report: ResilienceReport {
                respawns: 2,
                ..ResilienceReport::default()
            },
            exec_state: None,
        };
        let d = decode_ack(&encode_ack(&a)).unwrap();
        assert_eq!(d.executor, a.executor);
        assert_eq!(d.fingerprint, a.fingerprint);
        assert_eq!(d.report, a.report);
        assert_eq!(d.exec_state, a.exec_state);
    }

    #[test]
    fn journal_modes_round_trip() {
        for m in [
            JournalMode::Off,
            JournalMode::Create { base: 77 },
            JournalMode::Reopen { valid_len: 1024 },
        ] {
            let mut w = Writer::new();
            put_journal_mode(&mut w, m);
            let bytes = w.into_bytes();
            assert_eq!(get_journal_mode(&mut Reader::new(&bytes)).unwrap(), m);
        }
        let mut w = Writer::new();
        w.put_u8(7);
        let bytes = w.into_bytes();
        assert!(get_journal_mode(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn fault_reports_round_trip() {
        for f in [
            LaneFault::Panic("boom".to_string()),
            LaneFault::Hang,
            LaneFault::BarrierTimeout,
        ] {
            assert_eq!(decode_fault(&encode_fault(&f)).unwrap(), f);
        }
        assert!(decode_fault(&[9]).is_err());
    }

    #[test]
    fn fsync_tags_round_trip() {
        for f in [
            FsyncPolicy::Never,
            FsyncPolicy::OnSnapshot,
            FsyncPolicy::EveryRecord,
        ] {
            assert_eq!(fsync_from_tag(fsync_tag(f)).unwrap(), f);
        }
        assert!(fsync_from_tag(3).is_err());
    }

    #[test]
    fn worker_env_is_stable() {
        // The env var is part of the spawn contract between binaries;
        // renaming it would break mixed-version parent/worker pairs.
        assert_eq!(WORKER_ENV, "AFLRS_PROC_WORKER");
    }
}
