//! Crash-safe campaign checkpointing: versioned snapshots plus a
//! write-ahead journal of per-execution deltas, with deterministic resume.
//!
//! A fuzzing campaign is a long-running investment; a power cut or an OOM
//! kill must not discard it. This module persists the campaign state
//! machine of [`crate::campaign`] so that a campaign killed at **any**
//! execution boundary resumes bit-for-bit identically — same coverage map,
//! same queue, same crash records, same simulated clock — as a campaign
//! that never died.
//!
//! # On-disk layout
//!
//! Inside the checkpoint directory:
//!
//! * `ckpt-{execs:012}.bin` — a full snapshot of the campaign state after
//!   `execs` executions: `"CXCK"` magic, format version, FNV-1a checksum,
//!   payload length, then the serialized state (queue + cursor, virgin
//!   map, crash records, both RNG streams, stage position, all counters,
//!   and the executor's exported state). Written atomically
//!   (write-temp-then-rename); older snapshots are rotated away, keeping
//!   [`CheckpointConfig::keep_snapshots`].
//! * `journal-{base:012}.bin` — the write-ahead journal that starts at
//!   snapshot `base`: `"CXJL"` header, then one length- and
//!   checksum-framed [`DeltaRecord`] per execution. A torn final record
//!   (the write the kill interrupted) is detected by its checksum and
//!   dropped.
//!
//! # Resume semantics
//!
//! Resume (via [`crate::Campaign::resume`]) loads the **newest snapshot
//! that validates**; a
//! corrupt or version-mismatched snapshot is skipped and the previous one
//! used instead, with the journal *chain* (`journal-{S1}` covers
//! `S1..S2`, …) replayed across the gap. Journal replay applies recorded
//! state patches — it never re-executes inputs — so resume cost is
//! proportional to the journal tail, not the campaign. Checkpoint I/O
//! charges **zero simulated cycles**: a checkpointed campaign's result is
//! identical to an uncheckpointed one.
//!
//! The executor handed to a resume must be freshly constructed
//! from the same module and configuration (construction is deterministic),
//! with any fault plan re-armed *before* the call; the checkpoint then
//! restores its mutable counters via
//! [`Executor::restore_state`](closurex::executor::Executor::restore_state).
//! Exact resume needs an export-capable executor (ClosureX, fresh
//! process); mechanisms whose `export_state` returns `None` resume with
//! fresh executor counters.

use std::fs;
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use closurex::checkpoint::ExecutorState;
use closurex::executor::Executor;
use closurex::resilience::HarnessError;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use vmos::cov::VirginMap;
use vmos::wire::fnv1a;
use vmos::{Crash, DiskFaultPlan, Reader, WireError, Writer};

use crate::campaign::{CampaignConfig, Driver, Stage, StepOutcome};
use crate::queue::QueueEntry;
use crate::stats::{CampaignResult, CrashRecord};
use crate::storage::{faulted_create, flip_bit, fsync_dir, Injected, OpOutcome, Storage};

/// Checkpoint format version; bump on any wire-layout change.
/// v2: queue entries carry the `favored` bit and the snapshot header embeds
/// the target module's fingerprint.
/// v3: `ExecutorState` carries the live process's CoW lineage
/// (`proc_cow_faults` + `proc_private_pages`) so a resumed process's
/// teardown charges match the killed run's.
pub(crate) const FORMAT_VERSION: u32 = 3;
/// Snapshot file magic.
const SNAPSHOT_MAGIC: &[u8; 4] = b"CXCK";
/// Journal file magic.
pub(crate) const JOURNAL_MAGIC: &[u8; 4] = b"CXJL";
/// Bytes before a journal's first record: magic + version + base execs.
pub(crate) const JOURNAL_HEADER_LEN: u64 = 16;

/// When checkpoint files are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync — fastest; a kill may lose OS-buffered records (they
    /// are detected as a torn tail, so correctness is unaffected).
    Never,
    /// Fsync snapshots only (the default): a kill loses at most the
    /// journal tail since the last snapshot flush.
    #[default]
    OnSnapshot,
    /// Fsync after every journal record: at most the in-flight execution
    /// is lost. Paranoid and slow.
    EveryRecord,
}

/// Checkpointing parameters.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the snapshot/journal files live in (created on demand).
    pub dir: PathBuf,
    /// Write a full snapshot every this many executions (0 = only the
    /// initial and final snapshots; the journal covers everything else).
    pub snapshot_every_execs: u64,
    /// How many most-recent snapshots to retain; older ones (and the
    /// journals wholly before the oldest kept snapshot) are deleted.
    pub keep_snapshots: usize,
    /// Flush policy.
    pub fsync: FsyncPolicy,
    /// Simulate a SIGKILL after this many executions: the campaign stops
    /// abruptly — no final snapshot, no graceful shutdown — and returns
    /// [`CampaignOutcome::Killed`]. Test-harness hook for the
    /// kill-and-resume torture evaluation.
    pub kill_after_execs: Option<u64>,
    /// Deterministic storage fault injection (disabled by default). Every
    /// checkpoint I/O operation consults this plan; see
    /// [`vmos::DiskFaultPlan`] and the [`crate::storage`] recovery ladder.
    pub disk_faults: DiskFaultPlan,
    /// Retry budget for transient storage errors before the affected
    /// stream degrades to in-memory checkpointing.
    pub storage_retries: u32,
    /// Base simulated-cycle delay for the storage retry backoff (doubled
    /// per attempt, plus seeded jitter). Accounted in
    /// [`crate::StorageCounters::backoff_cycles`], never charged to the
    /// campaign clock.
    pub storage_backoff_cycles: u64,
}

impl CheckpointConfig {
    /// Defaults: snapshot every 2000 execs, keep 2, fsync on snapshot,
    /// no fault injection, 3 retries over a 2000-cycle backoff base.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            snapshot_every_execs: 2_000,
            keep_snapshots: 2,
            fsync: FsyncPolicy::default(),
            kill_after_execs: None,
            disk_faults: DiskFaultPlan::none(),
            storage_retries: 3,
            storage_backoff_cycles: 2_000,
        }
    }
}

/// The storage plane a config describes: its fault plan plus retry and
/// backoff budgets, bound to stream 0 (the coordinator control plane).
pub(crate) fn storage_for(ck: &CheckpointConfig) -> Storage {
    Storage::new(ck.disk_faults.clone(), ck.storage_retries, ck.storage_backoff_cycles)
}

/// How a checkpointed campaign ended.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one outcome per campaign; size is fine
pub enum CampaignOutcome {
    /// Budget exhausted (or early-stop): the normal result.
    Finished(CampaignResult),
    /// The simulated kill fired after `execs` executions; resume with
    /// [`crate::Campaign::resume`].
    Killed {
        /// Executions completed (and journaled) before the kill.
        execs: u64,
    },
}

impl CampaignOutcome {
    /// The result, if the campaign finished.
    pub fn finished(self) -> Option<CampaignResult> {
        match self {
            CampaignOutcome::Finished(r) => Some(r),
            CampaignOutcome::Killed { .. } => None,
        }
    }
}

/// What a resume found on disk — the one typed resume surface, shared by
/// single-driver, sharded, lane-per-process, and service-restored
/// campaigns, and nested into [`CampaignResult::resume`] so service status
/// and single-campaign resume report through the same struct.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResumeReport {
    /// Execution count of the snapshot the resume started from.
    pub snapshot_execs: u64,
    /// Journal records replayed on top of the snapshot.
    pub records_applied: u64,
    /// Snapshots that failed validation (corrupt / truncated / wrong
    /// version) and were skipped in favor of an older one.
    pub corrupt_snapshots_skipped: u64,
    /// Journal records dropped because they sat in (or beyond) a torn or
    /// checksum-failing region. Silent journal loss is observable: each
    /// dropped record is one execution resume will re-run.
    pub torn_records: u64,
    /// Corrupt snapshot generations rewritten during replay from an older
    /// good generation plus the journal chain (scrub-and-repair).
    pub snapshots_repaired: u64,
    /// Orphaned tmp files the pre-replay sweep could not remove (see
    /// [`crate::StorageCounters::sweep_warnings`]).
    pub sweep_warnings: u64,
    /// Whether the target's lowered image was available without a
    /// re-lower when the resume validated it (`false` also when the
    /// mechanism does not use the decoded engine). Resume warms the cache
    /// either way, so the replayed campaign never pays a lazy mid-run
    /// lowering the original did not.
    pub decoded_image_ready: bool,
    /// Where the decoded image came from: in-memory cache, sidecar file,
    /// or a fresh lowering (`None` when the mechanism does not use the
    /// decoded engine).
    pub decoded_image_source: Option<vmos::WarmSource>,
}

impl ResumeReport {
    /// Record where the decoded-image warm-up got its image from.
    pub(crate) fn note_decoded_image(&mut self, source: Option<vmos::WarmSource>) {
        self.decoded_image_source = source;
        self.decoded_image_ready = source.is_some_and(vmos::WarmSource::was_warm);
    }
}

/// Checkpointing failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// No snapshot in the directory survived validation.
    NoUsableSnapshot,
    /// The executor refused to restore the checkpointed state.
    Executor(HarnessError),
    /// The snapshot was written against a different target module: the
    /// fingerprint embedded in its header does not match the executor's.
    /// Resuming would replay decisions made for other code — refuse.
    TargetMismatch {
        /// Fingerprint in the snapshot header.
        snapshot: u64,
        /// Fingerprint of the module the executor actually runs.
        executor: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::NoUsableSnapshot => {
                write!(f, "no usable snapshot in checkpoint directory")
            }
            CheckpointError::Executor(e) => write!(f, "executor state restore failed: {e}"),
            CheckpointError::TargetMismatch { snapshot, executor } => write!(
                f,
                "snapshot was written for module {snapshot:#018x}, executor runs {executor:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Wire codecs for the campaign types.
// ---------------------------------------------------------------------------

impl Stage {
    fn encode(self, w: &mut Writer) {
        match self {
            Stage::Seeds(i) => {
                w.put_u8(0);
                w.put_usize(i);
                w.put_u64(0);
            }
            Stage::Pick => {
                w.put_u8(1);
                w.put_u64(0);
                w.put_u64(0);
            }
            Stage::Det { entry, mutant } => {
                w.put_u8(2);
                w.put_usize(entry);
                w.put_usize(mutant);
            }
            Stage::Havoc { entry, iter } => {
                w.put_u8(3);
                w.put_usize(entry);
                w.put_u64(u64::from(iter));
            }
            Stage::Done => {
                w.put_u8(4);
                w.put_u64(0);
                w.put_u64(0);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        let a = r.get_u64()?;
        let b = r.get_u64()?;
        Ok(match tag {
            0 => Stage::Seeds(a as usize),
            1 => Stage::Pick,
            2 => Stage::Det {
                entry: a as usize,
                mutant: b as usize,
            },
            3 => Stage::Havoc {
                entry: a as usize,
                iter: u32::try_from(b).map_err(|_| WireError::Malformed("havoc iter"))?,
            },
            4 => Stage::Done,
            _ => return Err(WireError::Malformed("stage tag")),
        })
    }
}

fn encode_entry(e: &QueueEntry, w: &mut Writer) {
    w.put_bytes(&e.data);
    w.put_u64(e.exec_cycles);
    w.put_u64(e.found_at);
    w.put_bool(e.det_done);
    w.put_bool(e.favored);
}

fn decode_entry(r: &mut Reader<'_>) -> Result<QueueEntry, WireError> {
    Ok(QueueEntry {
        data: r.get_bytes()?,
        exec_cycles: r.get_u64()?,
        found_at: r.get_u64()?,
        det_done: r.get_bool()?,
        favored: r.get_bool()?,
    })
}

pub(crate) fn encode_crash_record(c: &CrashRecord, w: &mut Writer) {
    c.crash.encode(w);
    w.put_u64(c.found_at_cycles);
    w.put_bytes(&c.input);
    w.put_u64(c.hits);
    w.put_bool(c.flaky);
}

pub(crate) fn decode_crash_record(r: &mut Reader<'_>) -> Result<CrashRecord, WireError> {
    Ok(CrashRecord {
        crash: Crash::decode(r)?,
        found_at_cycles: r.get_u64()?,
        input: r.get_bytes()?,
        hits: r.get_u64()?,
        flaky: r.get_bool()?,
    })
}

fn encode_rng(s: [u64; 4], w: &mut Writer) {
    for v in s {
        w.put_u64(v);
    }
}

fn decode_rng(r: &mut Reader<'_>) -> Result<[u64; 4], WireError> {
    let mut s = [0u64; 4];
    for v in &mut s {
        *v = r.get_u64()?;
    }
    Ok(s)
}

fn encode_exec_state(es: &Option<ExecutorState>, w: &mut Writer) {
    match es {
        Some(s) => {
            w.put_bool(true);
            s.encode(w);
        }
        None => w.put_bool(false),
    }
}

fn decode_exec_state(r: &mut Reader<'_>) -> Result<Option<ExecutorState>, WireError> {
    Ok(if r.get_bool()? {
        Some(ExecutorState::decode(r)?)
    } else {
        None
    })
}

/// The shared scalar block both snapshots and deltas carry: absolute
/// values of every behavior-relevant campaign scalar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Scalars {
    pub(crate) stage: Stage,
    pub(crate) clock: u64,
    pub(crate) execs: u64,
    pub(crate) hangs: u64,
    pub(crate) mgmt_cycles: u64,
    pub(crate) exec_cycles: u64,
    pub(crate) retries: u64,
    pub(crate) dropped_inputs: u64,
    pub(crate) harness_faults: u64,
    pub(crate) consecutive_hangs: u64,
    pub(crate) watchdog_trips: u64,
    pub(crate) rng: [u64; 4],
    pub(crate) backoff_rng: [u64; 4],
    pub(crate) cursor: u64,
}

impl Scalars {
    pub(crate) fn capture(d: &Driver<'_>) -> Self {
        Scalars {
            stage: d.stage,
            clock: d.clock,
            execs: d.execs,
            hangs: d.hangs,
            mgmt_cycles: d.mgmt_cycles,
            exec_cycles: d.exec_cycles,
            retries: d.retries,
            dropped_inputs: d.dropped_inputs,
            harness_faults: d.harness_faults,
            consecutive_hangs: d.consecutive_hangs,
            watchdog_trips: d.watchdog_trips,
            rng: d.rng.state(),
            backoff_rng: d.backoff_rng.state(),
            cursor: d.queue.cursor() as u64,
        }
    }

    pub(crate) fn apply(&self, d: &mut Driver<'_>) {
        d.stage = self.stage;
        d.clock = self.clock;
        d.execs = self.execs;
        d.hangs = self.hangs;
        d.mgmt_cycles = self.mgmt_cycles;
        d.exec_cycles = self.exec_cycles;
        d.retries = self.retries;
        d.dropped_inputs = self.dropped_inputs;
        d.harness_faults = self.harness_faults;
        d.consecutive_hangs = self.consecutive_hangs;
        d.watchdog_trips = self.watchdog_trips;
        d.rng = SmallRng::from_state(self.rng);
        d.backoff_rng = SmallRng::from_state(self.backoff_rng);
        d.queue.set_cursor(self.cursor as usize);
    }

    fn encode(&self, w: &mut Writer) {
        self.stage.encode(w);
        w.put_u64(self.clock);
        w.put_u64(self.execs);
        w.put_u64(self.hangs);
        w.put_u64(self.mgmt_cycles);
        w.put_u64(self.exec_cycles);
        w.put_u64(self.retries);
        w.put_u64(self.dropped_inputs);
        w.put_u64(self.harness_faults);
        w.put_u64(self.consecutive_hangs);
        w.put_u64(self.watchdog_trips);
        encode_rng(self.rng, w);
        encode_rng(self.backoff_rng, w);
        w.put_u64(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Scalars {
            stage: Stage::decode(r)?,
            clock: r.get_u64()?,
            execs: r.get_u64()?,
            hangs: r.get_u64()?,
            mgmt_cycles: r.get_u64()?,
            exec_cycles: r.get_u64()?,
            retries: r.get_u64()?,
            dropped_inputs: r.get_u64()?,
            harness_faults: r.get_u64()?,
            consecutive_hangs: r.get_u64()?,
            watchdog_trips: r.get_u64()?,
            rng: decode_rng(r)?,
            backoff_rng: decode_rng(r)?,
            cursor: r.get_u64()?,
        })
    }
}

/// A full campaign snapshot: the serializable image of a [`Driver`].
#[derive(Debug, Clone)]
pub(crate) struct SnapshotState {
    pub(crate) scalars: Scalars,
    pub(crate) entries: Vec<QueueEntry>,
    pub(crate) virgin: VirginMap,
    pub(crate) crashes: Vec<CrashRecord>,
    pub(crate) exec_state: Option<ExecutorState>,
}

impl SnapshotState {
    pub(crate) fn capture(d: &Driver<'_>) -> Self {
        SnapshotState {
            scalars: Scalars::capture(d),
            entries: d.queue.iter().cloned().collect(),
            virgin: d.virgin.clone(),
            crashes: d.crashes.clone(),
            exec_state: d.executor.export_state(),
        }
    }

    /// Install this snapshot into a freshly constructed driver.
    pub(crate) fn apply(self, d: &mut Driver<'_>) -> Result<(), CheckpointError> {
        for e in self.entries {
            d.queue.push(e);
        }
        self.scalars.apply(d); // after pushes: cursor must not be clobbered
        d.virgin = self.virgin;
        d.crashes = self.crashes;
        d.rebuild_crash_sites();
        d.journaled_queue_len = d.queue.len();
        d.journaled_crash_len = d.crashes.len();
        if let Some(es) = &self.exec_state {
            d.executor.restore_state(es).map_err(CheckpointError::Executor)?;
        }
        Ok(())
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.scalars.encode(&mut w);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            encode_entry(e, &mut w);
        }
        self.virgin.encode(&mut w);
        w.put_usize(self.crashes.len());
        for c in &self.crashes {
            encode_crash_record(c, &mut w);
        }
        encode_exec_state(&self.exec_state, &mut w);
        w.into_bytes()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let scalars = Scalars::decode(&mut r)?;
        let n = r.get_count()?;
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(decode_entry(&mut r)?);
        }
        let virgin = VirginMap::decode(&mut r)?;
        let n = r.get_count()?;
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut crashes = Vec::with_capacity(n);
        for _ in 0..n {
            crashes.push(decode_crash_record(&mut r)?);
        }
        let exec_state = decode_exec_state(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::Malformed("trailing snapshot bytes"));
        }
        Ok(SnapshotState {
            scalars,
            entries,
            virgin,
            crashes,
            exec_state,
        })
    }
}

/// One journaled execution: the absolute post-execution scalars plus the
/// incremental collection changes since the previous record. Replay is a
/// pure state patch — no input is re-executed.
#[derive(Debug, Clone)]
pub(crate) struct DeltaRecord {
    pub(crate) scalars: Scalars,
    pub(crate) new_entries: Vec<QueueEntry>,
    pub(crate) det_done: Vec<u64>,
    pub(crate) new_crashes: Vec<CrashRecord>,
    pub(crate) crash_hits: Vec<(u64, u64)>,
    pub(crate) virgin: Vec<(u32, u8)>,
    pub(crate) exec_state: Option<ExecutorState>,
}

impl DeltaRecord {
    /// Drain the driver's pending-delta trackers into a record.
    pub(crate) fn take(d: &mut Driver<'_>) -> Self {
        let new_entries: Vec<QueueEntry> =
            d.queue.iter().skip(d.journaled_queue_len).cloned().collect();
        d.journaled_queue_len = d.queue.len();
        let new_crashes = d.crashes[d.journaled_crash_len..].to_vec();
        d.journaled_crash_len = d.crashes.len();
        DeltaRecord {
            scalars: Scalars::capture(d),
            new_entries,
            det_done: std::mem::take(&mut d.pending_det_done)
                .into_iter()
                .map(|i| i as u64)
                .collect(),
            new_crashes,
            crash_hits: std::mem::take(&mut d.pending_crash_hits)
                .into_iter()
                .map(|(i, h)| (i as u64, h))
                .collect(),
            virgin: std::mem::take(&mut d.pending_virgin)
                .into_iter()
                .map(|(i, v)| (i as u32, v))
                .collect(),
            exec_state: d.executor.export_state(),
        }
    }

    /// Patch the driver's state with this record. The executor state is
    /// *not* applied here (only the final record's matters; the caller
    /// applies it once at the end of replay).
    pub(crate) fn apply(&self, d: &mut Driver<'_>) {
        for e in &self.new_entries {
            d.queue.push(e.clone());
        }
        self.scalars.apply(d);
        for &i in &self.det_done {
            if let Some(e) = d.queue.get_mut(i as usize) {
                e.det_done = true;
            }
        }
        for c in &self.new_crashes {
            d.crash_sites.insert(c.crash.site_key(), d.crashes.len());
            d.crashes.push(c.clone());
        }
        for &(i, hits) in &self.crash_hits {
            if let Some(rec) = d.crashes.get_mut(i as usize) {
                rec.hits = hits;
            }
        }
        for &(i, v) in &self.virgin {
            d.virgin.set_byte(i as usize, v);
        }
        d.journaled_queue_len = d.queue.len();
        d.journaled_crash_len = d.crashes.len();
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.scalars.encode(&mut w);
        w.put_usize(self.new_entries.len());
        for e in &self.new_entries {
            encode_entry(e, &mut w);
        }
        w.put_usize(self.det_done.len());
        for &i in &self.det_done {
            w.put_u64(i);
        }
        w.put_usize(self.new_crashes.len());
        for c in &self.new_crashes {
            encode_crash_record(c, &mut w);
        }
        w.put_usize(self.crash_hits.len());
        for &(i, h) in &self.crash_hits {
            w.put_u64(i);
            w.put_u64(h);
        }
        w.put_usize(self.virgin.len());
        for &(i, v) in &self.virgin {
            w.put_u32(i);
            w.put_u8(v);
        }
        encode_exec_state(&self.exec_state, &mut w);
        w.into_bytes()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let scalars = Scalars::decode(&mut r)?;
        let n = r.get_count()?;
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut new_entries = Vec::with_capacity(n);
        for _ in 0..n {
            new_entries.push(decode_entry(&mut r)?);
        }
        let n = r.get_count()?;
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut det_done = Vec::with_capacity(n);
        for _ in 0..n {
            det_done.push(r.get_u64()?);
        }
        let n = r.get_count()?;
        if n > r.remaining() / 8 {
            return Err(WireError::Truncated);
        }
        let mut new_crashes = Vec::with_capacity(n);
        for _ in 0..n {
            new_crashes.push(decode_crash_record(&mut r)?);
        }
        let n = r.get_count()?;
        if n > r.remaining() / 16 {
            return Err(WireError::Truncated);
        }
        let mut crash_hits = Vec::with_capacity(n);
        for _ in 0..n {
            crash_hits.push((r.get_u64()?, r.get_u64()?));
        }
        let n = r.get_count()?;
        if n > r.remaining() / 5 {
            return Err(WireError::Truncated);
        }
        let mut virgin = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.get_u32()?;
            if i as usize >= vmos::MAP_SIZE {
                return Err(WireError::Malformed("virgin index out of range"));
            }
            virgin.push((i, r.get_u8()?));
        }
        let exec_state = decode_exec_state(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::Malformed("trailing delta bytes"));
        }
        Ok(DeltaRecord {
            scalars,
            new_entries,
            det_done,
            new_crashes,
            crash_hits,
            virgin,
            exec_state,
        })
    }
}

// ---------------------------------------------------------------------------
// Files.
// ---------------------------------------------------------------------------

fn snapshot_path(dir: &Path, execs: u64) -> PathBuf {
    dir.join(format!("ckpt-{execs:012}.bin"))
}

fn journal_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("journal-{base:012}.bin"))
}

/// Parse `{prefix}-{12 digits}.bin` file names, returning the number.
pub(crate) fn parse_numbered(name: &str, prefix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(".bin")?;
    (rest.len() == 12 && rest.bytes().all(|b| b.is_ascii_digit()))
        .then(|| rest.parse().ok())
        .flatten()
}

/// All `{prefix}-N.bin` files in `dir`, sorted ascending by N.
pub(crate) fn list_numbered(dir: &Path, prefix: &str) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(n) = entry.file_name().to_str().and_then(|s| parse_numbered(s, prefix)) {
            out.push((n, entry.path()));
        }
    }
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

/// Byte length of the sealed-snapshot header: magic + version + target
/// fingerprint + checksum + payload length.
pub(crate) const SNAPSHOT_HEADER_LEN: usize = 32;

/// Seal a snapshot payload with the magic + version + target-fingerprint +
/// checksum header. `fingerprint` is the executing module's
/// `Module::fingerprint` (0 when the mechanism does not pin one); resume
/// validates it against the freshly constructed executor so state recorded
/// for one target can never be replayed onto another.
pub(crate) fn seal_snapshot(payload: &[u8], fingerprint: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + SNAPSHOT_HEADER_LEN);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Atomically write sealed snapshot bytes through the storage plane:
/// write to a temp file, optionally fsync it, rename into place, then
/// fsync the parent directory so the rename itself is durable (without
/// the directory fsync a power loss can lose the committed dirent — the
/// classic rename-without-dir-fsync bug). Each of those four steps is one
/// storage operation: a distinct retry scope, kill point, and fault-grid
/// cell.
pub(crate) fn write_sealed(
    storage: &Storage,
    final_path: &Path,
    bytes: &[u8],
    fsync: FsyncPolicy,
) -> OpOutcome {
    let tmp = final_path.with_extension("tmp");
    // Op: write the temp file (recreated from scratch per attempt, so
    // retries after a short write are idempotent).
    let o = storage.op(false, |inj| faulted_create(&tmp, bytes, inj));
    if o != OpOutcome::Done {
        return o;
    }
    if fsync != FsyncPolicy::Never {
        // Op: flush the payload to stable storage.
        let o = storage.op(false, |inj| {
            if let Injected::Bitrot(aux) = inj {
                crate::storage::flip_bit_in_file(&tmp, *aux)?;
            }
            fs::File::open(&tmp)?.sync_data()
        });
        if o != OpOutcome::Done {
            return o;
        }
    }
    // Op: commit by rename. An injected partial/lost outcome leaves the
    // rename undone (the syscall never took effect); a retry after an
    // already-committed rename is a no-op.
    let o = storage.op(true, |inj| match inj {
        Injected::SkipRename | Injected::Partial(_) => Ok(()),
        Injected::Bitrot(aux) => {
            fs::rename(&tmp, final_path)?;
            crate::storage::flip_bit_in_file(final_path, *aux)
        }
        Injected::None => match fs::rename(&tmp, final_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && final_path.is_file() => Ok(()),
            r => r,
        },
    });
    if o != OpOutcome::Done {
        return o;
    }
    if fsync != FsyncPolicy::Never {
        if let Some(parent) = final_path.parent() {
            // Op: make the rename durable. A crash at this boundary models
            // power loss after rename but before the dirent reached the
            // platter with the entry surviving; `rename_lost` at the
            // previous op models it not surviving.
            let o = storage.op(false, |inj| {
                if let Injected::Bitrot(aux) = inj {
                    crate::storage::flip_bit_in_file(final_path, *aux)?;
                }
                fsync_dir(parent)
            });
            if o != OpOutcome::Done {
                return o;
            }
        }
    }
    OpOutcome::Done
}

/// Capture + seal + atomically write one driver's snapshot.
fn write_snapshot(storage: &Storage, dir: &Path, d: &Driver<'_>, fsync: FsyncPolicy) -> OpOutcome {
    let fp = d.executor.module_fingerprint().unwrap_or(0);
    let bytes = seal_snapshot(&SnapshotState::capture(d).encode(), fp);
    write_sealed(storage, &snapshot_path(dir, d.execs), &bytes, fsync)
}

/// Little-endian `u32` at `at`, as a wire error instead of a panicking
/// `expect` — header parsing sits on the campaign control path, where a
/// malformed file must surface as a typed error, never an abort.
fn le_u32(bytes: &[u8], at: usize) -> Result<u32, WireError> {
    bytes
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or(WireError::Truncated)
}

/// Little-endian `u64` at `at` (see [`le_u32`]).
fn le_u64(bytes: &[u8], at: usize) -> Result<u64, WireError> {
    bytes
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or(WireError::Truncated)
}

/// Validate a sealed snapshot's header + checksum, returning the embedded
/// target fingerprint and the payload slice.
pub(crate) fn open_sealed(bytes: &[u8]) -> Result<(u64, &[u8]), WireError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN || &bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(WireError::Malformed("snapshot magic"));
    }
    let version = le_u32(bytes, 4)?;
    if version != FORMAT_VERSION {
        return Err(WireError::Malformed("snapshot version"));
    }
    let fingerprint = le_u64(bytes, 8)?;
    let checksum = le_u64(bytes, 16)?;
    let len = le_u64(bytes, 24)?;
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(WireError::Truncated);
    }
    if fnv1a(payload) != checksum {
        return Err(WireError::Malformed("snapshot checksum"));
    }
    Ok((fingerprint, payload))
}

/// Load and validate one snapshot file, returning the state and the target
/// fingerprint embedded in its header.
pub(crate) fn load_snapshot(path: &Path) -> Result<(SnapshotState, u64), WireError> {
    let bytes = fs::read(path).map_err(|_| WireError::Truncated)?;
    let (fingerprint, payload) = open_sealed(&bytes)?;
    Ok((SnapshotState::decode(payload)?, fingerprint))
}

/// Check a snapshot's embedded target fingerprint against the executor's.
/// A mismatch is only detectable when both sides pin one (nonzero in the
/// header, `Some` from the executor).
pub(crate) fn check_target(
    snapshot_fp: u64,
    executor: &dyn Executor,
) -> Result<(), CheckpointError> {
    if let Some(fp) = executor.module_fingerprint() {
        if snapshot_fp != 0 && snapshot_fp != fp {
            return Err(CheckpointError::TargetMismatch {
                snapshot: snapshot_fp,
                executor: fp,
            });
        }
    }
    Ok(())
}

/// Remove orphaned `*.tmp` files a crashed [`write_sealed`] left behind —
/// the process died between `File::create` and the rename, so the file is
/// garbage by construction (a completed write always renames). Swept on
/// campaign start, resume, and every rotation, so failed atomic writes can
/// never accumulate in the checkpoint directory. Only snapshot-shaped
/// names are touched; anything else in the directory is not ours to
/// delete.
/// Sweeping is cleanup, not correctness: every failure (an unreadable
/// directory, an undeletable file) is a counted
/// [`StorageCounters::sweep_warnings`](crate::StorageCounters) warning,
/// never an error into campaign start or resume.
pub(crate) fn sweep_orphan_tmp(storage: &Storage, dir: &Path) -> OpOutcome {
    let mut failed = 0u64;
    let o = storage.cleanup_op(|_| {
        if !dir.is_dir() {
            return Ok(());
        }
        for entry in fs::read_dir(dir)? {
            let Ok(entry) = entry else {
                failed += 1;
                continue;
            };
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp")
                && (name.starts_with("ckpt-") || name.starts_with("shard-ckpt-"))
                && fs::remove_file(entry.path()).is_err()
            {
                failed += 1;
            }
        }
        Ok(())
    });
    if failed > 0 {
        storage.note_sweep_warnings(failed);
    }
    o
}

/// Delete snapshots beyond the newest `keep`, and journals that start
/// before the oldest kept snapshot (nothing can resume from them anymore).
/// Unlink failures are counted warnings (a file we failed to delete today
/// is retried by the next rotation); successful unlinks are made durable
/// with a directory fsync.
fn rotate(storage: &Storage, dir: &Path, keep: usize, fsync: FsyncPolicy) -> OpOutcome {
    let o = sweep_orphan_tmp(storage, dir);
    if o.crashed() {
        return o;
    }
    let mut failed = 0u64;
    let mut removed = false;
    let o = storage.cleanup_op(|_| {
        let snaps = list_numbered(dir, "ckpt-")?;
        let keep = keep.max(1);
        if snaps.len() <= keep {
            return Ok(());
        }
        let cutoff = snaps[snaps.len() - keep].0;
        for (_, path) in &snaps[..snaps.len() - keep] {
            match fs::remove_file(path) {
                Ok(()) => removed = true,
                Err(_) => failed += 1,
            }
        }
        for (base, path) in list_numbered(dir, "journal-")? {
            if base < cutoff {
                match fs::remove_file(&path) {
                    Ok(()) => removed = true,
                    Err(_) => failed += 1,
                }
            }
        }
        Ok(())
    });
    if failed > 0 {
        storage.note_sweep_warnings(failed);
    }
    if o.crashed() {
        return o;
    }
    if removed && fsync != FsyncPolicy::Never {
        // Op: unlinks are directory mutations too — make them durable.
        return storage.op(false, |_| fsync_dir(dir));
    }
    o
}

/// The append side of the write-ahead journal. All I/O routes through the
/// storage plane: `file` is `None` when the journal's stream degraded
/// before (or at) creation — appends then skip, counted, and the campaign
/// continues with in-memory state only.
pub(crate) struct Journal {
    file: Option<fs::File>,
    fsync: FsyncPolicy,
    storage: Storage,
}

impl Journal {
    /// Create (truncating) the journal for snapshot `base`.
    fn create(storage: &Storage, dir: &Path, base: u64, fsync: FsyncPolicy) -> (Self, OpOutcome) {
        Self::create_at(storage, &journal_path(dir, base), base, fsync)
    }

    /// Create (truncating) a journal at an explicit path — the sharded
    /// runner names its per-lane journals outside the `journal-{base}`
    /// scheme but shares the format.
    pub(crate) fn create_at(
        storage: &Storage,
        path: &Path,
        base: u64,
        fsync: FsyncPolicy,
    ) -> (Self, OpOutcome) {
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&base.to_le_bytes());
        let mut file = None;
        let o = storage.op(false, |inj| {
            file = None; // discard any handle from a failed attempt
            faulted_create(path, &header, inj)?;
            let mut f = fs::OpenOptions::new().write(true).open(path)?;
            f.seek(SeekFrom::End(0))?;
            if fsync != FsyncPolicy::Never {
                f.sync_data()?;
            }
            file = Some(f);
            Ok(())
        });
        let file = if o == OpOutcome::Done { file } else { None };
        (
            Journal {
                file,
                fsync,
                storage: storage.clone(),
            },
            o,
        )
    }

    /// Re-open an existing journal after replay, truncating away a torn
    /// tail (`valid_len` is the last byte replay validated).
    pub(crate) fn reopen(
        storage: &Storage,
        path: &Path,
        valid_len: u64,
        fsync: FsyncPolicy,
    ) -> (Self, OpOutcome) {
        let mut file = None;
        let o = storage.op(false, |inj| {
            file = None;
            let f = fs::OpenOptions::new().read(true).write(true).open(path)?;
            f.set_len(valid_len)?;
            let mut f = f;
            f.seek(SeekFrom::End(0))?;
            if let Injected::Bitrot(aux) = inj {
                crate::storage::flip_bit_in_file(path, *aux)?;
            }
            file = Some(f);
            Ok(())
        });
        let file = if o == OpOutcome::Done { file } else { None };
        (
            Journal {
                file,
                fsync,
                storage: storage.clone(),
            },
            o,
        )
    }

    /// Append one length- and checksum-framed record. One storage
    /// operation: a retry truncates back to the record start first, so a
    /// short write never leaves garbage in front of the re-written frame.
    pub(crate) fn append(&mut self, rec: &DeltaRecord) -> OpOutcome {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let start = match self.file.as_mut() {
            Some(f) => f.stream_position().ok(),
            None => None,
        };
        let file = &mut self.file;
        let fsync = self.fsync;
        self.storage.op(false, |inj| {
            let (Some(f), Some(start)) = (file.as_mut(), start) else {
                return Ok(());
            };
            f.set_len(start)?;
            f.seek(SeekFrom::Start(start))?;
            match inj {
                Injected::Partial(aux) => {
                    let keep = (*aux as usize) % (frame.len() + 1);
                    f.write_all(&frame[..keep])
                }
                Injected::Bitrot(aux) => {
                    let mut rotted = frame.clone();
                    flip_bit(&mut rotted, *aux);
                    f.write_all(&rotted)?;
                    if fsync == FsyncPolicy::EveryRecord {
                        f.sync_data()?;
                    }
                    Ok(())
                }
                _ => {
                    f.write_all(&frame)?;
                    if fsync == FsyncPolicy::EveryRecord {
                        f.sync_data()?;
                    }
                    Ok(())
                }
            }
        })
    }
}

/// Read a journal, validating the header against `expected_base` and every
/// record's checksum. Returns the decoded records, the byte length of the
/// valid prefix, and how many records beyond it were dropped (0 = clean).
/// The dropped count is exact when the bad record's length field still
/// walks the buffer (a payload bit flip) and a lower bound of 1 when
/// framing itself is destroyed (a true torn tail). A journal whose
/// *header* is invalid yields `None` (it cannot be chained or appended to).
#[allow(clippy::type_complexity)]
pub(crate) fn read_journal(path: &Path, expected_base: u64) -> Option<(Vec<DeltaRecord>, u64, u64)> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < JOURNAL_HEADER_LEN as usize
        || &bytes[0..4] != JOURNAL_MAGIC
        || le_u32(&bytes, 4).ok()? != FORMAT_VERSION
        || le_u64(&bytes, 8).ok()? != expected_base
    {
        return None;
    }
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN as usize;
    let mut dropped = 0u64;
    while pos < bytes.len() {
        if pos + 12 > bytes.len() {
            dropped = 1; // partial frame header: one interrupted record
            break;
        }
        let len = le_u32(&bytes, pos).ok()? as usize;
        let checksum = le_u64(&bytes, pos + 4).ok()?;
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            dropped = 1; // frame overruns the file: one torn record
            break;
        };
        let rec = (fnv1a(payload) == checksum)
            .then(|| DeltaRecord::decode(payload).ok())
            .flatten();
        let Some(rec) = rec else {
            // The frame walks but its payload is bad (bit rot, not a torn
            // write). Count it and every still-framed record behind it —
            // replay cannot safely resync past corruption, but the loss
            // must be observable.
            dropped = 1 + count_framed(&bytes, pos + 12 + len);
            break;
        };
        records.push(rec);
        pos += 12 + len;
    }
    Some((records, pos as u64, dropped))
}

/// Count length-framed records from `pos` to the end of the buffer,
/// stopping at the first frame that does not fit. Used only to size the
/// loss behind a corrupt record — nothing here is replayed.
fn count_framed(bytes: &[u8], mut pos: usize) -> u64 {
    let mut n = 0;
    while pos + 12 <= bytes.len() {
        let Ok(len) = le_u32(bytes, pos) else { break };
        let end = pos + 12 + len as usize;
        if end > bytes.len() {
            break;
        }
        n += 1;
        pos = end;
    }
    n
}

// ---------------------------------------------------------------------------
// The checkpointed campaign loop.
// ---------------------------------------------------------------------------

/// Step the driver to completion (or the simulated kill), journaling each
/// execution and snapshotting on cadence. A storage operation that hits an
/// injected crash boundary stops the run exactly like the simulated
/// SIGKILL — whatever reached the files is all resume gets.
fn drive(
    mut d: Driver<'_>,
    ck: &CheckpointConfig,
    storage: &Storage,
    mut journal: Journal,
) -> Result<CampaignOutcome, CheckpointError> {
    loop {
        if d.step() == StepOutcome::Finished {
            let mut result = d.finish();
            // A final snapshot so a finished directory is self-describing.
            if write_snapshot(storage, &ck.dir, &d, ck.fsync).crashed()
                || rotate(storage, &ck.dir, ck.keep_snapshots, ck.fsync).crashed()
            {
                return Ok(CampaignOutcome::Killed { execs: d.execs });
            }
            result.resilience.storage = storage.counters();
            return Ok(CampaignOutcome::Finished(result));
        }
        if journal.append(&DeltaRecord::take(&mut d)).crashed() {
            return Ok(CampaignOutcome::Killed { execs: d.execs });
        }
        if let Some(k) = ck.kill_after_execs {
            if d.execs >= k {
                // Simulated SIGKILL: stop right here — no snapshot, no
                // cleanup. Whatever reached the files is all resume gets.
                return Ok(CampaignOutcome::Killed { execs: d.execs });
            }
        }
        if ck.snapshot_every_execs > 0 && d.execs.is_multiple_of(ck.snapshot_every_execs) {
            if write_snapshot(storage, &ck.dir, &d, ck.fsync).crashed()
                || rotate(storage, &ck.dir, ck.keep_snapshots, ck.fsync).crashed()
            {
                return Ok(CampaignOutcome::Killed { execs: d.execs });
            }
            let (j, o) = Journal::create(storage, &ck.dir, d.execs, ck.fsync);
            if o.crashed() {
                return Ok(CampaignOutcome::Killed { execs: d.execs });
            }
            journal = j;
        }
    }
}

/// Run a fresh campaign with crash-safe checkpointing (internal; the
/// [`crate::Campaign`] builder and the deprecated wrapper dispatch here).
pub(crate) fn run_checkpointed_impl<'e>(
    executor: &'e mut dyn Executor,
    revalidator: Option<&'e mut dyn Executor>,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    ck: &CheckpointConfig,
) -> Result<CampaignOutcome, CheckpointError> {
    let storage = storage_for(ck);
    // Even directory creation rides the ladder: if the checkpoint
    // directory cannot be made, the campaign degrades to in-memory
    // checkpointing instead of refusing to start.
    if storage.op(false, |_| fs::create_dir_all(&ck.dir)).crashed()
        || sweep_orphan_tmp(&storage, &ck.dir).crashed()
    {
        return Ok(CampaignOutcome::Killed { execs: 0 });
    }
    // Best-effort decoded-image sidecar next to the snapshots, so resume —
    // possibly in another process — skips the re-lower. Outside the
    // storage fault plane: it is a cache, never campaign state.
    executor.save_decoded_sidecar(&ck.dir);
    let d = Driver::new(executor, revalidator, seeds, cfg, true);
    if write_snapshot(&storage, &ck.dir, &d, ck.fsync).crashed() {
        return Ok(CampaignOutcome::Killed { execs: 0 });
    }
    let (journal, o) = Journal::create(&storage, &ck.dir, 0, ck.fsync);
    if o.crashed() {
        return Ok(CampaignOutcome::Killed { execs: 0 });
    }
    drive(d, ck, &storage, journal)
}

/// Resume a killed campaign from its checkpoint directory (the
/// [`crate::Campaign`] builder dispatches here). See the module docs for
/// the snapshot-fallback and journal-chaining semantics. The `executor`
/// (and `revalidator`) must be freshly constructed over the same module
/// and configuration as the original run, with any fault plan already
/// re-armed.
///
/// # Errors
/// [`CheckpointError::NoUsableSnapshot`] when every snapshot fails
/// validation; I/O and executor-restore failures otherwise. Corrupt
/// snapshots and torn journal tails are *not* errors — they are skipped
/// (counted in [`ResumeReport`]) and the campaign falls back to the newest
/// state that validates.
pub(crate) fn resume_impl<'e>(
    executor: &'e mut dyn Executor,
    revalidator: Option<&'e mut dyn Executor>,
    seeds: &[Vec<u8>],
    cfg: &CampaignConfig,
    ck: &CheckpointConfig,
) -> Result<(CampaignOutcome, ResumeReport), CheckpointError> {
    let storage = storage_for(ck);
    let mut info = ResumeReport::default();
    if sweep_orphan_tmp(&storage, &ck.dir).crashed() {
        return Ok((CampaignOutcome::Killed { execs: 0 }, info));
    }
    // Scrub: checksum-verify generations newest-first. Corrupt ones are
    // skipped (and remembered — replay repairs any it walks back over);
    // an unreadable directory is simply a directory with no snapshots.
    let snaps = list_numbered(&ck.dir, "ckpt-").unwrap_or_default();
    let mut chosen = None;
    let mut corrupt: Vec<(u64, PathBuf)> = Vec::new();
    for (execs, path) in snaps.iter().rev() {
        match load_snapshot(path) {
            Ok((state, fp)) => {
                chosen = Some((*execs, state, fp));
                break;
            }
            Err(_) => {
                info.corrupt_snapshots_skipped += 1;
                storage.note_corrupt_snapshot();
                corrupt.push((*execs, path.clone()));
            }
        }
    }
    let Some((snapshot_execs, state, snapshot_fp)) = chosen else {
        return Err(CheckpointError::NoUsableSnapshot);
    };
    // Validate the target identity before touching any state: all
    // snapshots in a directory share the module, so a mismatch is a
    // caller error (wrong target), not corruption to fall back from.
    check_target(snapshot_fp, &*executor)?;
    // Warm the decoded-image cache up front — through the sidecar written
    // next to the snapshots when one is usable — so the replayed campaign
    // never pays a lazy mid-run lowering the original did not, and resume
    // cost stays O(journal tail) rather than O(re-lower).
    info.note_decoded_image(executor.warm_decoded_image(Some(&ck.dir)));
    info.snapshot_execs = snapshot_execs;

    let mut d = Driver::new(executor, revalidator, seeds, cfg, true);
    let mut last_exec_state = state.exec_state.clone();
    state.apply(&mut d)?;

    // Chain journals forward from the snapshot: journal-{B} covers
    // executions B..B', where B' is the next snapshot's base.
    let mut journals = list_numbered(&ck.dir, "journal-").unwrap_or_default();
    let mut tail: Option<(PathBuf, u64)> = None;
    let mut current = snapshot_execs;
    while let Some(pos) = journals.iter().position(|(b, _)| *b == current) {
        let (_, path) = journals.remove(pos);
        let Some((records, valid_len, dropped)) = read_journal(&path, current) else {
            break;
        };
        for rec in &records {
            rec.apply(&mut d);
            if rec.exec_state.is_some() {
                last_exec_state.clone_from(&rec.exec_state);
            }
            info.records_applied += 1;
            // Repair: replay has rebuilt the exact state a corrupt
            // generation snapshotted — re-seal and rewrite it. Snapshot
            // serialization is deterministic, so the repaired file is
            // byte-identical to the one that rotted.
            while let Some(idx) = corrupt.iter().position(|(e, _)| *e == d.execs) {
                let (_, cpath) = corrupt.remove(idx);
                let repaired = SnapshotState {
                    scalars: Scalars::capture(&d),
                    entries: d.queue.iter().cloned().collect(),
                    virgin: d.virgin.clone(),
                    crashes: d.crashes.clone(),
                    exec_state: last_exec_state.clone(),
                };
                let fp = d.executor.module_fingerprint().unwrap_or(0);
                let bytes = seal_snapshot(&repaired.encode(), fp);
                if write_sealed(&storage, &cpath, &bytes, ck.fsync).crashed() {
                    return Ok((CampaignOutcome::Killed { execs: d.execs }, info));
                }
                info.snapshots_repaired += 1;
                storage.note_snapshot_repaired();
            }
        }
        current = d.execs;
        tail = Some((path, valid_len));
        if dropped > 0 {
            info.torn_records += dropped;
            storage.note_torn_records(dropped);
            break;
        }
    }
    if let Some(es) = &last_exec_state {
        d.executor.restore_state(es).map_err(CheckpointError::Executor)?;
    }

    let (journal, o) = match tail {
        Some((path, valid_len)) => Journal::reopen(&storage, &path, valid_len, ck.fsync),
        None => Journal::create(&storage, &ck.dir, current, ck.fsync),
    };
    if o.crashed() {
        return Ok((CampaignOutcome::Killed { execs: d.execs }, info));
    }
    info.sweep_warnings = storage.counters().sweep_warnings;
    drive(d, ck, &storage, journal).map(|outcome| (outcome, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Campaign;
    use closurex::harness::{ClosureXConfig, ClosureXExecutor};
    use fir::Module;

    const TARGET: &str = r#"
        global total;
        fn main() {
            var f = fopen("/fuzz/input", 0);
            if (f == 0) { exit(1); }
            var buf[32];
            var n = fread(buf, 1, 32, f);
            fclose(f);
            if (n < 4) { exit(2); }
            if (load8(buf) == 'F') {
                if (load8(buf + 1) == 'U') {
                    if (load8(buf + 2) == 'Z') {
                        if (load8(buf + 3) == 'Z') {
                            return load64(0); // planted crash
                        }
                        return 3;
                    }
                    return 2;
                }
                return 1;
            }
            total = total + n;
            return 0;
        }
    "#;

    fn module() -> Module {
        minic::compile("t", TARGET).unwrap()
    }

    fn executor(m: &Module) -> ClosureXExecutor {
        ClosureXExecutor::new(m, ClosureXConfig::default()).unwrap()
    }

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            budget_cycles: 6_000_000,
            seed: 21,
            ..CampaignConfig::default()
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "closurex-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// The JSON rendering compares every field at once — minus the resume
    /// report, the one legitimately resume-only field.
    fn fingerprint(r: &CampaignResult) -> String {
        serde_json::to_string(&r.sans_resume()).unwrap()
    }

    fn run_plain(m: &Module, seeds: &[Vec<u8>]) -> CampaignResult {
        Campaign::new(seeds, &cfg())
            .executor(&mut executor(m))
            .run()
            .unwrap()
            .finished()
            .unwrap()
    }

    fn run_checkpointed(m: &Module, seeds: &[Vec<u8>], ck: &CheckpointConfig) -> CampaignOutcome {
        Campaign::new(seeds, &cfg())
            .executor(&mut executor(m))
            .checkpoint(ck.clone())
            .run()
            .unwrap()
    }

    fn resume(m: &Module, seeds: &[Vec<u8>], ck: &CheckpointConfig) -> (CampaignOutcome, ResumeReport) {
        Campaign::new(seeds, &cfg())
            .executor(&mut executor(m))
            .checkpoint(ck.clone())
            .resume()
            .unwrap()
    }

    #[test]
    fn orphan_tmp_files_swept_on_next_attempt() {
        let dir = tmpdir("tmp-sweep");
        fs::create_dir_all(&dir).unwrap();
        // A crashed write_sealed leaves these behind; a foreign .tmp file
        // is not ours to delete.
        fs::write(dir.join("ckpt-000000000050.tmp"), b"torn").unwrap();
        fs::write(dir.join("shard-ckpt-000002.tmp"), b"torn").unwrap();
        fs::write(dir.join("unrelated.tmp"), b"keep").unwrap();
        sweep_orphan_tmp(&Storage::quiet(), &dir);
        assert!(!dir.join("ckpt-000000000050.tmp").exists());
        assert!(!dir.join("shard-ckpt-000002.tmp").exists());
        assert!(dir.join("unrelated.tmp").exists());

        // And the campaign entry points sweep implicitly: start a fresh
        // checkpointed run in a directory holding another orphan.
        fs::write(dir.join("ckpt-000000000099.tmp"), b"torn").unwrap();
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let ck = CheckpointConfig::new(&dir);
        run_checkpointed(&m, &seeds, &ck);
        assert!(
            !dir.join("ckpt-000000000099.tmp").exists(),
            "campaign start sweeps orphaned tmp files"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_reports_decoded_image_cache_state() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let dir = tmpdir("decoded-warm");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 40;
        ck.kill_after_execs = Some(60);
        run_checkpointed(&m, &seeds, &ck);
        ck.kill_after_execs = None;
        let (_, info) = resume(&m, &seeds, &ck);
        // Whether or not the cache was already warm (`decoded_image_ready`
        // depends on test ordering in this process), after resume it must
        // hold the module's lowered image.
        let fp = executor(&m)
            .module_fingerprint()
            .expect("closurex pins a module identity");
        assert!(
            vmos::DecodedImage::cache_contains(fp),
            "resume warmed the decoded-image cache (ready={})",
            info.decoded_image_ready
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_equals_plain_run() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let plain = run_plain(&m, &seeds);

        let dir = tmpdir("plain-eq");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 50;
        let out = run_checkpointed(&m, &seeds, &ck)
            .finished()
            .expect("no kill configured");
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&out),
            "checkpoint I/O must charge zero simulated cycles"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_result() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let reference = run_plain(&m, &seeds);

        let dir = tmpdir("kill-resume");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 40;
        ck.kill_after_execs = Some(97); // mid-journal, off the snapshot grid
        let killed = run_checkpointed(&m, &seeds, &ck);
        assert!(matches!(killed, CampaignOutcome::Killed { execs: 97 }));

        ck.kill_after_execs = None;
        let (out, info) = resume(&m, &seeds, &ck);
        assert_eq!(info.snapshot_execs, 80, "resumed from the last snapshot");
        assert_eq!(info.records_applied, 17, "journal tail replayed");
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&out.finished().unwrap()),
            "kill+resume must be invisible in the result"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_and_still_matches() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let reference = run_plain(&m, &seeds);

        let dir = tmpdir("fallback");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 40;
        ck.kill_after_execs = Some(90);
        run_checkpointed(&m, &seeds, &ck);

        // Flip a payload bit in the newest snapshot (execs=80).
        let newest = snapshot_path(&dir, 80);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        ck.kill_after_execs = None;
        let (out, info) = resume(&m, &seeds, &ck);
        assert_eq!(info.corrupt_snapshots_skipped, 1);
        assert_eq!(info.snapshot_execs, 40, "fell back one snapshot");
        assert!(info.records_applied >= 50, "chained journals across the gap");
        assert_eq!(
            info.snapshots_repaired, 1,
            "replay walked back over the corrupt generation and repaired it"
        );
        let result = out.finished().unwrap();
        assert_eq!(result.resilience.storage.corrupt_snapshots, 1);
        assert_eq!(result.resilience.storage.snapshots_repaired, 1);
        assert_eq!(fingerprint(&reference), fingerprint(&result.sans_storage()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_dropped_not_fatal() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let reference = run_plain(&m, &seeds);

        let dir = tmpdir("torn");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 40;
        ck.kill_after_execs = Some(95);
        run_checkpointed(&m, &seeds, &ck);

        // Tear the live journal mid-record: chop off its last 5 bytes.
        let jpath = journal_path(&dir, 80);
        let bytes = fs::read(&jpath).unwrap();
        fs::write(&jpath, &bytes[..bytes.len() - 5]).unwrap();

        ck.kill_after_execs = None;
        let (out, info) = resume(&m, &seeds, &ck);
        assert_eq!(info.torn_records, 1, "the torn record must be counted");
        let result = out.finished().unwrap();
        assert_eq!(result.resilience.storage.torn_records_dropped, 1);
        assert_eq!(
            fingerprint(&reference),
            fingerprint(&result.sans_storage()),
            "the torn execution is simply re-run"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_refuses_resume() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        let m = module();
        let err = Campaign::new(&[], &cfg())
            .executor(&mut executor(&m))
            .checkpoint(CheckpointConfig::new(&dir))
            .resume()
            .unwrap_err();
        assert!(matches!(
            err,
            crate::builder::CampaignError::Checkpoint(CheckpointError::NoUsableSnapshot)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_storage_degrades_to_in_memory_not_dead() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let plain = run_plain(&m, &seeds);

        // Every storage operation fails, forever: the campaign must drop
        // to in-memory checkpointing and still produce the exact result.
        let dir = tmpdir("degrade");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 50;
        ck.disk_faults = vmos::DiskFaultPlan::uniform_transient(7, 1.0);
        let out = run_checkpointed(&m, &seeds, &ck)
            .finished()
            .expect("storage failure must degrade, never kill the campaign");
        let st = &out.resilience.storage;
        assert!(
            !st.degradations.is_empty(),
            "past the retry budget the stream must surface a typed degradation"
        );
        assert_eq!(st.degradations[0].stream, 0);
        assert!(st.transient_faults > 0 && st.retries > 0 && st.backoff_cycles > 0);
        assert!(st.writes_skipped > 0, "later ops skip without touching disk");
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&out.sans_storage()),
            "degraded checkpointing must not perturb the campaign"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_disk_usage() {
        let m = module();
        let seeds = vec![b"seed".to_vec()];
        let dir = tmpdir("rotate");
        let mut ck = CheckpointConfig::new(&dir);
        ck.snapshot_every_execs = 25;
        ck.keep_snapshots = 2;
        run_checkpointed(&m, &seeds, &ck);
        let snaps = list_numbered(&dir, "ckpt-").unwrap();
        assert!(
            snaps.len() <= 2,
            "rotation must keep at most keep_snapshots files, found {}",
            snaps.len()
        );
        let oldest_kept = snaps.first().unwrap().0;
        for (base, _) in list_numbered(&dir, "journal-").unwrap() {
            assert!(base >= oldest_kept, "stale journals must be pruned");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
